"""Scenario configuration for testbed runs.

A :class:`Scenario` is the testbed's "compose file plus experiment
script": how many Devs, what benign mix they generate, how fast the LAN
is, and which botnet DDoS attacks fire when.  The paper's evaluation uses
two runs — a dataset-generation run for training and a shorter run for
real-time detection — whose default schedules are provided by
:meth:`Scenario.training_schedule` and :meth:`Scenario.detection_schedule`.

Rates here are scaled down from the paper's hardware testbed (which
pushed ~8.7k packets/s for 10 minutes); every knob is a parameter, and
the class balance target (~57% malicious, §IV-D) is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.faults.plan import FaultPlan, FaultSpec
from repro.ids.defense import MitigationPlan


@dataclass(frozen=True)
class AttackPhase:
    """One attack order: when, what, how hard."""

    start: float
    kind: str  # "syn" | "ack" | "udp"
    duration: float
    pps_per_bot: float
    target_port: int = 80

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration <= 0 or self.pps_per_bot <= 0:
            raise ValueError(f"malformed attack phase: {self}")


@dataclass
class Scenario:
    """Full testbed configuration."""

    n_devices: int = 6
    seed: int = 7
    data_rate: str = "100Mbps"
    channel_delay: str = "6.56us"
    subnet: str = "10.0.0.0"
    window_seconds: float = 1.0
    include_ips: bool = False
    # Benign traffic shape
    mean_session_interval: float = 7.0
    mean_dns_interval: float = 2.0
    rtmp_bitrate_bps: float = 200_000.0
    rtmp_chunk_interval: float = 0.1
    rtmp_min_duration: float = 4.0
    rtmp_max_duration: float = 10.0
    ftp_min_file_bytes: int = 50_000
    ftp_max_file_bytes: int = 400_000
    http_weight: float = 0.55
    ftp_weight: float = 0.15
    rtmp_weight: float = 0.30
    # Botnet
    cnc_port: int = 2323
    self_propagate: bool = False
    # Flood emission: True makes bots emit PacketBatch trains (identical
    # per-seed packet counts and window verdicts, far fewer sim events).
    batch_floods: bool = False
    # Benign-plane emission: True batches the benign side too — TCP send
    # windows leave as PacketBatch trains and device chatter coalesces
    # per-tick emissions (same per-packet traffic, far fewer sim events).
    batch_benign: bool = False
    # Hierarchical topology: devices per leaf CSMA segment behind a
    # router on the backbone; 0 keeps the paper's flat single-segment
    # LAN (the seed-stable default).
    devices_per_segment: int = 0
    # Device churn (0 disables): mean seconds between churn events, and
    # how long a churned device stays offline.
    churn_interval: float = 0.0
    churn_downtime: float = 5.0
    # Fault injection: applied to every capture phase when set (capture()
    # also accepts a per-phase plan that overrides this).
    fault_plan: FaultPlan | None = None
    # Mitigation: when set, the detect-phase pipeline deploys the
    # detect→mitigate→recover loop (mode="monitor" measures undefended).
    mitigation_plan: MitigationPlan | None = None

    def __post_init__(self) -> None:
        if self.n_devices < 1:
            raise ValueError(f"need at least one device, got {self.n_devices}")
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if self.devices_per_segment < 0:
            raise ValueError(
                f"devices_per_segment must be >= 0, got {self.devices_per_segment}"
            )

    # ------------------------------------------------------------------
    # JSON round-trip (cache keys, campaign grids)

    def to_dict(self) -> dict:
        """JSON-serializable form of the full configuration.

        The dict is flat (one key per dataclass field) except
        ``fault_plan``, which nests :meth:`FaultPlan.to_dict` (or None).
        Field order follows the dataclass definition, so canonical-JSON
        dumps of two equal scenarios are byte-identical.
        """
        payload = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name in ("fault_plan", "mitigation_plan"):
                value = value.to_dict() if value is not None else None
            payload[spec.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict`.

        Goes through ``__init__``, so ``__post_init__`` validation fires
        exactly as it would for a hand-written scenario.  Unknown keys
        are rejected (they signal a schema mismatch, not extra data).
        """
        known = {spec.name for spec in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown Scenario field(s): {sorted(unknown)}")
        data = dict(payload)
        plan = data.get("fault_plan")
        if plan is not None:
            data["fault_plan"] = FaultPlan.from_dict(plan)
        mitigation = data.get("mitigation_plan")
        if mitigation is not None:
            data["mitigation_plan"] = MitigationPlan.from_dict(mitigation)
        return cls(**data)

    def training_schedule(self, duration: float = 60.0, pps_per_bot: float = 250.0) -> list[AttackPhase]:
        """The dataset-generation run: three short, hard flood bursts.

        High per-bot rates over short bursts reproduce both the Mirai
        volumetric signature and the paper's dataset balance (~57 %
        malicious packets): each burst covers ~4.5 % of the run but emits
        an order of magnitude more packets per second than the benign
        fleet.
        """
        # Bursts are aligned to whole seconds so every attack window in
        # the training capture carries the full flood rate (window
        # alignment is how the paper's 1 s aggregation sees a steady
        # full-rate Mirai flood).
        burst = max(2.0, round(duration * 0.065))
        return [
            AttackPhase(start=round(duration * 0.18), kind="syn", duration=burst, pps_per_bot=pps_per_bot),
            AttackPhase(start=round(duration * 0.45), kind="ack", duration=burst, pps_per_bot=pps_per_bot),
            AttackPhase(start=round(duration * 0.75), kind="udp", duration=burst, pps_per_bot=pps_per_bot),
        ]

    def detection_schedule(self, duration: float = 30.0, pps_per_bot: float = 60.0) -> list[AttackPhase]:
        """The real-time detection run.

        Longer bursts at much lower per-bot rates: the live botnet is not
        a carbon copy of the training run (fewer active bots, throttled
        floods), which is what exposes models that memorised the training
        run's absolute volume statistics.
        """
        burst = duration * 0.15
        return [
            AttackPhase(start=duration * 0.10, kind="syn", duration=burst, pps_per_bot=pps_per_bot),
            AttackPhase(start=duration * 0.40, kind="ack", duration=burst, pps_per_bot=pps_per_bot),
            AttackPhase(start=duration * 0.72, kind="udp", duration=burst, pps_per_bot=pps_per_bot),
        ]

    def default_fault_schedule(self, duration: float = 30.0) -> FaultPlan:
        """The stock "attack under churn" fault plan for a detection run.

        Aligned against :meth:`detection_schedule`: moderate Bernoulli
        loss spans the first two flood bursts, a link partition severs a
        device during the second burst, and a device-container crash with
        ``on-failure`` restart lands between the second and third — so
        the run exercises every supervision path while attacks fire.
        """
        victim = f"dev-{self.n_devices - 1}"
        return FaultPlan.of(
            FaultSpec(
                kind="loss",
                start=round(duration * 0.10),
                duration=round(duration * 0.45),
                rate=0.05,
            ),
            FaultSpec(
                kind="partition",
                start=round(duration * 0.40),
                duration=max(2.0, round(duration * 0.12)),
                targets=("dev-0",),
            ),
            FaultSpec(
                kind="kill",
                start=round(duration * 0.60),
                duration=max(2.0, round(duration * 0.10)),
                targets=(victim,),
                restart="on-failure",
            ),
            seed=self.seed,
        )

    def chaos_fault_schedule(self, duration: float = 30.0) -> FaultPlan:
        """Faults aimed squarely at the *defense*, not just the fleet.

        The mitigation chaos scenario: the IDS container is killed
        mid-flood (supervised ``on-failure`` restart), the victim's link
        flaps, and the IDS link is partitioned late in the run — every
        trigger of the mitigation fallback state machine fires while
        attacks are underway.  Only meaningful on runs with a
        :class:`~repro.ids.defense.MitigationPlan` set (the ``ids``
        container exists only then).
        """
        return FaultPlan.of(
            FaultSpec(
                kind="kill",
                start=round(duration * 0.45),
                duration=max(2.0, round(duration * 0.10)),
                targets=("ids",),
                restart="on-failure",
            ),
            FaultSpec(
                kind="partition",
                start=round(duration * 0.58),
                duration=max(1.0, round(duration * 0.07)),
                targets=("tserver",),
            ),
            FaultSpec(
                kind="partition",
                start=round(duration * 0.75),
                duration=max(1.0, round(duration * 0.07)),
                targets=("ids",),
            ),
            seed=self.seed,
        )


#: Attack phases used when none are supplied (kept for doc examples).
DEFAULT_TRAINING_DURATION = 60.0
DEFAULT_DETECTION_DURATION = 30.0
