"""Assembles the Figure 1 topology and drives testbed phases.

One :class:`Testbed` owns the simulator, the CSMA LAN, and the four
container roles:

* **tserver** — Apache-analogue HTTP, Nginx-RTMP-analogue streaming, and
  the customised FTP server;
* **dev-i** — a vulnerable telnet daemon (weak Mirai-dictionary login)
  plus a benign client profile mixing HTTP/FTP/RTMP sessions;
* **attacker** — CNC server, Mirai scanner, and loader;
* **ids** — a promiscuous tap on the LAN (captures feed the IDS unit).

Phases mirror the paper: :meth:`Testbed.infect_all` runs the
scan→crack→load lifecycle until the botnet is assembled, then
:meth:`Testbed.capture` records a labelled
:class:`~repro.capture.dataset.TrafficDataset` while benign traffic and
scheduled flood phases run concurrently.
"""

from __future__ import annotations

import random

from repro import obs
from repro.apps import (
    DeviceProfile,
    DnsServer,
    FtpServer,
    HttpServer,
    NtpServer,
    RtmpServer,
    TrafficMix,
    UdpChatter,
)
from repro.botnet import CncServer, Loader, MiraiBot, MiraiScanner
from repro.botnet.credentials import random_credential
from repro.botnet.telnet import VulnerableTelnet
from repro.capture import TrafficDataset
from repro.containers import Container, Image, Orchestrator, RestartPolicy
from repro.faults import FaultInjector, FaultPlan
from repro.ids import RealTimeIds
from repro.ids.defense import (
    BlocklistFilter,
    MitigationController,
    MitigationPlan,
    UpstreamFilter,
)
from repro.sim import CsmaLan, PacketProbe, SegmentedLan, Simulator
from repro.sim.tracing import PcapWriter
from repro.testbed.scenario import AttackPhase, Scenario


class TestbedError(RuntimeError):
    """Raised when a phase cannot complete (e.g. infection stalls)."""


class _LiveTapRx:
    """RX callback feeding the live IDS tap, batched trains included.

    Exposing ``observe_batch`` lets the device hand whole
    :class:`~repro.sim.packet.PacketBatch` trains (with their exact
    per-frame delivery instants) straight to the probe instead of
    materialising every packet at the tap.
    """

    __slots__ = ("probe", "sim")

    def __init__(self, probe: PacketProbe, sim: Simulator) -> None:
        self.probe = probe
        self.sim = sim

    def __call__(self, frame) -> None:
        self.probe(frame, self.sim.now)

    def observe_batch(self, batch, times) -> None:
        self.probe.observe_batch(batch, times)


class Testbed:
    """The assembled DDoShield-IoT instance."""

    __test__ = False  # "Test" prefix is the product name, not a pytest class

    def __init__(
        self,
        scenario: Scenario | None = None,
        sanitize: bool | str | None = None,
        shuffle_buckets: int | None = None,
    ) -> None:
        self.scenario = scenario or Scenario()
        # sanitize=None defers to REPRO_SANITIZE; shuffle_buckets=None
        # defers to REPRO_SHUFFLE (the bucket-shuffle race detector).
        self.sim = Simulator(sanitize=sanitize, shuffle_buckets=shuffle_buckets)
        if self.scenario.devices_per_segment > 0:
            # Hierarchical mode: dev containers go to leaf segments
            # behind gateways; tserver/attacker/ids stay on the backbone.
            self.lan: CsmaLan | SegmentedLan = SegmentedLan(
                self.sim,
                subnet=self.scenario.subnet,
                data_rate=self.scenario.data_rate,
                delay=self.scenario.channel_delay,
                devices_per_segment=self.scenario.devices_per_segment,
            )
        else:
            self.lan = CsmaLan(
                self.sim,
                subnet=self.scenario.subnet,
                data_rate=self.scenario.data_rate,
                delay=self.scenario.channel_delay,
            )
        self.orchestrator = Orchestrator(
            self.sim, self.lan, seed=self.scenario.seed + 9000
        )
        self.fault_injector: FaultInjector | None = None
        self.last_fault_base: float | None = None
        self.tserver: Container | None = None
        self.attacker: Container | None = None
        self.devices: list[Container] = []
        self.http: HttpServer | None = None
        self.ftp: FtpServer | None = None
        self.rtmp: RtmpServer | None = None
        self.cnc: CncServer | None = None
        self.loader: Loader | None = None
        self.scanner: MiraiScanner | None = None
        self.telnets: list[VulnerableTelnet] = []
        self.profiles: list[DeviceProfile] = []
        self.bots: list[MiraiBot] = []
        self._rng = random.Random(self.scenario.seed)
        self._built = False
        self._churn_offline: set[int] = set()
        #: Fault-event callbacks copied onto every injector apply_faults arms.
        self._fault_listeners: list = []
        self.mitigation: MitigationController | None = None
        self._mitigation_teardown: tuple | None = None

    # ------------------------------------------------------------------
    # Assembly

    def build(self) -> "Testbed":
        """Create and start every container of Figure 1."""
        if self._built:
            return self
        scenario = self.scenario
        self.tserver = self.orchestrator.run("tserver", Image("ddoshield/tserver"))
        self.http = self.tserver.exec(HttpServer(seed=scenario.seed + 100))
        self.ftp = self.tserver.exec(
            FtpServer(
                seed=scenario.seed + 200,
                min_file_bytes=scenario.ftp_min_file_bytes,
                max_file_bytes=scenario.ftp_max_file_bytes,
            )
        )
        self.rtmp = self.tserver.exec(
            RtmpServer(
                bitrate_bps=scenario.rtmp_bitrate_bps,
                chunk_interval=scenario.rtmp_chunk_interval,
            )
        )
        self.dns = self.tserver.exec(DnsServer())
        self.ntp = self.tserver.exec(NtpServer())
        self.tserver.node.tcp.seed(scenario.seed + 1)
        self.tserver.node.tcp.batch_segments = scenario.batch_benign

        self.attacker = self.orchestrator.run("attacker", Image("ddoshield/attacker"))
        self.attacker.node.tcp.seed(scenario.seed + 2)
        self.cnc = self.attacker.exec(CncServer(port=scenario.cnc_port))
        self.loader = Loader(on_loaded=None)
        self.attacker.exec(self.loader)
        self.scanner = self.attacker.exec(
            MiraiScanner(
                on_credentials_found=self._on_credentials_found,
                seed=scenario.seed + 3,
            )
        )
        self.scanner.exclude(self.tserver.node.address)

        mix = TrafficMix(
            http_weight=scenario.http_weight,
            ftp_weight=scenario.ftp_weight,
            rtmp_weight=scenario.rtmp_weight,
            mean_session_interval=scenario.mean_session_interval,
        )
        for i in range(scenario.n_devices):
            dev = self.orchestrator.run(f"dev-{i}", Image("ddoshield/dev"))
            dev.node.tcp.seed(scenario.seed + 10 + i)
            dev.node.tcp.batch_segments = scenario.batch_benign
            user, password = random_credential(scenario.seed * 1000 + i)
            telnet = VulnerableTelnet(
                user, password, on_infected=self._make_infection_hook(dev, i)
            )
            dev.exec(telnet)
            profile = DeviceProfile(
                self.tserver.node.address,
                self.http.page_names(),
                self.ftp.file_names(),
                mix=mix,
                seed=scenario.seed * 100 + i,
                start_delay=self._rng.uniform(0.0, scenario.mean_session_interval),
                rtmp_duration=(scenario.rtmp_min_duration, scenario.rtmp_max_duration),
            )
            dev.exec(profile)
            dev.exec(
                UdpChatter(
                    self.tserver.node.address,
                    mean_dns_interval=scenario.mean_dns_interval,
                    seed=scenario.seed * 77 + i,
                    start_delay=self._rng.uniform(0.0, 1.0),
                    # Look ahead ~4 expected arrivals per tick so batch
                    # mode forms real trains; scalar emissions keep their
                    # exact arrival instants regardless of the tick.
                    tick=4.0 * scenario.mean_dns_interval,
                    batch=scenario.batch_benign,
                )
            )
            self.devices.append(dev)
            self.telnets.append(telnet)
            self.profiles.append(profile)
        self._built = True
        return self

    def _on_credentials_found(self, target, username, password) -> None:
        assert self.loader is not None
        self.loader.infect(target, username, password)

    def _make_infection_hook(self, dev: Container, index: int):
        def on_infected(telnet: VulnerableTelnet) -> None:
            assert self.attacker is not None
            bot = MiraiBot(
                self.attacker.node.address,
                cnc_port=self.scenario.cnc_port,
                seed=self.scenario.seed * 10 + index,
                self_propagate=self.scenario.self_propagate,
                propagation_targets=[d.node.address for d in self.devices],
                report_credentials=self._on_credentials_found
                if self.scenario.self_propagate
                else None,
                batch_floods=self.scenario.batch_floods,
            )
            dev.exec(bot)
            self.bots.append(bot)

        return on_infected

    # ------------------------------------------------------------------
    # Phases

    def infect_all(self, max_time: float = 600.0) -> float:
        """Run the scan→load lifecycle until every Dev hosts a bot.

        Returns the virtual time the infection took.
        """
        if not self._built:
            self.build()
        assert self.scanner is not None and self.cnc is not None
        start = self.sim.now
        self.scanner.scan([d.node.address for d in self.devices])
        deadline = start + max_time
        step = 5.0
        while self.sim.now < deadline:
            self.sim.run(until=min(self.sim.now + step, deadline))
            if self.cnc.bot_count >= self.scenario.n_devices:
                return self.sim.now - start
        raise TestbedError(
            f"infection incomplete after {max_time}s: "
            f"{self.cnc.bot_count}/{self.scenario.n_devices} bots registered"
        )

    def capture(
        self,
        duration: float,
        attack_phases: list[AttackPhase] | None = None,
        pcap_path: str | None = None,
        rebase_timestamps: bool = False,
        fault_plan: FaultPlan | None = None,
    ) -> TrafficDataset:
        """Record a labelled capture while attacks fire per the schedule.

        By default timestamps are the testbed's continuing virtual clock,
        exactly as in the paper where the real-time detection run happens
        *after* the dataset-generation run on the same testbed — so live
        timestamps lie beyond the training capture's range.  Pass
        ``rebase_timestamps=True`` to shift a capture to start at t=0.

        ``fault_plan`` (falling back to ``scenario.fault_plan``) schedules
        impairments, partitions, and container crashes relative to the
        capture's start.
        """
        if not self._built:
            self.build()
        assert self.cnc is not None and self.tserver is not None
        octx = obs.current()
        pcap = PcapWriter(pcap_path) if pcap_path else None
        probe = PacketProbe(pcap=pcap)
        self.lan.add_probe(probe)
        base = self.sim.now
        span = octx.tracer.span(
            "testbed.capture", duration=duration, phases=len(attack_phases or [])
        )
        # The probe and pcap must be torn down even when the run raises:
        # an un-removed probe corrupts later captures on the same testbed,
        # and an unclosed pcap silently loses its buffered tail.
        try:
            with span:
                plan = fault_plan if fault_plan is not None else self.scenario.fault_plan
                if plan is not None:
                    self.apply_faults(plan, base=base)
                for phase in attack_phases or []:
                    self.sim.schedule(
                        phase.start,
                        self.cnc.launch_attack,
                        phase.kind,
                        self.tserver.node.address,
                        phase.target_port,
                        phase.duration,
                        phase.pps_per_bot,
                    )
                    # Attack edges are recorded declaratively from the static
                    # schedule — never via extra simulator events, so telemetry
                    # on/off cannot perturb the run.
                    octx.events.record(
                        base + phase.start, "attack.start", detail=phase.kind
                    )
                    octx.events.record(
                        base + phase.start + phase.duration,
                        "attack.stop",
                        detail=phase.kind,
                    )
                if self.scenario.churn_interval > 0:
                    self._schedule_churn(base + duration)
                self.sim.run(until=base + duration)
                span.set("packets", probe.count)
        finally:
            self.lan.channel.remove_probe(probe)
            if pcap is not None:
                pcap.close()
        self.orchestrator.sample_resources()
        if rebase_timestamps:
            return TrafficDataset([_rebase(r, base) for r in probe.records])
        return TrafficDataset(list(probe.records))

    # ------------------------------------------------------------------
    # Fault injection

    def apply_faults(self, plan: FaultPlan, base: float | None = None) -> FaultInjector:
        """Arm a :class:`FaultPlan` against the running testbed.

        Wire faults and partitions go to a :class:`FaultInjector` on the
        LAN channel; ``kill`` specs register supervision on the
        orchestrator (per the spec's restart policy) and schedule the
        crash.  All spec times are relative to ``base`` (default: now).
        Returns the injector so callers can inspect its event log.
        """
        if not self._built:
            self.build()
        if base is None:
            base = self.sim.now
        injector = FaultInjector(
            self.sim, self.lan.channel, seed=plan.seed + self.scenario.seed
        )
        injector.listeners.extend(self._fault_listeners)
        injector.schedule_plan(plan, resolve_device=self._resolve_device, base=base)
        for spec in plan.kill_specs():
            for target in spec.targets:
                if target not in self.orchestrator.containers:
                    raise TestbedError(f"kill fault targets unknown container {target!r}")
                if spec.restart != "no":
                    self.orchestrator.supervise(
                        target, RestartPolicy(mode=spec.restart)
                    )
                self.sim.schedule_abs(
                    base + spec.start, self.orchestrator.kill, target
                )
        self.fault_injector = injector
        self.last_fault_base = base
        return injector

    def _resolve_device(self, name: str):
        container = self.orchestrator.containers.get(name)
        if container is None or not container.node.interfaces:
            raise TestbedError(f"fault plan targets unknown container {name!r}")
        return container.node.interfaces[0].device

    # ------------------------------------------------------------------
    # Mitigation (the detect → mitigate → recover loop)

    def ensure_ids_container(self) -> Container:
        """Create the promiscuous IDS tap container on first use.

        Lazy so undefended runs stay byte-identical to builds that
        predate the mitigation subsystem: the extra node only joins the
        LAN when a :class:`MitigationPlan` asks for it.
        """
        existing = self.orchestrator.containers.get("ids")
        if existing is not None:
            return existing
        ids = self.orchestrator.run("ids", Image("ddoshield/ids"))
        ids.node.interfaces[0].device.set_promiscuous(True)
        return ids

    def install_mitigation(self, plan: MitigationPlan, trained) -> MitigationController:
        """Deploy the fault-tolerant detect→mitigate loop on this testbed.

        ``trained`` is any object exposing ``model`` / ``name`` /
        ``extractor`` / ``scaler`` (e.g. a
        :class:`~repro.testbed.experiment.TrainedModel`).  In
        ``mode="monitor"`` only the live IDS tap is deployed — the
        measured undefended baseline.  Call :meth:`uninstall_mitigation`
        when the defended phase ends.
        """
        if self.mitigation is not None:
            raise TestbedError("mitigation already installed")
        if not self._built:
            self.build()
        assert self.tserver is not None
        ids_container = self.ensure_ids_container()
        victim = self.tserver.node
        live = RealTimeIds(
            trained.model,
            trained.name,
            extractor=trained.extractor,
            scaler=trained.scaler,
            window_seconds=self.scenario.window_seconds,
        )
        filter_: BlocklistFilter | None = None
        upstream: UpstreamFilter | None = None
        cookie_ports: list[int] = []
        if plan.mode == "mitigate":
            filter_ = BlocklistFilter(
                victim,
                block_seconds=plan.block_seconds,
                syn_rate_limit=plan.syn_rate_limit,
                syn_burst=plan.syn_burst,
            ).install()
            if plan.syn_cookies:
                for port in sorted(victim.tcp.listeners):
                    victim.tcp.listeners[port].enable_syn_cookies(
                        threshold=plan.syn_cookie_threshold,
                        secret=self.scenario.seed * 7919 + port,
                    )
                    cookie_ports.append(port)
            if plan.upstream_filter:
                upstream = UpstreamFilter(victim_ip=victim.address.value)
                self.lan.channel.set_traffic_filter(upstream)
        controller = MitigationController(
            plan=plan,
            sim=self.sim,
            victim=victim,
            ids=live,
            filter_=filter_,
            upstream=upstream,
            ids_container="ids",
        )
        # The live tap: the IDS container's promiscuous device feeds a
        # record probe, which feeds the IDS monitor.  Kill/partition of
        # the container detaches the device and blinds the tap — exactly
        # the failure the fallback state machine covers.
        tap = PacketProbe(keep_records=False)
        live.monitor.attach(tap)
        device = ids_container.node.interfaces[0].device
        tap_rx = _LiveTapRx(tap, self.sim)
        device.add_rx_callback(tap_rx)
        self.orchestrator.listeners.append(controller.on_supervisor_event)
        self._fault_listeners.append(controller.on_fault_event)
        if self.fault_injector is not None:
            self.fault_injector.listeners.append(controller.on_fault_event)
        self.mitigation = controller
        self._mitigation_teardown = (device, tap_rx, cookie_ports, live)
        return controller

    def uninstall_mitigation(self) -> MitigationController | None:
        """Tear the loop down, restoring the undefended configuration."""
        controller = self.mitigation
        if controller is None or self._mitigation_teardown is None:
            return None
        device, tap_rx, cookie_ports, live = self._mitigation_teardown
        live.finish(until=self.sim.now)  # flush the final partial window
        controller.finish()
        if controller.filter is not None:
            controller.filter.uninstall()
        if (
            controller.upstream is not None
            and self.lan.channel.traffic_filter is controller.upstream
        ):
            self.lan.channel.set_traffic_filter(None)
        assert self.tserver is not None
        for port in cookie_ports:
            listener = self.tserver.node.tcp.listeners.get(port)
            if listener is not None:
                listener.disable_syn_cookies()
        device.remove_rx_callback(tap_rx)
        if controller.on_supervisor_event in self.orchestrator.listeners:
            self.orchestrator.listeners.remove(controller.on_supervisor_event)
        if controller.on_fault_event in self._fault_listeners:
            self._fault_listeners.remove(controller.on_fault_event)
        if (
            self.fault_injector is not None
            and controller.on_fault_event in self.fault_injector.listeners
        ):
            self.fault_injector.listeners.remove(controller.on_fault_event)
        self.mitigation = None
        self._mitigation_teardown = None
        return controller

    # ------------------------------------------------------------------
    # Churn

    def _schedule_churn(self, until: float) -> None:
        delay = self._rng.expovariate(1.0 / self.scenario.churn_interval)
        if self.sim.now + delay >= until:
            return
        self.sim.schedule(delay, self._churn_once, until)

    def _churn_once(self, until: float) -> None:
        candidates = [
            i for i in range(len(self.devices)) if i not in self._churn_offline
        ]
        if candidates:
            index = self._rng.choice(candidates)
            device = self.devices[index].node.interfaces[0].device
            device.detach()
            self._churn_offline.add(index)
            self.sim.schedule(
                self.scenario.churn_downtime, self._churn_rejoin, index
            )
        self._schedule_churn(until)

    def _churn_rejoin(self, index: int) -> None:
        device = self.devices[index].node.interfaces[0].device
        # The device remembers its own channel, which on a hierarchical
        # topology is a leaf segment rather than self.lan.channel.
        device.channel.attach(device)
        self._churn_offline.discard(index)

    # ------------------------------------------------------------------
    # Introspection

    @property
    def bot_count(self) -> int:
        return self.cnc.bot_count if self.cnc is not None else 0

    def component_inventory(self) -> dict[str, list[str]]:
        """Names of the live processes per container (Figure 1 check)."""
        inventory: dict[str, list[str]] = {}
        for name, container in self.orchestrator.containers.items():
            inventory[name] = [p.name for p in container.processes if p.running]
        return inventory


def _rebase(record, base: float):
    return record._replace(timestamp=record.timestamp - base)
