"""DDoShield-IoT: the assembled testbed.

:class:`~repro.testbed.scenario.Scenario` declares the deployment
(device count, benign traffic mix, attack schedule, seeds);
:class:`~repro.testbed.builder.Testbed` assembles Figure 1 — TServer
(Apache/Nginx-RTMP/FTP), Devs (vulnerable telnet + benign clients),
Attacker (CNC, scanner, loader), and the IDS tap — on one simulated CSMA
LAN; :mod:`repro.testbed.experiment` provides the one-call train /
real-time-detect flows behind every benchmark.
"""

from repro.testbed.builder import Testbed
from repro.testbed.catalog import CATALOG, get_scenario, list_scenarios
from repro.testbed.impact import ImpactSample, ImpactSeries, VictimMonitor, attach_victim_monitor
from repro.testbed.experiment import (
    ExperimentResult,
    FaultExperimentResult,
    ModelSpec,
    TrainedModel,
    default_model_specs,
    run_fault_experiment,
    run_full_experiment,
    run_realtime_detection,
    train_models,
)
from repro.ids.defense import MitigationPlan, RecoveryMetrics
from repro.testbed.scenario import AttackPhase, Scenario

__all__ = [
    "AttackPhase",
    "CATALOG",
    "ExperimentResult",
    "get_scenario",
    "list_scenarios",
    "MitigationPlan",
    "RecoveryMetrics",
    "FaultExperimentResult",
    "ImpactSample",
    "ImpactSeries",
    "ModelSpec",
    "Scenario",
    "Testbed",
    "TrainedModel",
    "VictimMonitor",
    "attach_victim_monitor",
    "default_model_specs",
    "run_fault_experiment",
    "run_full_experiment",
    "run_realtime_detection",
    "train_models",
]
