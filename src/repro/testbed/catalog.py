"""Named scenario catalog: reproducible testbed recipes by name.

A catalog in the spirit of Gotham (arXiv 2207.13981): instead of passing
a dozen CLI knobs, experiments name a recipe — ``ddoshield campaign
--catalog urban-smoke`` — and get the exact same :class:`Scenario` every
time.  The flagship entry is ``urban-4060``, the urban-IoT emulation
scale of Hekmati et al. (arXiv 2110.01842): 4060 devices on a segmented
topology with a realistic benign mix and the Mirai flood overlay, run
entirely on the batch plane (``batch_floods`` + ``batch_benign``).

Every entry is a factory so catalog scenarios are immutable-by-copy;
``get_scenario(name, **overrides)`` applies field overrides (e.g. a CI
run shrinking ``n_devices``) through ``dataclasses.replace`` so
``__post_init__`` validation still fires.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.testbed.scenario import Scenario

#: Devices per leaf CSMA segment in the urban recipes: ~70 segments at
#: 4060 devices, the "apartment block behind one gateway" granularity.
_URBAN_SEGMENT = 58


def _urban(n_devices: int, devices_per_segment: int = _URBAN_SEGMENT) -> Scenario:
    """The urban-IoT shape: segmented topology, mixed benign plane,
    batch kernel end to end (floods and benign)."""
    return Scenario(
        n_devices=n_devices,
        seed=7,
        devices_per_segment=min(devices_per_segment, n_devices),
        batch_floods=True,
        batch_benign=True,
        # A denser benign plane than the paper-scale default: urban
        # deployments chatter constantly (Hekmati et al. model per-device
        # event streams, not idle sensors).
        mean_session_interval=6.0,
        mean_dns_interval=2.0,
        http_weight=0.55,
        ftp_weight=0.15,
        rtmp_weight=0.30,
    )


CATALOG: dict[str, Callable[[], Scenario]] = {
    # The paper's own Figure 1 scale: 6 devices, flat LAN, scalar plane.
    "paper-baseline": lambda: Scenario(),
    # Urban-IoT emulation of Hekmati et al. (arXiv 2110.01842).
    "urban-4060": lambda: _urban(4060),
    # The benign-plane benchmark scale (Table: BENCH_sim.json).
    "urban-1024": lambda: _urban(1024),
    # CI-sized cut of the urban recipe: same shape, minutes not hours.
    "urban-smoke": lambda: _urban(12, devices_per_segment=4),
}


def list_scenarios() -> list[str]:
    """Catalog entry names, stable order."""
    return sorted(CATALOG)


def get_scenario(name: str, **overrides: object) -> Scenario:
    """Build the named scenario, optionally overriding dataclass fields.

    >>> get_scenario("urban-smoke", seed=11).seed
    11
    """
    factory = CATALOG.get(name)
    if factory is None:
        known = ", ".join(list_scenarios())
        raise KeyError(f"unknown scenario {name!r} (catalog: {known})")
    scenario = factory()
    if overrides:
        scenario = replace(scenario, **overrides)  # type: ignore[arg-type]
    return scenario
