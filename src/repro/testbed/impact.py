"""Victim-impact instrumentation (the DDoSim heritage measurements).

DDoSim's evaluation watches the TServer while the botnet fires:
"alterations in the target server's throughput, the average data
reception frequency, and the number of connected bots".  The
:class:`VictimMonitor` samples exactly those signals per second from the
TServer's node and listeners, producing the time series that defense
benchmarks (rate limiting, blocklists) are judged against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.containers.container import Container, Process
from repro.sim.core import PeriodicEvent


@dataclass(frozen=True)
class ImpactSample:
    """One sampling interval of victim-side health."""

    time: float
    rx_packets: float  # packets received per second
    rx_bytes: float  # bytes received per second
    goodput_bytes: float  # application bytes actually served per second
    half_open: int  # SYN backlog occupancy
    syn_dropped: int  # cumulative SYNs dropped by the backlog
    rst_sent: int  # cumulative RSTs (ACK-flood response storm)
    udp_unreachable: int  # cumulative unanswerable datagrams
    accepted: int = 0  # cumulative completed handshakes (conn success)


@dataclass
class ImpactSeries:
    """The collected samples plus convenience aggregates."""

    samples: list[ImpactSample] = field(default_factory=list)

    def between(self, start: float, end: float) -> list[ImpactSample]:
        return [s for s in self.samples if start <= s.time < end]

    def mean_goodput(self, start: float | None = None, end: float | None = None) -> float:
        window = self.samples
        if start is not None and end is not None:
            window = self.between(start, end)
        if not window:
            return 0.0
        return sum(s.goodput_bytes for s in window) / len(window)

    def peak_half_open(self) -> int:
        return max((s.half_open for s in self.samples), default=0)


class _FrameTap:
    """Device RX callback counting bytes, scalar or per-train.

    ``observe_batch`` keeps a :class:`~repro.sim.packet.PacketBatch`
    train from being materialised packet by packet just to be sized.
    """

    __slots__ = ("monitor",)

    def __init__(self, monitor: "VictimMonitor") -> None:
        self.monitor = monitor

    def __call__(self, frame) -> None:
        self.monitor._rx_bytes_total += frame.size

    def observe_batch(self, batch, times) -> None:
        if len(batch) == 0:
            return
        self.monitor._rx_bytes_total += float(batch.sizes.sum())


class VictimMonitor(Process):
    """Samples the TServer's health every ``interval`` virtual seconds.

    Goodput is measured as bytes the benign servers pushed into accepted
    connections (HTTP responses, RTMP chunks, FTP data), taken from the
    node's TCP sockets — the server-side view of service actually being
    delivered.

    Sampling is *anchored*: sample ``k`` lands at exactly
    ``t_start + k*interval`` (:meth:`~repro.sim.core.Simulator.schedule_periodic`)
    rather than drifting by one float ulp per re-schedule, so sample
    timestamps — and therefore window boundaries in defense benchmarks —
    are identical between scalar and batched runs of the same seed.
    """

    name = "victim-monitor"

    def __init__(self, interval: float = 1.0) -> None:
        super().__init__()
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval
        self.series = ImpactSeries()
        self._event: PeriodicEvent | None = None
        self._tap = _FrameTap(self)
        self._last_rx_packets = 0
        self._last_rx_bytes = 0.0
        self._last_goodput = 0.0
        self._rx_bytes_total = 0.0

    def on_start(self) -> None:
        # Count every frame this node's device accepts (attack + benign).
        for iface in self.node.interfaces:
            iface.device.add_rx_callback(self._tap)
        # Baseline the cumulative counters so the first sample is a rate,
        # not the node's lifetime total.
        self._last_rx_packets = self.node.packets_received
        self._last_goodput = self._total_goodput()
        self._event = self.sim.schedule_periodic(self.interval, self._sample)

    def on_stop(self) -> None:
        if self._event is not None:
            self._event.cancel()
        for iface in self.node.interfaces:
            iface.device.remove_rx_callback(self._tap)

    def _total_goodput(self) -> float:
        # The stack keeps a monotone application-payload counter, so the
        # measure survives connection teardown.
        return float(self.node.tcp.payload_bytes_sent)

    def _sample(self) -> None:
        if not self.running:
            return
        node = self.node
        rx_packets = node.packets_received
        goodput = self._total_goodput()
        listener = node.tcp.listeners.get(80)
        self.series.samples.append(
            ImpactSample(
                time=self.sim.now,
                rx_packets=(rx_packets - self._last_rx_packets) / self.interval,
                rx_bytes=(self._rx_bytes_total - self._last_rx_bytes) / self.interval,
                goodput_bytes=max(0.0, goodput - self._last_goodput) / self.interval,
                half_open=len(listener.half_open) if listener else 0,
                syn_dropped=listener.syn_dropped if listener else 0,
                rst_sent=node.tcp.rst_sent,
                udp_unreachable=node.udp.unreachable,
                accepted=sum(l.accepted for l in node.tcp.listeners.values()),
            )
        )
        self._last_rx_packets = rx_packets
        self._last_rx_bytes = self._rx_bytes_total
        self._last_goodput = goodput


def attach_victim_monitor(container: Container, interval: float = 1.0) -> VictimMonitor:
    """Install a :class:`VictimMonitor` on a running container."""
    return container.exec(VictimMonitor(interval=interval))
