"""One-call experiment flows: generate → train → real-time detect.

These functions are the backbone of every benchmark: they reproduce the
paper's §IV-D procedure — run the testbed to build a labelled dataset,
train RF / K-Means / CNN on it (reporting accuracy/precision/recall/F1
on a held-out split), persist the models, then run a second live phase
and evaluate per-window real-time accuracy plus Table II sustainability.

Per-model feature views
-----------------------
Each :class:`ModelSpec` carries its own feature-pipeline configuration,
reflecting standard practice for each model family (and, as documented
in EXPERIMENTS.md, our hypothesis for the paper's Table I ordering):

* **RF** consumes the paper's literal §IV-A features — timestamp, ports,
  protocol, and the raw-count window statistics — unscaled, as trees
  need no normalisation.  Raw counts memorise the training run's flood
  *rates*; when the live botnet floods at a different rate, the learned
  thresholds misroute whole windows.
* **K-Means and CNN** require normalised inputs, so they consume the
  frequency-normalised statistics (scale-free ratios of the same §IV-A
  quantities) plus per-packet flag/size details, standardised.  Ratios
  stay in-distribution under rate shift, which is why these models keep
  detecting the live floods.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.capture import DatasetSummary, TrafficDataset
from repro.containers.orchestrator import SupervisorEvent
from repro.faults import FaultEvent, FaultPlan
from repro.features.pipeline import FeatureExtractor
from repro.ids.defense import RecoveryMetrics
from repro.ids.engine import RealTimeIds
from repro.ids.report import DetectionReport
from repro.ml import (
    CnnClassifier,
    KMeansDetector,
    RandomForestClassifier,
    StandardScaler,
    evaluate_classifier,
    model_size_kb,
    train_test_split,
)
from repro.ml.metrics import ClassificationReport
from repro.testbed.scenario import Scenario


class _IdentityScaler:
    """No-op scaler for models that train on raw features (trees)."""

    def fit(self, X: np.ndarray) -> "_IdentityScaler":
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        return X


@dataclass(frozen=True)
class ModelSpec:
    """A named model factory plus its feature-pipeline configuration."""

    name: str
    factory: Callable[[int], object]
    stat_set: str = "paper"
    include_details: bool = False
    include_timestamp: bool = True
    include_ips: bool = False
    scale: bool = True

    def make_extractor(self, window_seconds: float) -> FeatureExtractor:
        return FeatureExtractor(
            window_seconds=window_seconds,
            include_ips=self.include_ips,
            include_timestamp=self.include_timestamp,
            include_details=self.include_details,
            stat_set=self.stat_set,
        )


def default_model_specs(seed: int = 0) -> list[ModelSpec]:
    """The paper's three IDS models with calibrated configurations."""
    return [
        ModelSpec(
            "RF",
            lambda n, s=seed: RandomForestClassifier(
                n_estimators=60, max_depth=None, min_samples_leaf=4, random_state=s
            ),
            stat_set="paper",
            include_timestamp=True,
            scale=False,
        ),
        ModelSpec(
            "K-Means",
            lambda n, s=seed: KMeansDetector(
                n_clusters=40, auto_k=False, random_state=s
            ),
            stat_set="normalized",
            include_details=True,
            include_timestamp=False,
            scale=True,
        ),
        ModelSpec(
            "CNN",
            lambda n, s=seed: CnnClassifier(
                n_features=n,
                conv_channels=(16, 32),
                hidden=448,
                epochs=4,
                inference_batch=32,
                random_state=s,
            ),
            stat_set="normalized",
            include_details=True,
            include_timestamp=False,
            scale=True,
        ),
    ]


@dataclass
class TrainedModel:
    """A fitted model plus its training-phase evaluation and pipeline."""

    name: str
    model: object
    scaler: object
    extractor: FeatureExtractor
    train_report: ClassificationReport
    fit_seconds: float
    size_kb: float


def train_models(
    dataset: TrafficDataset,
    specs: Sequence[ModelSpec] | None = None,
    window_seconds: float = 1.0,
    test_fraction: float = 0.3,
    seed: int = 0,
) -> list[TrainedModel]:
    """Extract features, split, fit each model, report §IV-D train metrics."""
    specs = list(specs) if specs is not None else default_model_specs(seed)
    trained: list[TrainedModel] = []
    for spec in specs:
        extractor = spec.make_extractor(window_seconds)
        # One columnar batch per capture, shared by every model's pass.
        X, y, _ = extractor.transform(dataset.to_batch())
        if len(np.unique(y)) < 2:
            raise ValueError("training capture contains only one class")
        X_train, X_test, y_train, y_test = train_test_split(
            X, y, test_fraction=test_fraction, seed=seed
        )
        scaler = StandardScaler().fit(X_train) if spec.scale else _IdentityScaler()
        X_train_s = scaler.transform(X_train)
        X_test_s = scaler.transform(X_test)
        model = spec.factory(X.shape[1])
        started = time.perf_counter()
        model.fit(X_train_s, y_train)
        fit_seconds = time.perf_counter() - started
        report = evaluate_classifier(y_test, model.predict(X_test_s))
        trained.append(
            TrainedModel(
                name=spec.name,
                model=model,
                scaler=scaler,
                extractor=extractor,
                train_report=report,
                fit_seconds=fit_seconds,
                size_kb=model_size_kb(model),
            )
        )
    return trained


def run_realtime_detection(
    capture: TrafficDataset,
    trained: Sequence[TrainedModel],
    window_seconds: float = 1.0,
    degraded_intervals: Sequence[tuple[float, float]] | None = None,
    until: float | None = None,
) -> list[DetectionReport]:
    """Stream the live capture through each model's real-time IDS.

    ``degraded_intervals`` are absolute ``(start, stop)`` fault spans the
    IDS should score with degraded verdicts; ``until`` is the capture's
    nominal end time so trailing outage windows get explicit verdicts.
    """
    reports = []
    for item in trained:
        ids = RealTimeIds(
            model=item.model,
            model_name=item.name,
            extractor=item.extractor,
            scaler=item.scaler,
            window_seconds=window_seconds,
        )
        for start, stop in degraded_intervals or []:
            ids.mark_degraded(start, stop)
        reports.append(ids.process(capture.records, until=until))
    return reports


@dataclass
class ExperimentResult:
    """Everything the paper's evaluation section reports."""

    scenario: Scenario
    train_summary: DatasetSummary
    detect_summary: DatasetSummary
    trained: list[TrainedModel] = field(default_factory=list)
    detection: list[DetectionReport] = field(default_factory=list)
    infection_seconds: float = 0.0
    #: Telemetry snapshot ({"metrics", "spans", "events"}) when the run
    #: executed inside an enabled obs scope; None otherwise.  Never part
    #: of pipeline cache keys.
    telemetry: dict | None = None
    #: Mitigation payload (plan, events, impact samples, recovery) when
    #: the scenario carried a MitigationPlan; None otherwise.
    mitigation: dict | None = None

    def table1(self) -> list[tuple[str, float]]:
        """(model, real-time mean accuracy %) rows."""
        return [(r.model_name, 100.0 * r.mean_accuracy) for r in self.detection]

    def fingerprint(self) -> str:
        """Bit-level run identity for equivalence checks.

        Hashes the dataset composition plus every model's per-window
        verdict rows — the quantities the paper's tables derive from.
        Two runs of the same scenario must produce the same fingerprint
        under any claimed-equivalent execution (scalar vs batch
        dispatch, any ``Simulator(shuffle_buckets=…)`` seed); a
        difference means an order dependence leaked into results.
        """

        def summary_row(summary: DatasetSummary) -> list:
            return [
                summary.total,
                summary.malicious,
                summary.benign,
                sorted(summary.by_attack.items()),
                repr(summary.duration),
            ]

        payload = {
            "train": summary_row(self.train_summary),
            "detect": summary_row(self.detect_summary),
            "windows": {
                report.model_name: [
                    [
                        w.window_index,
                        repr(w.start_time),
                        w.n_packets,
                        w.n_malicious_true,
                        w.n_malicious_predicted,
                        repr(w.accuracy),
                        w.status,
                    ]
                    for w in report.windows
                ]
                for report in self.detection
            },
        }
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()

    def table2(self, strict: bool = False) -> list[tuple[str, float, float, float]]:
        """(model, cpu %, memory Kb, model size Kb) rows.

        Models whose detection ran without sustainability metering
        (``report.sustainability is None``) are skipped rather than
        crashing; pass ``strict=True`` to raise a ``ValueError`` naming
        the unmetered models instead.
        """
        rows = []
        unmetered = []
        for report in self.detection:
            s = report.sustainability
            if s is None:
                unmetered.append(report.model_name)
                continue
            rows.append((report.model_name, s.cpu_percent, s.memory_kb, s.model_size_kb))
        if strict and unmetered:
            raise ValueError(
                f"no sustainability metrics for: {', '.join(unmetered)} "
                "(detection ran with metering disabled)"
            )
        return rows

    def training_metrics(self) -> list[tuple[str, float, float, float, float]]:
        """(model, accuracy, precision, recall, f1) on the held-out split."""
        return [
            (
                t.name,
                t.train_report.accuracy,
                t.train_report.precision,
                t.train_report.recall,
                t.train_report.f1,
            )
            for t in self.trained
        ]

    def recovery_metrics(self) -> "RecoveryMetrics | None":
        """The defended run's :class:`RecoveryMetrics` (None if undefended)."""
        if self.mitigation is None:
            return None
        return RecoveryMetrics.from_dict(self.mitigation["recovery"])

    def recovery_table(self) -> list[tuple[str, str]]:
        """(metric, value) rows for the mitigation summary (Table I/II kin)."""
        metrics = self.recovery_metrics()
        return metrics.rows() if metrics is not None else []


@dataclass
class FaultExperimentResult(ExperimentResult):
    """An :class:`ExperimentResult` whose detection run ran under faults."""

    fault_plan: FaultPlan | None = None
    fault_events: list[FaultEvent] = field(default_factory=list)
    supervisor_events: list[SupervisorEvent] = field(default_factory=list)
    restarts: dict[str, int] = field(default_factory=dict)

    def fault_table(self) -> list[tuple[str, float, float, float]]:
        """(model, availability, healthy accuracy %, degraded accuracy %)."""
        return [
            (
                r.model_name,
                r.availability,
                100.0 * r.healthy_accuracy,
                100.0 * r.degraded_accuracy,
            )
            for r in self.detection
        ]


def run_fault_experiment(
    scenario: Scenario | None = None,
    train_duration: float = 60.0,
    detect_duration: float = 30.0,
    specs: Sequence[ModelSpec] | None = None,
    fault_plan: FaultPlan | None = None,
    store: "object | str | None" = None,
    telemetry: bool = False,
) -> FaultExperimentResult:
    """§IV-D with an impaired detection run: train clean, detect under faults.

    Training uses a pristine capture (as the paper's procedure does);
    the fault plan — argument, then ``scenario.fault_plan``, then
    :meth:`Scenario.default_fault_schedule` — is armed only for the
    detection capture.  Every IDS is told the plan's degraded intervals
    so its report separates healthy from degraded accuracy.

    A thin composition over the staged pipeline
    (:func:`repro.pipeline.run_experiment_pipeline`): pass ``store`` (an
    :class:`~repro.pipeline.store.ArtifactStore` or cache directory) to
    serve unchanged stages from the content-addressed cache.
    """
    from repro.pipeline.stages import run_experiment_pipeline

    result, _ = run_experiment_pipeline(
        scenario=scenario,
        train_duration=train_duration,
        detect_duration=detect_duration,
        specs=specs,
        fault_plan=fault_plan,
        faults=True,
        store=store,
        telemetry=telemetry,
    )
    assert isinstance(result, FaultExperimentResult)
    return result


def run_full_experiment(
    scenario: Scenario | None = None,
    train_duration: float = 60.0,
    detect_duration: float = 30.0,
    specs: Sequence[ModelSpec] | None = None,
    store: "object | str | None" = None,
    telemetry: bool = False,
    shuffle_buckets: int | None = None,
) -> ExperimentResult:
    """The complete §IV-D procedure on one testbed instance.

    A thin composition over the staged pipeline (BuildTestbed →
    CaptureTrain → TrainModels → CaptureDetect → Detect); results are
    byte-identical to the historical monolithic flow for the same seed.
    Pass ``store`` (an :class:`~repro.pipeline.store.ArtifactStore` or a
    cache directory path) to serve unchanged stages from the
    content-addressed cache.

    ``shuffle_buckets`` arms the event kernel's bucket-shuffle race
    detector for this run (equivalent to ``REPRO_SHUFFLE=<seed>``): any
    non-commuting same-bucket event handlers change observable results.
    The seed is deliberately *not* a :class:`Scenario` field — it must
    never enter stage cache keys — so don't combine it with ``store``
    (cached stages would bypass the shuffled simulation).
    """
    import os

    from repro.pipeline.stages import run_experiment_pipeline

    previous = os.environ.get("REPRO_SHUFFLE")
    if shuffle_buckets is not None:
        if store is not None:
            raise ValueError(
                "shuffle_buckets cannot be combined with store: cached "
                "stages would be served without re-running the shuffled "
                "simulation"
            )
        os.environ["REPRO_SHUFFLE"] = str(shuffle_buckets)
    try:
        result, _ = run_experiment_pipeline(
            scenario=scenario,
            train_duration=train_duration,
            detect_duration=detect_duration,
            specs=specs,
            faults=False,
            store=store,
            telemetry=telemetry,
        )
    finally:
        if shuffle_buckets is not None:
            if previous is None:
                os.environ.pop("REPRO_SHUFFLE", None)
            else:
                os.environ["REPRO_SHUFFLE"] = previous
    return result
