"""One-call experiment flows: generate → train → real-time detect.

These functions are the backbone of every benchmark: they reproduce the
paper's §IV-D procedure — run the testbed to build a labelled dataset,
train RF / K-Means / CNN on it (reporting accuracy/precision/recall/F1
on a held-out split), persist the models, then run a second live phase
and evaluate per-window real-time accuracy plus Table II sustainability.

Per-model feature views
-----------------------
Each :class:`ModelSpec` carries its own feature-pipeline configuration,
reflecting standard practice for each model family (and, as documented
in EXPERIMENTS.md, our hypothesis for the paper's Table I ordering):

* **RF** consumes the paper's literal §IV-A features — timestamp, ports,
  protocol, and the raw-count window statistics — unscaled, as trees
  need no normalisation.  Raw counts memorise the training run's flood
  *rates*; when the live botnet floods at a different rate, the learned
  thresholds misroute whole windows.
* **K-Means and CNN** require normalised inputs, so they consume the
  frequency-normalised statistics (scale-free ratios of the same §IV-A
  quantities) plus per-packet flag/size details, standardised.  Ratios
  stay in-distribution under rate shift, which is why these models keep
  detecting the live floods.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.capture import DatasetSummary, TrafficDataset
from repro.containers.orchestrator import SupervisorEvent
from repro.faults import FaultEvent, FaultPlan
from repro.features.pipeline import FeatureExtractor
from repro.ids.engine import RealTimeIds
from repro.ids.report import DetectionReport
from repro.ml import (
    CnnClassifier,
    KMeansDetector,
    RandomForestClassifier,
    StandardScaler,
    evaluate_classifier,
    model_size_kb,
    train_test_split,
)
from repro.ml.metrics import ClassificationReport
from repro.testbed.builder import Testbed
from repro.testbed.scenario import Scenario


class _IdentityScaler:
    """No-op scaler for models that train on raw features (trees)."""

    def fit(self, X: np.ndarray) -> "_IdentityScaler":
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        return X


@dataclass(frozen=True)
class ModelSpec:
    """A named model factory plus its feature-pipeline configuration."""

    name: str
    factory: Callable[[int], object]
    stat_set: str = "paper"
    include_details: bool = False
    include_timestamp: bool = True
    include_ips: bool = False
    scale: bool = True

    def make_extractor(self, window_seconds: float) -> FeatureExtractor:
        return FeatureExtractor(
            window_seconds=window_seconds,
            include_ips=self.include_ips,
            include_timestamp=self.include_timestamp,
            include_details=self.include_details,
            stat_set=self.stat_set,
        )


def default_model_specs(seed: int = 0) -> list[ModelSpec]:
    """The paper's three IDS models with calibrated configurations."""
    return [
        ModelSpec(
            "RF",
            lambda n, s=seed: RandomForestClassifier(
                n_estimators=60, max_depth=None, min_samples_leaf=4, random_state=s
            ),
            stat_set="paper",
            include_timestamp=True,
            scale=False,
        ),
        ModelSpec(
            "K-Means",
            lambda n, s=seed: KMeansDetector(
                n_clusters=40, auto_k=False, random_state=s
            ),
            stat_set="normalized",
            include_details=True,
            include_timestamp=False,
            scale=True,
        ),
        ModelSpec(
            "CNN",
            lambda n, s=seed: CnnClassifier(
                n_features=n,
                conv_channels=(16, 32),
                hidden=448,
                epochs=4,
                inference_batch=32,
                random_state=s,
            ),
            stat_set="normalized",
            include_details=True,
            include_timestamp=False,
            scale=True,
        ),
    ]


@dataclass
class TrainedModel:
    """A fitted model plus its training-phase evaluation and pipeline."""

    name: str
    model: object
    scaler: object
    extractor: FeatureExtractor
    train_report: ClassificationReport
    fit_seconds: float
    size_kb: float


def train_models(
    dataset: TrafficDataset,
    specs: Sequence[ModelSpec] | None = None,
    window_seconds: float = 1.0,
    test_fraction: float = 0.3,
    seed: int = 0,
) -> list[TrainedModel]:
    """Extract features, split, fit each model, report §IV-D train metrics."""
    specs = list(specs) if specs is not None else default_model_specs(seed)
    trained: list[TrainedModel] = []
    for spec in specs:
        extractor = spec.make_extractor(window_seconds)
        # One columnar batch per capture, shared by every model's pass.
        X, y, _ = extractor.transform(dataset.to_batch())
        if len(np.unique(y)) < 2:
            raise ValueError("training capture contains only one class")
        X_train, X_test, y_train, y_test = train_test_split(
            X, y, test_fraction=test_fraction, seed=seed
        )
        scaler = StandardScaler().fit(X_train) if spec.scale else _IdentityScaler()
        X_train_s = scaler.transform(X_train)
        X_test_s = scaler.transform(X_test)
        model = spec.factory(X.shape[1])
        started = time.perf_counter()
        model.fit(X_train_s, y_train)
        fit_seconds = time.perf_counter() - started
        report = evaluate_classifier(y_test, model.predict(X_test_s))
        trained.append(
            TrainedModel(
                name=spec.name,
                model=model,
                scaler=scaler,
                extractor=extractor,
                train_report=report,
                fit_seconds=fit_seconds,
                size_kb=model_size_kb(model),
            )
        )
    return trained


def run_realtime_detection(
    capture: TrafficDataset,
    trained: Sequence[TrainedModel],
    window_seconds: float = 1.0,
    degraded_intervals: Sequence[tuple[float, float]] | None = None,
    until: float | None = None,
) -> list[DetectionReport]:
    """Stream the live capture through each model's real-time IDS.

    ``degraded_intervals`` are absolute ``(start, stop)`` fault spans the
    IDS should score with degraded verdicts; ``until`` is the capture's
    nominal end time so trailing outage windows get explicit verdicts.
    """
    reports = []
    for item in trained:
        ids = RealTimeIds(
            model=item.model,
            model_name=item.name,
            extractor=item.extractor,
            scaler=item.scaler,
            window_seconds=window_seconds,
        )
        for start, stop in degraded_intervals or []:
            ids.mark_degraded(start, stop)
        reports.append(ids.process(capture.records, until=until))
    return reports


@dataclass
class ExperimentResult:
    """Everything the paper's evaluation section reports."""

    scenario: Scenario
    train_summary: DatasetSummary
    detect_summary: DatasetSummary
    trained: list[TrainedModel] = field(default_factory=list)
    detection: list[DetectionReport] = field(default_factory=list)
    infection_seconds: float = 0.0

    def table1(self) -> list[tuple[str, float]]:
        """(model, real-time mean accuracy %) rows."""
        return [(r.model_name, 100.0 * r.mean_accuracy) for r in self.detection]

    def table2(self) -> list[tuple[str, float, float, float]]:
        """(model, cpu %, memory Kb, model size Kb) rows."""
        rows = []
        for report in self.detection:
            s = report.sustainability
            assert s is not None
            rows.append((report.model_name, s.cpu_percent, s.memory_kb, s.model_size_kb))
        return rows

    def training_metrics(self) -> list[tuple[str, float, float, float, float]]:
        """(model, accuracy, precision, recall, f1) on the held-out split."""
        return [
            (
                t.name,
                t.train_report.accuracy,
                t.train_report.precision,
                t.train_report.recall,
                t.train_report.f1,
            )
            for t in self.trained
        ]


@dataclass
class FaultExperimentResult(ExperimentResult):
    """An :class:`ExperimentResult` whose detection run ran under faults."""

    fault_plan: FaultPlan | None = None
    fault_events: list[FaultEvent] = field(default_factory=list)
    supervisor_events: list[SupervisorEvent] = field(default_factory=list)
    restarts: dict[str, int] = field(default_factory=dict)

    def fault_table(self) -> list[tuple[str, float, float, float]]:
        """(model, availability, healthy accuracy %, degraded accuracy %)."""
        return [
            (
                r.model_name,
                r.availability,
                100.0 * r.healthy_accuracy,
                100.0 * r.degraded_accuracy,
            )
            for r in self.detection
        ]


def run_fault_experiment(
    scenario: Scenario | None = None,
    train_duration: float = 60.0,
    detect_duration: float = 30.0,
    specs: Sequence[ModelSpec] | None = None,
    fault_plan: FaultPlan | None = None,
) -> FaultExperimentResult:
    """§IV-D with an impaired detection run: train clean, detect under faults.

    Training uses a pristine capture (as the paper's procedure does);
    the fault plan — argument, then ``scenario.fault_plan``, then
    :meth:`Scenario.default_fault_schedule` — is armed only for the
    detection capture.  Every IDS is told the plan's degraded intervals
    so its report separates healthy from degraded accuracy.
    """
    scenario = scenario or Scenario()
    plan = fault_plan or scenario.fault_plan
    if plan is None:
        plan = scenario.default_fault_schedule(detect_duration)
    testbed = Testbed(scenario).build()
    infection_seconds = testbed.infect_all()
    train_capture = testbed.capture(
        train_duration, scenario.training_schedule(train_duration)
    )
    trained = train_models(
        train_capture,
        specs=specs,
        window_seconds=scenario.window_seconds,
        seed=scenario.seed,
    )
    base = testbed.sim.now
    detect_capture = testbed.capture(
        detect_duration,
        scenario.detection_schedule(detect_duration),
        fault_plan=plan,
    )
    detection = run_realtime_detection(
        detect_capture,
        trained,
        window_seconds=scenario.window_seconds,
        degraded_intervals=[
            (base + start, base + stop) for start, stop in plan.degraded_intervals()
        ],
        until=base + detect_duration,
    )
    testbed.sim.finalize()  # teardown sanitizer checks (no-op when disabled)
    injector = testbed.fault_injector
    return FaultExperimentResult(
        scenario=scenario,
        train_summary=train_capture.summary(),
        detect_summary=detect_capture.summary(),
        trained=trained,
        detection=detection,
        infection_seconds=infection_seconds,
        fault_plan=plan,
        fault_events=list(injector.log) if injector is not None else [],
        supervisor_events=list(testbed.orchestrator.events),
        restarts={
            name: container.restart_count
            for name, container in testbed.orchestrator.containers.items()
            if container.restart_count
        },
    )


def run_full_experiment(
    scenario: Scenario | None = None,
    train_duration: float = 60.0,
    detect_duration: float = 30.0,
    specs: Sequence[ModelSpec] | None = None,
) -> ExperimentResult:
    """The complete §IV-D procedure on one testbed instance."""
    scenario = scenario or Scenario()
    testbed = Testbed(scenario).build()
    infection_seconds = testbed.infect_all()
    train_capture = testbed.capture(
        train_duration, scenario.training_schedule(train_duration)
    )
    trained = train_models(
        train_capture,
        specs=specs,
        window_seconds=scenario.window_seconds,
        seed=scenario.seed,
    )
    detect_capture = testbed.capture(
        detect_duration, scenario.detection_schedule(detect_duration)
    )
    detection = run_realtime_detection(
        detect_capture, trained, window_seconds=scenario.window_seconds
    )
    testbed.sim.finalize()  # teardown sanitizer checks (no-op when disabled)
    return ExperimentResult(
        scenario=scenario,
        train_summary=train_capture.summary(),
        detect_summary=detect_capture.summary(),
        trained=trained,
        detection=detection,
        infection_seconds=infection_seconds,
    )
