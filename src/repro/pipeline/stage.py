"""Stage protocol and DAG runner for the staged experiment pipeline.

The paper's §IV-D procedure decomposes into five stages (BuildTestbed →
CaptureTrain → TrainModels → CaptureDetect → Detect).  Two of them are
*pure* — TrainModels and Detect consume only upstream artifacts — while
the testbed stages additionally thread **live state** (the running
simulator) that cannot be serialized.  The runner honours both:

* every stage's output is a disk-serializable artifact, content-addressed
  by :func:`~repro.pipeline.store.stage_key` so unchanged stages are
  cache hits;
* stages declare the live state they require/provide, and the runner
  re-executes exactly the earlier live stages a cache-missing stage
  needs (a fully-cached pipeline executes *nothing* — no simulation, no
  training — and artifacts load on demand).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro import obs
from repro.pipeline.store import ArtifactStore, stage_key
from repro.testbed.scenario import Scenario


class Stage:
    """One cacheable step of an experiment pipeline.

    Subclasses set ``name`` (unique within a pipeline), ``deps`` (names
    of upstream stages whose artifacts feed :meth:`run` and whose keys
    chain into this stage's cache key), and the live-state contract:
    ``requires_state`` names context entries that must exist before
    :meth:`run`, ``provides_state`` names entries it creates *or
    mutates*.  A cache-missing stage forces every earlier provider of
    its required state to re-execute, because live state (a running
    testbed) cannot be reloaded from disk.
    """

    name: str = ""
    deps: tuple[str, ...] = ()
    requires_state: tuple[str, ...] = ()
    provides_state: tuple[str, ...] = ()

    def params(self) -> dict:
        """JSON-serializable parameters hashed into the cache key."""
        return {}

    def run(self, ctx: "PipelineContext", inputs: dict[str, Any]) -> Any:
        """Execute the stage; ``inputs`` maps dep name → artifact value."""
        raise NotImplementedError

    def save(self, value: Any, directory: Path) -> None:
        """Serialize the artifact value into ``directory``."""
        raise NotImplementedError

    def load(self, directory: Path) -> Any:
        """Reload an artifact previously written by :meth:`save`."""
        raise NotImplementedError


@dataclass
class PipelineContext:
    """Shared run context: the scenario, live state, and finalizers."""

    scenario: Scenario
    state: dict[str, Any] = field(default_factory=dict)
    finalizers: list[Callable[[], None]] = field(default_factory=list)

    def add_finalizer(self, fn: Callable[[], None]) -> None:
        """Register teardown to run once the whole pipeline succeeds."""
        self.finalizers.append(fn)


@dataclass
class StageOutcome:
    """What happened to one stage during a pipeline run."""

    name: str
    key: str
    cache_hit: bool  # artifact was already in the store
    executed: bool  # run() was invoked (cache miss, or live-state need)


class PipelineResult:
    """Outcomes plus lazy access to every stage's artifact value."""

    def __init__(
        self,
        stages: dict[str, Stage],
        keys: dict[str, str],
        outcomes: dict[str, StageOutcome],
        values: dict[str, Any],
        store: ArtifactStore | None,
    ) -> None:
        self.stages = stages
        self.keys = keys
        self.outcomes = outcomes
        self._values = values
        self.store = store

    def value(self, name: str) -> Any:
        """The artifact value of stage ``name`` (loads from cache lazily)."""
        if name not in self._values:
            if self.store is None:
                raise KeyError(f"stage {name!r} produced no value and no store is set")
            entry = self.store.open(self.keys[name])
            self._values[name] = self.stages[name].load(entry)
        return self._values[name]

    @property
    def executed(self) -> list[str]:
        return [name for name, o in self.outcomes.items() if o.executed]

    @property
    def cache_hits(self) -> list[str]:
        return [name for name, o in self.outcomes.items() if o.cache_hit]

    def cache_summary(self) -> dict[str, dict]:
        """Per-stage ``{"key", "cache_hit", "executed"}`` map (JSON-able)."""
        return {
            name: {
                "key": outcome.key,
                "cache_hit": outcome.cache_hit,
                "executed": outcome.executed,
            }
            for name, outcome in self.outcomes.items()
        }


class PipelineRunner:
    """Executes a stage DAG with content-addressed caching.

    ``stages`` must be topologically ordered (each stage's deps appear
    earlier); the §IV-D pipelines are naturally written that way.  With
    ``store=None`` every stage executes (the uncached, monolith-
    equivalent path).
    """

    def __init__(self, stages: list[Stage], store: ArtifactStore | None = None) -> None:
        seen: set[str] = set()
        for stage in stages:
            if not stage.name:
                raise ValueError(f"stage {stage!r} has no name")
            if stage.name in seen:
                raise ValueError(f"duplicate stage name {stage.name!r}")
            missing = [dep for dep in stage.deps if dep not in seen]
            if missing:
                raise ValueError(
                    f"stage {stage.name!r} depends on {missing} which do(es) not "
                    "appear earlier in the pipeline"
                )
            seen.add(stage.name)
        self.stages = list(stages)
        self.store = store

    def compute_keys(self, scenario: Scenario) -> dict[str, str]:
        """Content keys for every stage (scenario + params + upstream)."""
        scenario_dict = scenario.to_dict()
        keys: dict[str, str] = {}
        for stage in self.stages:
            keys[stage.name] = stage_key(
                stage.name,
                scenario_dict,
                stage.params(),
                {dep: keys[dep] for dep in stage.deps},
            )
        return keys

    def _must_run(self, cached: dict[str, bool]) -> set[str]:
        """Stages to execute: cache misses plus their live-state chain."""
        must_run = {name for name, hit in cached.items() if not hit}
        changed = True
        while changed:
            changed = False
            for index, stage in enumerate(self.stages):
                if stage.name not in must_run:
                    continue
                for resource in stage.requires_state:
                    for provider in self.stages[:index]:
                        if (
                            resource in provider.provides_state
                            and provider.name not in must_run
                        ):
                            must_run.add(provider.name)
                            changed = True
        return must_run

    def run(self, scenario: Scenario) -> PipelineResult:
        """Execute the pipeline for ``scenario`` and return the outcomes."""
        keys = self.compute_keys(scenario)
        cached = {
            stage.name: (
                self.store.contains(keys[stage.name]) if self.store is not None else False
            )
            for stage in self.stages
        }
        must_run = self._must_run(cached)
        stage_by_name = {stage.name: stage for stage in self.stages}
        ctx = PipelineContext(scenario=scenario)
        values: dict[str, Any] = {}
        outcomes: dict[str, StageOutcome] = {}

        def input_value(name: str) -> Any:
            if name not in values:
                assert self.store is not None  # cached[name] implies a store
                entry = self.store.open(keys[name])
                values[name] = stage_by_name[name].load(entry)
            return values[name]

        octx = obs.current()
        tracer = octx.tracer
        obs_hits = octx.registry.counter("pipeline.cache_hits")
        obs_misses = octx.registry.counter("pipeline.cache_misses")
        for stage in self.stages:
            hit = cached[stage.name]
            (obs_hits if hit else obs_misses).inc()
            # Every stage gets a span — cache hits included, so traces
            # always show all five §IV-D stages with their outcome.
            executed = stage.name in must_run
            with tracer.span(
                f"stage.{stage.name}", cache_hit=hit, executed=executed
            ):
                if not executed:
                    outcomes[stage.name] = StageOutcome(
                        stage.name, keys[stage.name], hit, False
                    )
                    continue
                inputs = {dep: input_value(dep) for dep in stage.deps}
                value = stage.run(ctx, inputs)
                values[stage.name] = value
                if self.store is not None and not hit:
                    staging = self.store.begin(keys[stage.name])
                    try:
                        stage.save(value, staging)
                    except Exception:
                        self.store.abort(staging)
                        raise
                    self.store.commit(
                        keys[stage.name], staging, meta={"stage": stage.name}
                    )
                outcomes[stage.name] = StageOutcome(
                    stage.name, keys[stage.name], hit, True
                )
        for finalizer in ctx.finalizers:
            finalizer()
        return PipelineResult(stage_by_name, keys, outcomes, values, self.store)
