"""Campaign runner: sweep a scenario/seed grid, sharded across workers.

A :class:`CampaignSpec` expands into one run per (scenario × seed) grid
cell; :func:`run_campaign` executes them — in process for ``jobs=1``,
across a ``multiprocessing`` pool otherwise — with every worker sharing
one content-addressed :class:`~repro.pipeline.store.ArtifactStore`.
Per-run results are merged, in deterministic grid order, into a
:class:`CampaignReport` with per-scenario Table I / Table II aggregates
and cache accounting, which is how the repo reports robustness across
traffic mixes (the sweep-style evaluation of Kitsune-like IDS papers).

Repeating a campaign against the same cache directory re-executes zero
stages: every run is served from the store and the report (timing
aside) is identical.
"""

from __future__ import annotations

import contextlib
import json
import multiprocessing
import signal
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Sequence

from repro import obs
from repro.pipeline.stages import run_experiment_pipeline
from repro.testbed.experiment import ExperimentResult, FaultExperimentResult
from repro.testbed.scenario import Scenario


@dataclass(frozen=True)
class CampaignSpec:
    """The grid: scenarios × seeds, plus shared run parameters."""

    scenarios: tuple[Scenario, ...]
    seeds: tuple[int, ...]
    train_duration: float = 60.0
    detect_duration: float = 30.0
    faults: bool = False
    labels: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ValueError("campaign needs at least one scenario")
        if not self.seeds:
            raise ValueError("campaign needs at least one seed")
        if self.labels and len(self.labels) != len(self.scenarios):
            raise ValueError(
                f"{len(self.labels)} label(s) for {len(self.scenarios)} scenario(s)"
            )

    def scenario_labels(self) -> tuple[str, ...]:
        if self.labels:
            return self.labels
        return tuple(
            f"s{index}-dev{scenario.n_devices}"
            for index, scenario in enumerate(self.scenarios)
        )


@dataclass(frozen=True)
class CampaignRun:
    """One grid cell: a concrete scenario (seed applied) plus metadata."""

    label: str
    seed: int
    scenario: Scenario
    train_duration: float
    detect_duration: float
    faults: bool
    cache_dir: str | None = None


def expand_grid(spec: CampaignSpec, cache_dir: str | Path | None = None) -> list[CampaignRun]:
    """Scenario × seed expansion, in deterministic grid order."""
    runs = []
    for label, scenario in zip(spec.scenario_labels(), spec.scenarios):
        for seed in spec.seeds:
            runs.append(
                CampaignRun(
                    label=label,
                    seed=seed,
                    scenario=replace(scenario, seed=seed),
                    train_duration=spec.train_duration,
                    detect_duration=spec.detect_duration,
                    faults=spec.faults,
                    cache_dir=str(cache_dir) if cache_dir is not None else None,
                )
            )
    return runs


@dataclass
class RunRecord:
    """The portable (picklable, JSON-able) outcome of one campaign run."""

    label: str
    seed: int
    scenario: dict
    faults: bool
    infection_seconds: float
    train_summary: dict
    detect_summary: dict
    table1: list[list]  # [model, accuracy %]
    table2: list[list]  # [model, cpu %, memory Kb, model size Kb]
    training_metrics: list[list]  # [model, acc, precision, recall, f1]
    fault_table: list[list] | None
    stage_cache: dict[str, dict]
    elapsed_seconds: float
    #: The run's obs snapshot ({"metrics", "spans", "events"}).  Gated
    #: under ``include_timing`` in :meth:`to_dict` because cached and
    #: uncached repeats of the same run observe different telemetry.
    telemetry: dict | None = None
    #: RecoveryMetrics dict when the scenario carried a MitigationPlan.
    recovery: dict | None = None
    #: Why the run failed (``"ExcType: message"``); None for successes.
    error: str | None = None
    #: Execution attempts (1 + retries).  Gated under ``include_timing``
    #: because cached repeats succeed first try regardless of history.
    attempts: int = 1
    #: Flight-recorder postmortem for failed runs (the ring of kernel
    #: dispatches / events / spans just before death plus crash-time
    #: metric state); None for successes.
    flight: dict | None = None

    @property
    def failed(self) -> bool:
        return self.error is not None

    def to_dict(self, include_timing: bool = True) -> dict:
        payload = {
            "label": self.label,
            "seed": self.seed,
            "scenario": self.scenario,
            "faults": self.faults,
            "infection_seconds": self.infection_seconds,
            "train_summary": self.train_summary,
            "detect_summary": self.detect_summary,
            "table1": self.table1,
            "table2": self.table2,
            "training_metrics": self.training_metrics,
            "fault_table": self.fault_table,
            "recovery": self.recovery,
            "error": self.error,
            "flight": self.flight,
        }
        if include_timing:
            payload["stage_cache"] = self.stage_cache
            payload["elapsed_seconds"] = self.elapsed_seconds
            payload["telemetry"] = self.telemetry
            payload["attempts"] = self.attempts
        return payload


def _summary_dict(summary) -> dict:
    return {
        "total": summary.total,
        "malicious": summary.malicious,
        "benign": summary.benign,
        "by_attack": dict(sorted(summary.by_attack.items())),
        "duration": summary.duration,
    }


def execute_run(run: CampaignRun) -> RunRecord:
    """Execute one grid cell through the staged pipeline.

    Top-level (not a closure) so multiprocessing workers can receive it
    under every start method.  Each worker opens its own handle on the
    shared content-addressed store; commits are atomic, so concurrent
    writers are safe.
    """
    # Each run gets its own telemetry scope; the campaign.run span's
    # wall cost is the shard's elapsed time on this host (what the two
    # baselined perf_counter reads used to measure directly).
    with obs.scope() as octx:
        span = octx.tracer.span("campaign.run", label=run.label, seed=run.seed)
        try:
            with span:
                result, outcome = run_experiment_pipeline(
                    scenario=run.scenario,
                    train_duration=run.train_duration,
                    detect_duration=run.detect_duration,
                    faults=run.faults,
                    store=run.cache_dir,
                )
        except Exception as exc:
            # Any death inside the run — crash, sanitizer, or the
            # SIGALRM timeout — leaves this scope's flight ring on the
            # exception so the tombstone carries a postmortem.
            if octx.flight is not None and getattr(exc, "flight_dump", None) is None:
                exc.flight_dump = octx.flight.dump(registry=octx.registry)
            raise
        elapsed = span.wall_seconds
        telemetry = octx.snapshot()
    return RunRecord(
        label=run.label,
        seed=run.seed,
        scenario=run.scenario.to_dict(),
        faults=run.faults,
        infection_seconds=result.infection_seconds,
        train_summary=_summary_dict(result.train_summary),
        detect_summary=_summary_dict(result.detect_summary),
        table1=[list(row) for row in result.table1()],
        table2=[list(row) for row in result.table2()],
        training_metrics=[list(row) for row in result.training_metrics()],
        fault_table=(
            [list(row) for row in result.fault_table()]
            if isinstance(result, FaultExperimentResult)
            else None
        ),
        stage_cache=outcome.cache_summary(),
        elapsed_seconds=elapsed,
        telemetry=telemetry,
        recovery=(result.mitigation or {}).get("recovery"),
    )


class _RunTimeout(Exception):
    """Raised inside a worker when a run exceeds its wall-clock budget."""


@contextlib.contextmanager
def _deadline(seconds: float | None):
    """SIGALRM-based wall-clock budget for the current (worker) process.

    No-ops when ``seconds`` is None or the platform lacks ``SIGALRM``
    (Windows); workers are single-run-at-a-time, so claiming the ALRM
    handler for the duration is safe.
    """
    if seconds is None or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _expired(signum, frame):
        raise _RunTimeout(f"run exceeded {seconds:.0f}s wall-clock budget")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _failed_record(
    run: CampaignRun, error: str, attempts: int, flight: dict | None = None
) -> RunRecord:
    """A tombstone record: the grid cell's slot, minus any tables."""
    return RunRecord(
        label=run.label,
        seed=run.seed,
        scenario=run.scenario.to_dict(),
        faults=run.faults,
        infection_seconds=0.0,
        train_summary={},
        detect_summary={},
        table1=[],
        table2=[],
        training_metrics=[],
        fault_table=None,
        stage_cache={},
        elapsed_seconds=0.0,
        error=error,
        attempts=attempts,
        flight=flight,
    )


def execute_run_safe(
    run: CampaignRun, max_retries: int = 1, run_timeout: float | None = None
) -> RunRecord:
    """Crash-tolerant :func:`execute_run`: never raises, always records.

    A worker exception (including a :class:`_RunTimeout` from the
    ``run_timeout`` budget) is retried up to ``max_retries`` times; if
    every attempt fails, the grid cell is filled with a failed
    :class:`RunRecord` carrying the final error string — so one poisoned
    run degrades the campaign's report instead of aborting the pool.
    """
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")
    attempts = 0
    while True:
        attempts += 1
        try:
            with _deadline(run_timeout):
                record = execute_run(run)
            record.attempts = attempts
            return record
        except Exception as exc:  # noqa: BLE001 — tombstone everything
            if attempts > max_retries:
                return _failed_record(
                    run,
                    f"{type(exc).__name__}: {exc}",
                    attempts,
                    flight=getattr(exc, "flight_dump", None),
                )


@dataclass
class CampaignReport:
    """Merged campaign outcome: per-run records plus grid aggregates."""

    records: list[RunRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Aggregates

    def table1_aggregate(self) -> dict[str, dict[str, dict[str, float]]]:
        """Per scenario label, per model: mean/min/max accuracy across seeds."""
        grouped: dict[str, dict[str, list[float]]] = {}
        for record in self.records:
            if record.failed:
                continue
            models = grouped.setdefault(record.label, {})
            for model, accuracy in record.table1:
                models.setdefault(model, []).append(accuracy)
        return {
            label: {
                model: {
                    "mean": sum(values) / len(values),
                    "min": min(values),
                    "max": max(values),
                    "n": float(len(values)),
                }
                for model, values in models.items()
            }
            for label, models in grouped.items()
        }

    def table2_aggregate(self) -> dict[str, dict[str, dict[str, float]]]:
        """Per scenario label, per model: mean cpu/memory/model-size."""
        grouped: dict[str, dict[str, list[tuple[float, float, float]]]] = {}
        for record in self.records:
            if record.failed:
                continue
            models = grouped.setdefault(record.label, {})
            for model, cpu, memory, size in record.table2:
                models.setdefault(model, []).append((cpu, memory, size))
        return {
            label: {
                model: {
                    "cpu_percent": sum(r[0] for r in rows) / len(rows),
                    "memory_kb": sum(r[1] for r in rows) / len(rows),
                    "model_size_kb": sum(r[2] for r in rows) / len(rows),
                }
                for model, rows in models.items()
            }
            for label, models in grouped.items()
        }

    def recovery_aggregate(self) -> dict[str, dict[str, float]]:
        """Per scenario label: mean recovery metrics across defended seeds."""
        grouped: dict[str, list[dict]] = {}
        for record in self.records:
            if record.recovery is not None:
                grouped.setdefault(record.label, []).append(record.recovery)
        keys = ("goodput_retained_pct", "time_to_mitigate", "collateral_block_rate")
        return {
            label: {
                **{key: sum(r[key] for r in rows) / len(rows) for key in keys},
                "n": float(len(rows)),
            }
            for label, rows in grouped.items()
        }

    # ------------------------------------------------------------------
    # Failure accounting

    @property
    def runs_failed(self) -> int:
        return sum(1 for record in self.records if record.failed)

    @property
    def runs_retried(self) -> int:
        return sum(1 for record in self.records if record.attempts > 1)

    def failures(self) -> list[dict]:
        """(label, seed, error, attempts) for every failed grid cell."""
        return [
            {
                "label": record.label,
                "seed": record.seed,
                "error": record.error,
                "attempts": record.attempts,
            }
            for record in self.records
            if record.failed
        ]

    # ------------------------------------------------------------------
    # Cache accounting

    @property
    def stages_total(self) -> int:
        return sum(len(record.stage_cache) for record in self.records)

    @property
    def stages_executed(self) -> int:
        return sum(
            1
            for record in self.records
            for info in record.stage_cache.values()
            if info["executed"]
        )

    @property
    def cache_hits(self) -> int:
        return sum(
            1
            for record in self.records
            for info in record.stage_cache.values()
            if info["cache_hit"]
        )

    @property
    def cache_hit_rate(self) -> float:
        total = self.stages_total
        return self.cache_hits / total if total else 0.0

    # ------------------------------------------------------------------
    # Rendering

    def to_dict(self, include_timing: bool = True) -> dict:
        payload: dict = {
            "runs": [record.to_dict(include_timing=include_timing) for record in self.records],
            "table1_aggregate": self.table1_aggregate(),
            "table2_aggregate": self.table2_aggregate(),
        }
        if any(record.recovery is not None for record in self.records):
            payload["recovery_aggregate"] = self.recovery_aggregate()
        if self.runs_failed:
            payload["failures"] = self.failures()
        if include_timing:
            payload["cache"] = {
                "stages_total": self.stages_total,
                "stages_executed": self.stages_executed,
                "cache_hits": self.cache_hits,
                "cache_hit_rate": self.cache_hit_rate,
            }
        return payload

    def to_json(self, include_timing: bool = True) -> str:
        return json.dumps(self.to_dict(include_timing=include_timing), indent=2, sort_keys=True)

    def format_text(self) -> str:
        """The ``ddoshield campaign`` console rendering."""
        lines = [f"campaign: {len(self.records)} run(s)"]
        if self.runs_failed or self.runs_retried:
            lines[0] += f" — {self.runs_failed} failed, {self.runs_retried} retried"
        for record in self.records:
            if record.failed:
                line = (
                    f"  {record.label} seed={record.seed}: FAILED "
                    f"({record.error}) after {record.attempts} attempt(s)"
                )
                if record.flight:
                    line += f" [flight: {len(record.flight.get('entries', []))} entries]"
                lines.append(line)
                continue
            cells = ", ".join(f"{model} {accuracy:.2f}%" for model, accuracy in record.table1)
            lines.append(
                f"  {record.label} seed={record.seed}: {cells} "
                f"[{record.elapsed_seconds:.1f}s]"
            )
        lines.append("\nTable I aggregate — real-time accuracy (%) across seeds:")
        for label, models in sorted(self.table1_aggregate().items()):
            for model, stats in models.items():
                lines.append(
                    f"  {label} {model}: mean={stats['mean']:.2f} "
                    f"min={stats['min']:.2f} max={stats['max']:.2f} (n={int(stats['n'])})"
                )
        lines.append("\nTable II aggregate — sustainability (mean across seeds):")
        for label, models in sorted(self.table2_aggregate().items()):
            for model, stats in models.items():
                lines.append(
                    f"  {label} {model}: cpu={stats['cpu_percent']:.2f}% "
                    f"mem={stats['memory_kb']:.2f}Kb model={stats['model_size_kb']:.2f}Kb"
                )
        recovery = self.recovery_aggregate()
        if recovery:
            lines.append("\nRecovery aggregate — mitigation outcome (mean across seeds):")
            for label, stats in sorted(recovery.items()):
                lines.append(
                    f"  {label}: goodput retained={stats['goodput_retained_pct']:.1f}% "
                    f"time-to-mitigate={stats['time_to_mitigate']:.2f}s "
                    f"collateral={stats['collateral_block_rate']:.2f} "
                    f"(n={int(stats['n'])})"
                )
        lines.append(
            f"\ncache: {self.cache_hits}/{self.stages_total} stage(s) served from cache "
            f"({100 * self.cache_hit_rate:.0f}%), {self.stages_executed} executed"
        )
        return "\n".join(lines)


def run_campaign(
    spec: CampaignSpec,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    max_retries: int = 1,
    run_timeout: float | None = None,
) -> CampaignReport:
    """Execute the full grid and merge the records in grid order.

    ``jobs > 1`` shards runs across a ``multiprocessing`` pool; results
    are merged in grid order regardless of completion order, so the
    report is deterministic for a given grid.  ``cache_dir`` points all
    runs at one shared content-addressed artifact store, enabling both
    cross-run reuse (shared stage prefixes within a campaign) and
    resume-from-cache on repeated invocations.

    Execution is crash-tolerant: a run that raises (or exceeds
    ``run_timeout`` wall-clock seconds) is retried up to ``max_retries``
    times, then recorded as a failed :class:`RunRecord` — the campaign
    always completes and the report names every casualty.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    runs = expand_grid(spec, cache_dir=cache_dir)
    calls = [(run, max_retries, run_timeout) for run in runs]
    if jobs == 1 or len(runs) == 1:
        records = [execute_run_safe(*call) for call in calls]
    else:
        with multiprocessing.Pool(processes=min(jobs, len(runs))) as pool:
            records = pool.starmap(execute_run_safe, calls)
    return CampaignReport(records=records)


def experiment_to_record(
    result: ExperimentResult, label: str, stage_cache: dict[str, dict] | None = None
) -> RunRecord:
    """Adapt a standalone :class:`ExperimentResult` into a campaign record."""
    return RunRecord(
        label=label,
        seed=result.scenario.seed,
        scenario=result.scenario.to_dict(),
        faults=isinstance(result, FaultExperimentResult),
        infection_seconds=result.infection_seconds,
        train_summary=_summary_dict(result.train_summary),
        detect_summary=_summary_dict(result.detect_summary),
        table1=[list(row) for row in result.table1()],
        table2=[list(row) for row in result.table2()],
        training_metrics=[list(row) for row in result.training_metrics()],
        fault_table=(
            [list(row) for row in result.fault_table()]
            if isinstance(result, FaultExperimentResult)
            else None
        ),
        stage_cache=stage_cache or {},
        elapsed_seconds=0.0,
        recovery=(result.mitigation or {}).get("recovery"),
    )
