"""Staged experiment pipeline: cacheable stages, artifact store, campaigns.

The §IV-D procedure decomposed into content-addressed stages
(:mod:`repro.pipeline.stages`) executed by a DAG runner
(:mod:`repro.pipeline.stage`) over an on-disk artifact store
(:mod:`repro.pipeline.store`), plus a parallel scenario/seed campaign
runner (:mod:`repro.pipeline.campaign`).  ``run_full_experiment`` and
``run_fault_experiment`` in :mod:`repro.testbed.experiment` are thin
compositions over these pieces.
"""

from repro.pipeline.campaign import (
    CampaignReport,
    CampaignRun,
    CampaignSpec,
    RunRecord,
    execute_run,
    execute_run_safe,
    expand_grid,
    run_campaign,
)
from repro.pipeline.stage import (
    PipelineContext,
    PipelineResult,
    PipelineRunner,
    Stage,
    StageOutcome,
)
from repro.pipeline.stages import (
    BuildTestbedStage,
    CaptureArtifact,
    CaptureStage,
    DetectStage,
    MitigateStage,
    TrainModelsStage,
    experiment_stages,
    run_experiment_pipeline,
    spec_fingerprint,
)
from repro.pipeline.store import ArtifactStore, StoreStats, canonical_json, stage_key

__all__ = [
    "ArtifactStore",
    "BuildTestbedStage",
    "CampaignReport",
    "CampaignRun",
    "CampaignSpec",
    "CaptureArtifact",
    "CaptureStage",
    "DetectStage",
    "MitigateStage",
    "PipelineContext",
    "PipelineResult",
    "PipelineRunner",
    "RunRecord",
    "Stage",
    "StageOutcome",
    "StoreStats",
    "TrainModelsStage",
    "canonical_json",
    "execute_run",
    "execute_run_safe",
    "expand_grid",
    "experiment_stages",
    "run_campaign",
    "run_experiment_pipeline",
    "spec_fingerprint",
    "stage_key",
]
