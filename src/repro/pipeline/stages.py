"""Concrete pipeline stages for the paper's §IV-D experiment flows.

The DAG (clean flow; the fault variant arms a plan on the detect
capture):

    build ──► capture-train ──► train-models ──┐
                    │                          ├──► detect
                    └────► capture-detect ─────┘

``build``, ``capture-train`` and ``capture-detect`` thread the live
testbed (the running simulator) through the pipeline context;
``train-models`` and ``detect`` are pure functions of upstream
artifacts, so a run whose captures are cached trains and detects without
ever building a testbed — and a fully cached run executes nothing.
"""

from __future__ import annotations

import json
from contextlib import nullcontext
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Sequence

from repro import obs
from repro.capture import TrafficDataset
from repro.containers.orchestrator import SupervisorEvent
from repro.faults import FaultEvent, FaultPlan
from repro.features.pipeline import FeatureExtractor
from repro.ids.defense import MitigationPlan, compute_recovery_metrics
from repro.ids.report import DetectionReport
from repro.ml.metrics import ClassificationReport
from repro.ml.serialization import ModelBundle, load_model_bundle, save_model_bundle
from repro.pipeline.stage import (
    PipelineContext,
    PipelineResult,
    PipelineRunner,
    Stage,
)
from repro.pipeline.store import ArtifactStore
from repro.testbed.builder import Testbed
from repro.testbed.experiment import (
    ExperimentResult,
    FaultExperimentResult,
    ModelSpec,
    TrainedModel,
    run_realtime_detection,
    train_models,
)
from repro.testbed.impact import attach_victim_monitor
from repro.testbed.scenario import AttackPhase, Scenario

#: Live-state resource name for the running testbed.
TESTBED_STATE = "testbed"


def spec_fingerprint(spec: ModelSpec) -> dict:
    """The cache-relevant identity of a :class:`ModelSpec`.

    Covers every declarative field; the model *factory* is a callable
    and cannot be hashed, so two specs differing only in factory
    hyper-parameters must also differ in ``name`` to be cached apart.
    """
    stat_set = spec.stat_set
    return {
        "name": spec.name,
        "stat_set": list(stat_set) if not isinstance(stat_set, str) else stat_set,
        "include_details": spec.include_details,
        "include_timestamp": spec.include_timestamp,
        "include_ips": spec.include_ips,
        "scale": spec.scale,
    }


class BuildTestbedStage(Stage):
    """Assemble Figure 1 and run the Mirai infection lifecycle."""

    name = "build"
    provides_state = (TESTBED_STATE,)

    def run(self, ctx: PipelineContext, inputs: dict[str, Any]) -> dict:
        testbed = Testbed(ctx.scenario).build()
        infection_seconds = testbed.infect_all()
        ctx.state[TESTBED_STATE] = testbed
        # Sanitizer teardown once the whole pipeline has finished.
        ctx.add_finalizer(testbed.sim.finalize)
        return {"infection_seconds": infection_seconds}

    def save(self, value: dict, directory: Path) -> None:
        (directory / "build.json").write_text(json.dumps(value, sort_keys=True))

    def load(self, directory: Path) -> dict:
        return json.loads((directory / "build.json").read_text())


@dataclass
class CaptureArtifact:
    """A labelled capture plus the capture-phase metadata detection needs.

    ``mitigation`` is populated only by :class:`MitigateStage`: the plan,
    the controller's event log, victim impact samples, and the folded
    :class:`~repro.ids.defense.RecoveryMetrics`.
    """

    dataset: TrafficDataset
    meta: dict
    mitigation: dict | None = None


class CaptureStage(Stage):
    """Record one labelled capture phase on the live testbed.

    ``fault_plan=None`` reproduces :meth:`Testbed.capture`'s fallback to
    ``scenario.fault_plan`` (the capture key still covers it through the
    scenario dict).  With a plan armed, the artifact metadata records the
    absolute degraded intervals, the nominal end time, and the fault /
    supervisor traces so the downstream detect stage stays pure.
    """

    requires_state = (TESTBED_STATE,)
    provides_state = (TESTBED_STATE,)  # the capture advances the sim clock

    def __init__(
        self,
        name: str,
        duration: float,
        schedule: Sequence[AttackPhase],
        deps: tuple[str, ...],
        fault_plan: FaultPlan | None = None,
    ) -> None:
        self.name = name
        self.deps = deps
        self.duration = duration
        self.schedule = list(schedule)
        self.fault_plan = fault_plan

    def params(self) -> dict:
        return {
            "duration": self.duration,
            "schedule": [asdict(phase) for phase in self.schedule],
            "fault_plan": self.fault_plan.to_dict() if self.fault_plan else None,
        }

    def run(self, ctx: PipelineContext, inputs: dict[str, Any]) -> CaptureArtifact:
        testbed: Testbed = ctx.state[TESTBED_STATE]
        base = testbed.sim.now
        dataset = testbed.capture(self.duration, self.schedule, fault_plan=self.fault_plan)
        meta: dict = {"base": base, "end": testbed.sim.now}
        if self.fault_plan is not None:
            meta["until"] = base + self.duration
            meta["degraded_intervals"] = [
                [base + start, base + stop]
                for start, stop in self.fault_plan.degraded_intervals()
            ]
            injector = testbed.fault_injector
            meta["fault_events"] = (
                [asdict(event) for event in injector.log] if injector is not None else []
            )
            meta["supervisor_events"] = [
                asdict(event) for event in testbed.orchestrator.events
            ]
            meta["restarts"] = {
                name: container.restart_count
                for name, container in testbed.orchestrator.containers.items()
                if container.restart_count
            }
        return CaptureArtifact(dataset=dataset, meta=meta)

    def save(self, value: CaptureArtifact, directory: Path) -> None:
        value.dataset.save(directory / "capture.csv")
        (directory / "meta.json").write_text(json.dumps(value.meta, sort_keys=True))
        if value.mitigation is not None:
            (directory / "mitigation.json").write_text(
                json.dumps(value.mitigation, sort_keys=True)
            )

    def load(self, directory: Path) -> CaptureArtifact:
        mitigation_path = directory / "mitigation.json"
        return CaptureArtifact(
            dataset=TrafficDataset.load(directory / "capture.csv"),
            meta=json.loads((directory / "meta.json").read_text()),
            mitigation=(
                json.loads(mitigation_path.read_text())
                if mitigation_path.exists()
                else None
            ),
        )


class MitigateStage(CaptureStage):
    """A detect capture with the detect→mitigate→recover loop deployed.

    Keeps the ``capture-detect`` stage name so the DAG shape (and the
    downstream :class:`DetectStage`) is identical to an undefended run;
    the :class:`~repro.ids.defense.MitigationPlan` enters the cache key
    via :meth:`params`.  Needs ``train-models`` as an extra dep: the live
    IDS runs the plan's trained model against the tap in real time.
    """

    def __init__(
        self,
        name: str,
        duration: float,
        schedule: Sequence[AttackPhase],
        deps: tuple[str, ...],
        plan: MitigationPlan,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        super().__init__(name, duration, schedule, deps=deps, fault_plan=fault_plan)
        self.plan = plan

    def params(self) -> dict:
        payload = super().params()
        payload["mitigation_plan"] = self.plan.to_dict()
        return payload

    def run(self, ctx: PipelineContext, inputs: dict[str, Any]) -> CaptureArtifact:
        testbed: Testbed = ctx.state[TESTBED_STATE]
        trained: list[TrainedModel] = inputs["train-models"]
        match = next((t for t in trained if t.name == self.plan.model), None)
        if match is None:
            names = ", ".join(t.name for t in trained)
            raise ValueError(
                f"mitigation plan wants model {self.plan.model!r}; trained: {names}"
            )
        controller = testbed.install_mitigation(self.plan, match)
        monitor = attach_victim_monitor(testbed.tserver)
        base = testbed.sim.now
        try:
            artifact = super().run(ctx, inputs)
        finally:
            monitor.stop()
            testbed.uninstall_mitigation()
        spans = [
            (base + phase.start, base + phase.start + phase.duration)
            for phase in self.schedule
        ]
        recovery = compute_recovery_metrics(
            monitor.series,
            controller.events,
            spans,
            malicious_srcs=controller.malicious_srcs,
            blocked_srcs=controller.blocked_ever,
        )
        artifact.mitigation = {
            "plan": self.plan.to_dict(),
            "attack_spans": [[start, end] for start, end in spans],
            "events": [event.to_dict() for event in controller.events],
            "summary": controller.summary(),
            "recovery": recovery.to_dict(),
            "impact": [asdict(sample) for sample in monitor.series.samples],
        }
        return artifact


class TrainModelsStage(Stage):
    """Fit every :class:`ModelSpec` on the training capture (pure)."""

    name = "train-models"
    deps = ("capture-train",)

    def __init__(self, specs: Sequence[ModelSpec] | None = None, test_fraction: float = 0.3) -> None:
        self.specs = list(specs) if specs is not None else None
        self.test_fraction = test_fraction

    def params(self) -> dict:
        return {
            "test_fraction": self.test_fraction,
            "specs": (
                "default"
                if self.specs is None
                else [spec_fingerprint(spec) for spec in self.specs]
            ),
        }

    def run(self, ctx: PipelineContext, inputs: dict[str, Any]) -> list[TrainedModel]:
        capture: CaptureArtifact = inputs["capture-train"]
        return train_models(
            capture.dataset,
            specs=self.specs,
            window_seconds=ctx.scenario.window_seconds,
            test_fraction=self.test_fraction,
            seed=ctx.scenario.seed,
        )

    def save(self, value: list[TrainedModel], directory: Path) -> None:
        manifest = []
        for index, item in enumerate(value):
            bundle_dir = directory / f"model-{index:02d}"
            save_model_bundle(
                ModelBundle(
                    model=item.model,
                    scaler=item.scaler,
                    extractor_config=item.extractor.to_config(),
                    metadata={
                        "name": item.name,
                        "fit_seconds": item.fit_seconds,
                        "size_kb": item.size_kb,
                        "train_report": item.train_report.to_dict(),
                    },
                ),
                bundle_dir,
            )
            manifest.append({"name": item.name, "dir": bundle_dir.name})
        (directory / "manifest.json").write_text(json.dumps(manifest, sort_keys=True))

    def load(self, directory: Path) -> list[TrainedModel]:
        manifest = json.loads((directory / "manifest.json").read_text())
        trained = []
        for entry in manifest:
            bundle = load_model_bundle(directory / entry["dir"])
            meta = bundle.metadata
            trained.append(
                TrainedModel(
                    name=meta["name"],
                    model=bundle.model,
                    scaler=bundle.scaler,
                    extractor=FeatureExtractor.from_config(bundle.extractor_config),
                    train_report=ClassificationReport.from_dict(meta["train_report"]),
                    fit_seconds=meta["fit_seconds"],
                    size_kb=meta["size_kb"],
                )
            )
        return trained


class DetectStage(Stage):
    """Stream the detect capture through every trained model (pure)."""

    name = "detect"
    deps = ("train-models", "capture-detect")

    def run(self, ctx: PipelineContext, inputs: dict[str, Any]) -> list[DetectionReport]:
        capture: CaptureArtifact = inputs["capture-detect"]
        trained: list[TrainedModel] = inputs["train-models"]
        meta = capture.meta
        degraded = meta.get("degraded_intervals")
        return run_realtime_detection(
            capture.dataset,
            trained,
            window_seconds=ctx.scenario.window_seconds,
            degraded_intervals=(
                [(start, stop) for start, stop in degraded] if degraded is not None else None
            ),
            until=meta.get("until"),
        )

    def save(self, value: list[DetectionReport], directory: Path) -> None:
        payload = [report.to_dict() for report in value]
        (directory / "reports.json").write_text(json.dumps(payload, sort_keys=True))

    def load(self, directory: Path) -> list[DetectionReport]:
        payload = json.loads((directory / "reports.json").read_text())
        return [DetectionReport.from_dict(entry) for entry in payload]


# ----------------------------------------------------------------------
# Pipeline assembly


def experiment_stages(
    scenario: Scenario,
    train_duration: float,
    detect_duration: float,
    specs: Sequence[ModelSpec] | None = None,
    detect_fault_plan: FaultPlan | None = None,
) -> list[Stage]:
    """The §IV-D stage DAG, in topological order.

    When the scenario carries a :class:`MitigationPlan`, the detect
    capture is a :class:`MitigateStage` (same name, same downstream
    DAG) so defended runs stay five stages and cache-compatible.
    """
    if scenario.mitigation_plan is not None:
        detect_capture: Stage = MitigateStage(
            "capture-detect",
            detect_duration,
            scenario.detection_schedule(detect_duration),
            deps=("build", "capture-train", "train-models"),
            plan=scenario.mitigation_plan,
            fault_plan=detect_fault_plan,
        )
    else:
        detect_capture = CaptureStage(
            "capture-detect",
            detect_duration,
            scenario.detection_schedule(detect_duration),
            deps=("build", "capture-train"),
            fault_plan=detect_fault_plan,
        )
    return [
        BuildTestbedStage(),
        CaptureStage(
            "capture-train",
            train_duration,
            scenario.training_schedule(train_duration),
            deps=("build",),
        ),
        TrainModelsStage(specs=specs),
        detect_capture,
        DetectStage(),
    ]


def run_experiment_pipeline(
    scenario: Scenario | None = None,
    train_duration: float = 60.0,
    detect_duration: float = 30.0,
    specs: Sequence[ModelSpec] | None = None,
    fault_plan: FaultPlan | None = None,
    faults: bool = False,
    store: ArtifactStore | str | Path | None = None,
    telemetry: bool = False,
) -> tuple[ExperimentResult, PipelineResult]:
    """Run the staged §IV-D procedure and assemble the experiment result.

    With ``faults=True`` the detection capture runs under a fault plan
    (argument, then ``scenario.fault_plan``, then
    :meth:`Scenario.default_fault_schedule`) and the returned result is
    a :class:`FaultExperimentResult`.  ``store`` (an
    :class:`ArtifactStore` or a cache directory path) enables
    content-addressed caching; unchanged stages are served from disk
    without re-running the simulation.

    ``telemetry=True`` runs the pipeline inside a fresh
    :func:`repro.obs.scope` (unless one is already active, which is then
    reused) and attaches the snapshot — metrics, spans, events — to
    ``result.telemetry``.  Telemetry never participates in stage cache
    keys: the same store serves runs with and without it.
    """
    scenario = scenario or Scenario()
    plan: FaultPlan | None = None
    if faults:
        plan = fault_plan or scenario.fault_plan
        if plan is None:
            plan = scenario.default_fault_schedule(detect_duration)
    if store is not None and not isinstance(store, ArtifactStore):
        store = ArtifactStore(Path(store))
    ambient = obs.current()
    scope_cm = obs.scope() if telemetry and not ambient.enabled else nullcontext(ambient)
    with scope_cm as octx:
        runner = PipelineRunner(
            experiment_stages(
                scenario, train_duration, detect_duration, specs=specs, detect_fault_plan=plan
            ),
            store=store,
        )
        try:
            outcome = runner.run(scenario)
        except Exception as exc:
            # Attach the flight-recorder postmortem to whatever killed
            # the run (SanitizerError already carries one; anything else
            # — a crash mid-stage — gets the ring as seen from here).
            if (
                octx.enabled
                and octx.flight is not None
                and getattr(exc, "flight_dump", None) is None
            ):
                exc.flight_dump = octx.flight.dump(registry=octx.registry)
            raise
        train_art: CaptureArtifact = outcome.value("capture-train")
        detect_art: CaptureArtifact = outcome.value("capture-detect")
        common = dict(
            scenario=scenario,
            train_summary=train_art.dataset.summary(),
            detect_summary=detect_art.dataset.summary(),
            trained=outcome.value("train-models"),
            detection=outcome.value("detect"),
            infection_seconds=outcome.value("build")["infection_seconds"],
        )
        if not faults:
            result: ExperimentResult = ExperimentResult(**common)
        else:
            meta = detect_art.meta
            result = FaultExperimentResult(
                **common,
                fault_plan=plan,
                fault_events=[
                    FaultEvent(**{**event, "targets": tuple(event["targets"])})
                    for event in meta.get("fault_events", [])
                ],
                supervisor_events=[
                    SupervisorEvent(**event) for event in meta.get("supervisor_events", [])
                ],
                restarts=dict(meta.get("restarts", {})),
            )
        result.mitigation = detect_art.mitigation
        if octx.enabled:
            result.telemetry = octx.snapshot()
    return result, outcome
