"""Content-addressed artifact storage for the staged experiment pipeline.

An :class:`ArtifactStore` maps a *stage key* — the SHA-256 of the
canonical JSON of ``(stage name, scenario dict, stage parameters,
upstream stage keys)`` — to a committed directory of artifact files.
Because the key is derived purely from inputs, an unchanged stage with
unchanged upstream stages hashes to the same key on every run: a cache
hit that lets the runner skip re-executing it entirely.

Commits are atomic (write into a temp directory, then ``os.replace``
into place), so concurrent campaign workers sharing one cache directory
never observe half-written artifacts; when two workers race to produce
the same key, the loser's rename simply discards its duplicate.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

#: Store format version; bump to invalidate every existing cache entry
#: when artifact formats change incompatibly.
STORE_VERSION = 1

#: Marker file distinguishing a committed entry from debris.
_COMMIT_MARKER = "ARTIFACT.json"


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace variance."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def stage_key(
    stage: str,
    scenario: dict,
    params: dict,
    upstream: dict[str, str],
) -> str:
    """The content hash identifying one stage invocation.

    ``upstream`` maps dependency stage names to *their* keys, so any
    change anywhere upstream cascades into fresh keys downstream.
    """
    payload = {
        "version": STORE_VERSION,
        "stage": stage,
        "scenario": scenario,
        "params": params,
        "upstream": upstream,
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


@dataclass
class StoreStats:
    """Hit/miss counters for one pipeline (or campaign) run."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class ArtifactStore:
    """A directory of content-addressed artifact entries.

    Layout: ``<root>/<key[:2]>/<key>/`` holding the stage's artifact
    files plus an ``ARTIFACT.json`` commit marker.  ``stats`` counts
    hits and misses of :meth:`contains` lookups for cache reporting.
    """

    root: Path
    stats: StoreStats = field(default_factory=StoreStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.root.mkdir(parents=True, exist_ok=True)

    def entry_dir(self, key: str) -> Path:
        return self.root / key[:2] / key

    def contains(self, key: str, count: bool = True) -> bool:
        """Whether ``key`` is committed; updates hit/miss stats."""
        present = (self.entry_dir(key) / _COMMIT_MARKER).is_file()
        if count:
            if present:
                self.stats.hits += 1
            else:
                self.stats.misses += 1
        return present

    def open(self, key: str) -> Path:
        """Directory of a committed entry (raises ``KeyError`` if absent)."""
        entry = self.entry_dir(key)
        if not (entry / _COMMIT_MARKER).is_file():
            raise KeyError(f"artifact {key} not in store {self.root}")
        return entry

    def begin(self, key: str) -> Path:
        """A private staging directory for writing ``key``'s files."""
        staging = self.root / "tmp" / f"{key}-{uuid.uuid4().hex}"
        staging.mkdir(parents=True, exist_ok=True)
        return staging

    def commit(self, key: str, staging: Path, meta: dict | None = None) -> Path:
        """Atomically publish a staging directory as entry ``key``.

        The commit marker records the stage metadata; it is written
        *before* the rename so a published directory is complete by
        construction.  Losing a publish race is not an error — the
        already-committed entry wins and the duplicate is removed.
        """
        marker = {"key": key, "version": STORE_VERSION, **(meta or {})}
        (staging / _COMMIT_MARKER).write_text(json.dumps(marker, indent=2, sort_keys=True))
        entry = self.entry_dir(key)
        entry.parent.mkdir(parents=True, exist_ok=True)
        try:
            os.replace(staging, entry)
        except OSError:
            if (entry / _COMMIT_MARKER).is_file():  # lost the race; keep the winner
                shutil.rmtree(staging, ignore_errors=True)
            else:
                raise
        self.stats.writes += 1
        return entry

    def abort(self, staging: Path) -> None:
        """Discard a staging directory after a failed stage run."""
        shutil.rmtree(staging, ignore_errors=True)

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob(f"??/*/{_COMMIT_MARKER}"))
