"""The vulnerable telnet service running on every Dev.

A line-based telnet-ish daemon with a factory-default login drawn from
the Mirai dictionary.  After authentication it accepts a tiny shell
surface, including the ``DOWNLOAD <size>`` command the loader uses to
push the bot binary; once the full binary has been received the service
fires its ``on_infected`` callback, which the testbed wires to
``container.exec(MiraiBot(...))`` — the infection moment.
"""

from __future__ import annotations

from typing import Callable

from repro.containers.container import Process
from repro.sim.tcp import TcpSocket

TELNET_PORT = 23
MAX_LOGIN_ATTEMPTS = 3


class VulnerableTelnet(Process):
    """Telnet daemon with weak credentials and a remote-download 'shell'."""

    name = "telnet"

    def __init__(
        self,
        username: str,
        password: str,
        port: int = TELNET_PORT,
        on_infected: Callable[["VulnerableTelnet"], None] | None = None,
    ) -> None:
        super().__init__()
        self.username = username
        self.password = password
        self.port = port
        self.on_infected = on_infected
        self.login_attempts = 0
        self.successful_logins = 0
        self.infected = False
        self._listener = None

    def on_start(self) -> None:
        self._listener = self.node.tcp.listen(self.port, self._on_accept)

    def on_stop(self) -> None:
        if self._listener is not None:
            self._listener.close()

    def _on_accept(self, sock: TcpSocket) -> None:
        session = {
            "stage": "user",
            "user": None,
            "attempts": 0,
            "download_remaining": 0,
        }
        sock.on_data = lambda s, p, n, a: self._on_line(s, p, n, session)
        sock.send(b"login: ")

    def _on_line(self, sock: TcpSocket, payload: bytes, length: int, session: dict) -> None:
        if not sock.writable:
            return  # line arrived after we hung up (half-close race)
        if session["stage"] == "download":
            self._consume_binary(sock, length, session)
            return
        line = payload.decode("ascii", errors="replace").strip()
        if session["stage"] == "user":
            session["user"] = line
            session["stage"] = "pass"
            sock.send(b"Password: ")
        elif session["stage"] == "pass":
            self.login_attempts += 1
            session["attempts"] += 1
            if session["user"] == self.username and line == self.password:
                self.successful_logins += 1
                session["stage"] = "shell"
                sock.send(b"BusyBox v1.12.1 shell\r\n# ")
            elif session["attempts"] >= MAX_LOGIN_ATTEMPTS:
                sock.send(b"Login incorrect\r\n")
                sock.close()
            else:
                session["stage"] = "user"
                sock.send(b"Login incorrect\r\nlogin: ")
        elif session["stage"] == "shell":
            self._on_shell_command(sock, line, session)

    def _on_shell_command(self, sock: TcpSocket, line: str, session: dict) -> None:
        verb, _, argument = line.partition(" ")
        if verb == "DOWNLOAD":
            try:
                session["download_remaining"] = int(argument)
            except ValueError:
                sock.send(b"sh: bad size\r\n# ")
                return
            session["stage"] = "download"
            sock.send(b"READY\r\n")
        elif verb == "ps":
            names = ",".join(p.name for p in (self.container.processes if self.container else []))
            sock.send(f"{names}\r\n# ".encode("ascii"))
        elif verb == "exit":
            sock.send(b"logout\r\n")
            sock.close()
        else:
            sock.send(b"sh: not found\r\n# ")

    def _consume_binary(self, sock: TcpSocket, length: int, session: dict) -> None:
        session["download_remaining"] -= length
        if session["download_remaining"] > 0:
            return
        session["stage"] = "shell"
        sock.send(b"EXECUTED\r\n# ")
        if not self.infected:
            self.infected = True
            if self.on_infected is not None:
                self.on_infected(self)
