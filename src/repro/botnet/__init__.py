"""Mirai botnet emulation.

Reproduces the full lifecycle the paper inherits from DDoSim's use of the
real Mirai malware:

1. **Scan** — :class:`~repro.botnet.scanner.MiraiScanner` probes the
   subnet for telnet (port 23) and brute-forces the Mirai credential
   dictionary against :class:`~repro.botnet.telnet.VulnerableTelnet`
   services on the Devs.
2. **Load** — :class:`~repro.botnet.loader.Loader` logs in with the found
   credentials, pushes the bot binary over the telnet session, and
   triggers infection (the device container ``exec``-s a bot process).
3. **Control** — :class:`~repro.botnet.bot.MiraiBot` registers with the
   :class:`~repro.botnet.cnc.CncServer` and keeps the channel alive.
4. **Attack** — on command, bots run the SYN/ACK/UDP flood modules in
   :mod:`repro.botnet.attacks` against the TServer.

All botnet-originated packets carry malicious provenance, which is how
captures acquire ground-truth labels.
"""

from repro.botnet.attacks import AckFlood, AttackModule, SynFlood, UdpFlood, make_attack
from repro.botnet.attacks_extra import DnsFlood, GreFlood, HttpFlood, VseFlood
from repro.botnet.bot import MiraiBot
from repro.botnet.cnc import CncServer
from repro.botnet.credentials import MIRAI_CREDENTIALS
from repro.botnet.loader import Loader
from repro.botnet.scanner import MiraiScanner
from repro.botnet.telnet import VulnerableTelnet

__all__ = [
    "AckFlood",
    "AttackModule",
    "CncServer",
    "DnsFlood",
    "GreFlood",
    "HttpFlood",
    "Loader",
    "MIRAI_CREDENTIALS",
    "MiraiBot",
    "MiraiScanner",
    "SynFlood",
    "UdpFlood",
    "VseFlood",
    "VulnerableTelnet",
    "make_attack",
]
