"""The Mirai bot process dropped onto infected devices.

Registers with the CNC, keeps the channel alive, executes attack orders
with the flood modules, and — when self-propagation is enabled — runs its
own scanner and reports cracked devices back so the loader can widen the
botnet, reproducing Mirai's worm behaviour.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.botnet.attacks import AttackModule, make_attack
from repro.botnet.cnc import CNC_PORT, AttackOrder
from repro.botnet.scanner import MiraiScanner
from repro.containers.container import Process
from repro.sim.address import Ipv4Address
from repro.sim.packet import Provenance
from repro.sim.tcp import TcpSocket

KEEPALIVE_INTERVAL = 30.0
RECONNECT_DELAY = 5.0

#: Propagation report: (target, username, password) found by a bot's scanner.
ReportFn = Callable[[Ipv4Address, str, str], None]


class MiraiBot(Process):
    """A bot: C2 client + attack executor (+ optional propagation scanner)."""

    name = "mirai-bot"

    def __init__(
        self,
        cnc_address: Ipv4Address,
        cnc_port: int = CNC_PORT,
        bot_id: str | None = None,
        seed: int = 0,
        self_propagate: bool = False,
        propagation_targets: list[Ipv4Address] | None = None,
        report_credentials: ReportFn | None = None,
        batch_floods: bool = False,
    ) -> None:
        super().__init__()
        self.cnc_address = cnc_address
        self.cnc_port = cnc_port
        self.bot_id = bot_id
        self.seed = seed
        self.rng = random.Random(seed)
        self.batch_floods = batch_floods
        self.self_propagate = self_propagate
        self.propagation_targets = propagation_targets or []
        self.report_credentials = report_credentials
        self.provenance = Provenance(origin="bot", malicious=True, attack="c2")
        self.registered = False
        self.attacks_executed = 0
        self.current_attack: AttackModule | None = None
        self._sock: TcpSocket | None = None
        self._keepalive_event = None
        self._scanner: MiraiScanner | None = None

    def on_start(self) -> None:
        if self.bot_id is None:
            self.bot_id = f"bot-{self.node.address}"
        self._connect()

    def on_stop(self) -> None:
        if self._keepalive_event is not None:
            self._keepalive_event.cancel()
        if self.current_attack is not None:
            self.current_attack.stop()
        if self._scanner is not None:
            self._scanner.stop()
        if self._sock is not None:
            self._sock.abort()
            self._sock = None

    # ------------------------------------------------------------------
    # C2 channel

    def _connect(self) -> None:
        if not self.running:
            return
        sock = self.node.tcp.socket()
        sock.provenance = self.provenance
        sock.on_data = self._on_message
        sock.on_reset = lambda s: self._on_disconnect()
        sock.on_close = lambda s: self._on_disconnect()
        self._sock = sock
        sock.connect(self.cnc_address, self.cnc_port, self._on_connected)

    def _on_connected(self, sock: TcpSocket) -> None:
        sock.send(f"REG {self.bot_id}\r\n".encode("ascii"))

    def _on_disconnect(self) -> None:
        self.registered = False
        self._sock = None
        if self._keepalive_event is not None:
            self._keepalive_event.cancel()
            self._keepalive_event = None
        if self.running:
            self.sim.schedule(RECONNECT_DELAY, self._connect)

    def _on_message(self, sock: TcpSocket, payload: bytes, length: int, app_data: object) -> None:
        line = payload.decode("ascii", errors="replace").strip()
        if line == "OK":
            self.registered = True
            self._schedule_keepalive()
            if self.self_propagate:
                self._start_propagation()
        elif line.startswith("ATTACK"):
            self._execute(AttackOrder.decode(line))

    def _schedule_keepalive(self) -> None:
        self._keepalive_event = self.sim.schedule(KEEPALIVE_INTERVAL, self._keepalive)

    def _keepalive(self) -> None:
        if self._sock is not None and self.registered:
            self._sock.send(b"PING\r\n")
            self._schedule_keepalive()

    # ------------------------------------------------------------------
    # Attacks

    def _execute(self, order: AttackOrder) -> None:
        if self.current_attack is not None:
            self.current_attack.stop()
        self.attacks_executed += 1
        self.current_attack = make_attack(
            order.kind,
            self.node,
            self.sim,
            order.target,
            order.target_port,
            order.pps,
            order.duration,
            seed=self.rng.randrange(1 << 30),
            batch=self.batch_floods,
        )
        self.current_attack.start()

    # ------------------------------------------------------------------
    # Propagation

    def _start_propagation(self) -> None:
        if self._scanner is not None or not self.propagation_targets:
            return
        if self.report_credentials is None:
            return
        self._scanner = MiraiScanner(
            on_credentials_found=self.report_credentials,
            seed=self.seed + 7,
            concurrency=2,
        )
        self._scanner.container = self.container
        self._scanner.running = True
        self._scanner.on_start()
        self._scanner.scan(self.propagation_targets)
