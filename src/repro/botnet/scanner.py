"""The Mirai telnet scanner.

Walks a target address list in seeded-random order, opens TCP/23, and
brute-forces the credential dictionary over the telnet dialogue (three
attempts per connection before the daemon cuts the line, then it
reconnects, exactly like the real scanner's reconnect loop).  Successful
logins are reported through ``on_credentials_found`` — the hand-off to
the loader.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.botnet.credentials import MIRAI_CREDENTIALS
from repro.botnet.telnet import TELNET_PORT
from repro.containers.container import Process
from repro.sim.address import Ipv4Address
from repro.sim.packet import Provenance

CONNECT_TIMEOUT = 5.0

#: Called with (target, username, password) when a login succeeds.
FoundFn = Callable[[Ipv4Address, str, str], None]


class MiraiScanner(Process):
    """Scans for weak telnet logins with bounded concurrency."""

    name = "mirai-scanner"

    def __init__(
        self,
        on_credentials_found: FoundFn,
        credentials: tuple[tuple[str, str], ...] = MIRAI_CREDENTIALS,
        concurrency: int = 4,
        seed: int = 11,
        on_complete: Callable[[], None] | None = None,
    ) -> None:
        super().__init__()
        self.on_credentials_found = on_credentials_found
        self.credentials = credentials
        self.concurrency = concurrency
        self.rng = random.Random(seed)
        self.on_complete = on_complete
        self.provenance = Provenance(origin="scanner", malicious=True, attack="scan")
        self.hosts_scanned = 0
        self.hosts_cracked = 0
        self.connections_opened = 0
        self._pending: list[Ipv4Address] = []
        self._active = 0
        self._exclude: set[int] = set()

    def on_start(self) -> None:
        self._exclude.add(self.node.address.value)

    def scan(self, targets: list[Ipv4Address]) -> None:
        """Begin scanning ``targets`` (order is shuffled deterministically)."""
        shuffled = [t for t in targets if t.value not in self._exclude]
        self.rng.shuffle(shuffled)
        self._pending.extend(shuffled)
        self._fill()

    def exclude(self, address: Ipv4Address) -> None:
        """Never scan ``address`` (self, the CNC, the TServer...)."""
        self._exclude.add(address.value)

    def _fill(self) -> None:
        while self._active < self.concurrency and self._pending:
            target = self._pending.pop()
            if target.value in self._exclude:
                continue
            self._active += 1
            order = list(range(len(self.credentials)))
            self.rng.shuffle(order)
            self._probe(target, order)

    def _finish_target(self) -> None:
        self._active -= 1
        self.hosts_scanned += 1
        self._fill()
        if self._active == 0 and not self._pending and self.on_complete is not None:
            self.on_complete()

    def _probe(self, target: Ipv4Address, remaining: list[int]) -> None:
        """Open one telnet connection and try up to three credentials."""
        if not self.running:
            return
        if not remaining:
            self._finish_target()
            return
        sock = self.node.tcp.socket()
        sock.provenance = self.provenance
        self.connections_opened += 1
        state = {"tried_here": 0, "current": None, "done": False}

        timeout = self.sim.schedule(CONNECT_TIMEOUT, self._on_timeout, sock, state, target)

        def finish(success: bool) -> None:
            if state["done"]:
                return
            state["done"] = True
            timeout.cancel()
            if success:
                self.hosts_cracked += 1
                user, password = self.credentials[state["current"]]
                self.on_credentials_found(target, user, password)
                self._finish_target()
            elif state["tried_here"] == 0:
                # Connection refused/reset before the banner: no telnet
                # service behind this address — give up on the target.
                self._finish_target()
            elif remaining:
                self._probe(target, remaining)  # reconnect with next batch
            else:
                self._finish_target()

        def on_data(s, payload: bytes, length: int, app_data: object) -> None:
            text = payload.decode("ascii", errors="replace")
            if state["done"]:
                return
            if "login:" in text:
                if state["tried_here"] >= 3 or not remaining:
                    s.close()
                    finish(False)
                    return
                state["current"] = remaining.pop()
                state["tried_here"] += 1
                user, _ = self.credentials[state["current"]]
                s.send(user.encode("ascii") + b"\r\n")
            elif "Password:" in text:
                _, password = self.credentials[state["current"]]
                s.send(password.encode("ascii") + b"\r\n")
            elif "shell" in text or text.startswith("# "):
                s.close()
                finish(True)
            elif "Login incorrect" in text and "login:" not in text:
                # daemon hung up after too many attempts
                finish(False)

        sock.on_data = on_data
        sock.on_reset = lambda s: finish(False)
        sock.on_close = lambda s: finish(False)
        sock.connect(target, TELNET_PORT)

    def _on_timeout(self, sock, state: dict, target: Ipv4Address) -> None:
        if state["done"]:
            return
        state["done"] = True
        sock.abort()
        self._finish_target()
