"""Extended Mirai attack modules beyond the paper's three.

The real Mirai ships ~10 attack vectors; the paper evaluates SYN/ACK/UDP
floods and explicitly defers "more complex application-level attacks
like HTTP Flood or DNS Flood, which necessitate additional
application-level analysis".  These modules implement that deferred
surface plus two more of Mirai's classics:

* :class:`GreFlood` — raw IP protocol 47 (GRE) packets, the vector Mirai
  used against KrebsOnSecurity;
* :class:`VseFlood` — Valve Source Engine query flood (UDP 27015 with
  the magic ``TSource Engine Query`` payload);
* :class:`DnsFlood` — "water torture": queries for random subdomains so
  every request misses caches and the resolver answers each one;
* :class:`HttpFlood` — application-level GET flood over real TCP
  connections (handshake, request, response), which is why signature-free
  volumetric features struggle with it.
"""

from __future__ import annotations

from repro.botnet.attacks import ATTACKS, SPORT_RANGE, AttackModule
from repro.sim.packet import Ipv4Header, Packet

PROTO_GRE = 47
VSE_PORT = 27015
VSE_PAYLOAD = b"\xff\xff\xff\xffTSource Engine Query\x00"


class GreFlood(AttackModule):
    """Raw GRE (IP proto 47) flood with sizable encapsulated payloads."""

    attack_name = "gre_flood"

    def __init__(self, *args, payload_bytes: int = 512, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.payload_bytes = payload_bytes

    def _send_one(self) -> None:
        packet = Packet(
            ip=Ipv4Header(
                src=self.node.address,
                dst=self.target,
                protocol=PROTO_GRE,
                identification=self.rng.randrange(1 << 16),
            ),
            payload_len=self.payload_bytes,
            provenance=self.provenance,
        )
        self.node.send_ipv4(packet)


class VseFlood(AttackModule):
    """Valve Source Engine query flood (fixed 25-byte magic payload)."""

    attack_name = "vse_flood"

    def _send_one(self) -> None:
        self.node.udp.send_datagram(
            src_port=self.rng.randrange(*SPORT_RANGE),
            dst=self.target,
            dst_port=VSE_PORT,
            payload=VSE_PAYLOAD,
            provenance=self.provenance,
        )


class DnsFlood(AttackModule):
    """DNS water-torture: random-subdomain queries the resolver must answer."""

    attack_name = "dns_flood"

    def __init__(self, *args, domain: str = "iot.example", **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.domain = domain

    def _send_one(self) -> None:
        label = "".join(
            self.rng.choice("abcdefghijklmnopqrstuvwxyz0123456789") for _ in range(12)
        )
        query = f"{label}.{self.domain}".encode("ascii")
        self.node.udp.send_datagram(
            src_port=self.rng.randrange(*SPORT_RANGE),
            dst=self.target,
            dst_port=53,
            payload=query,
            payload_len=30 + len(query),
            provenance=self.provenance,
        )


class HttpFlood(AttackModule):
    """Application-level GET flood over genuine TCP connections.

    Maintains a rotating pool of established connections and issues GET
    requests at the target rate; every request draws a full response, so
    the victim spends real service capacity.  Because each packet is a
    well-formed HTTP exchange, this is the vector the paper notes
    requires application-level analysis to detect.
    """

    attack_name = "http_flood"

    def __init__(self, *args, pool_size: int = 8, path_pool: int = 64, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.pool_size = pool_size
        self.path_pool = path_pool
        self.requests_sent = 0
        self._sockets: list = []

    def start(self) -> None:
        if self.active:
            return
        for _ in range(self.pool_size):
            self._open_connection()
        super().start()

    def stop(self) -> None:
        super().stop()
        for sock in self._sockets:
            if sock.state.name != "CLOSED":
                sock.abort()
        self._sockets.clear()

    def _open_connection(self) -> None:
        sock = self.node.tcp.socket()
        sock.provenance = self.provenance
        sock.on_data = lambda s, p, n, a: None  # drain responses
        sock.on_reset = lambda s: self._replace(s)
        sock.connect(self.target, self.target_port)
        self._sockets.append(sock)

    def _replace(self, sock) -> None:
        if sock in self._sockets:
            self._sockets.remove(sock)
        if self.active:
            # Reconnect after a short backoff — an immediate retry against
            # a resetting server would melt into a reconnect storm.
            self.sim.schedule(0.5, self._reopen)

    def _reopen(self) -> None:
        if self.active and len(self._sockets) < self.pool_size:
            self._open_connection()

    def _send_one(self) -> None:
        ready = [s for s in self._sockets if s.writable]
        if not ready:
            return
        sock = ready[self.rng.randrange(len(ready))]
        path = f"/page{self.rng.randrange(self.path_pool)}.html"
        request = f"GET {path} HTTP/1.1\r\nHost: victim\r\n\r\n".encode("ascii")
        sock.send(request, app_data=("http-get", path))
        self.requests_sent += 1


# Register the extended vectors alongside the paper's three.
ATTACKS.update(
    {
        "gre": GreFlood,
        "gre_flood": GreFlood,
        "vse": VseFlood,
        "vse_flood": VseFlood,
        "dns": DnsFlood,
        "dns_flood": DnsFlood,
        "http": HttpFlood,
        "http_flood": HttpFlood,
    }
)
