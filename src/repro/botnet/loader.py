"""The Mirai loader: turns found credentials into infections.

Given (target, username, password) reports from the scanner, the loader
logs into the victim's telnet service, pushes the bot binary over the
session with the ``DOWNLOAD`` command, and confirms execution.  The
victim-side execution hook (wired by the testbed) then starts the bot
process inside the device container.
"""

from __future__ import annotations

from typing import Callable

from repro.botnet.telnet import TELNET_PORT
from repro.containers.container import Process
from repro.sim.address import Ipv4Address
from repro.sim.packet import Provenance

#: Size of the pushed bot binary (the real Mirai ELF is ~60-120 KB).
BOT_BINARY_BYTES = 80_000


class Loader(Process):
    """Delivers the bot binary to cracked devices."""

    name = "mirai-loader"

    def __init__(
        self,
        binary_bytes: int = BOT_BINARY_BYTES,
        on_loaded: Callable[[Ipv4Address], None] | None = None,
    ) -> None:
        super().__init__()
        self.binary_bytes = binary_bytes
        self.on_loaded = on_loaded
        self.provenance = Provenance(origin="loader", malicious=True, attack="loader")
        self.infections_started = 0
        self.infections_completed = 0
        self._in_progress: set[int] = set()
        self._done: set[int] = set()

    def infect(self, target: Ipv4Address, username: str, password: str) -> None:
        """Log in and push the binary (idempotent per target)."""
        if target.value in self._done or target.value in self._in_progress:
            return
        self._in_progress.add(target.value)
        self.infections_started += 1
        sock = self.node.tcp.socket()
        sock.provenance = self.provenance
        state = {"stage": "user"}

        def fail(_s) -> None:
            self._in_progress.discard(target.value)

        def on_data(s, payload: bytes, length: int, app_data: object) -> None:
            text = payload.decode("ascii", errors="replace")
            stage = state["stage"]
            if stage == "user" and "login:" in text:
                state["stage"] = "pass"
                s.send(username.encode("ascii") + b"\r\n")
            elif stage == "pass" and "Password:" in text:
                state["stage"] = "shell"
                s.send(password.encode("ascii") + b"\r\n")
            elif stage == "shell" and ("shell" in text or text.startswith("# ")):
                state["stage"] = "ready"
                s.send(f"DOWNLOAD {self.binary_bytes}\r\n".encode("ascii"))
            elif stage == "ready" and "READY" in text:
                state["stage"] = "pushing"
                s.send(length=self.binary_bytes, app_data=("mirai", "bot.bin"))
            elif stage == "pushing" and "EXECUTED" in text:
                state["stage"] = "done"
                self._in_progress.discard(target.value)
                self._done.add(target.value)
                self.infections_completed += 1
                s.send(b"exit\r\n")
                s.close()
                if self.on_loaded is not None:
                    self.on_loaded(target)

        sock.on_data = on_data
        sock.on_reset = fail
        sock.connect(target, TELNET_PORT)

    @property
    def infected_targets(self) -> set[int]:
        """Integer IPv4 values of successfully infected devices."""
        return set(self._done)
