"""The Mirai default-credential dictionary.

The (user, password) pairs below are the list hardcoded in the leaked
Mirai source (``scanner.c``), which the real malware weights and tries
against open telnet services.  Devices in the testbed pick their login
from this list, so the emulated scanner succeeds the way Mirai does: not
by exploiting a software bug, but by walking factory-default credentials.
"""

from __future__ import annotations

import random

#: (username, password) pairs from the leaked Mirai scanner table.
MIRAI_CREDENTIALS: tuple[tuple[str, str], ...] = (
    ("root", "xc3511"),
    ("root", "vizxv"),
    ("root", "admin"),
    ("admin", "admin"),
    ("root", "888888"),
    ("root", "xmhdipc"),
    ("root", "default"),
    ("root", "juantech"),
    ("root", "123456"),
    ("root", "54321"),
    ("support", "support"),
    ("root", ""),
    ("admin", "password"),
    ("root", "root"),
    ("root", "12345"),
    ("user", "user"),
    ("admin", ""),
    ("root", "pass"),
    ("admin", "admin1234"),
    ("root", "1111"),
    ("admin", "smcadmin"),
    ("admin", "1111"),
    ("root", "666666"),
    ("root", "password"),
    ("root", "1234"),
    ("root", "klv123"),
    ("Administrator", "admin"),
    ("service", "service"),
    ("supervisor", "supervisor"),
    ("guest", "guest"),
    ("guest", "12345"),
    ("admin1", "password"),
    ("administrator", "1234"),
    ("666666", "666666"),
    ("888888", "888888"),
    ("ubnt", "ubnt"),
    ("root", "klv1234"),
    ("root", "Zte521"),
    ("root", "hi3518"),
    ("root", "jvbzd"),
    ("root", "anko"),
    ("root", "zlxx."),
    ("root", "7ujMko0vizxv"),
    ("root", "7ujMko0admin"),
    ("root", "system"),
    ("root", "ikwb"),
    ("root", "dreambox"),
    ("root", "user"),
    ("root", "realtek"),
    ("root", "00000000"),
    ("admin", "1111111"),
    ("admin", "1234"),
    ("admin", "12345"),
    ("admin", "54321"),
    ("admin", "123456"),
    ("admin", "7ujMko0admin"),
    ("admin", "meinsm"),
    ("tech", "tech"),
    ("mother", "fucker"),
)


def random_credential(seed: int) -> tuple[str, str]:
    """Pick a deterministic factory-default credential for a device."""
    return random.Random(seed).choice(MIRAI_CREDENTIALS)


def credential_index(pair: tuple[str, str]) -> int:
    """Position of ``pair`` in the dictionary (brute-force cost proxy)."""
    try:
        return MIRAI_CREDENTIALS.index(pair)
    except ValueError:
        return -1
