"""Mirai DDoS attack modules: SYN flood, ACK flood, UDP flood.

Each module runs inside a bot process and emits raw packets at a target
rate, batched on a 10 ms tick to keep the event count proportional to
traffic volume.  Packet shapes follow Mirai's ``attack_tcp.c`` /
``attack_udp.c``: randomized ephemeral source ports, random sequence
numbers, and (for the SYN flood) spoofed source addresses, which is why
victims accumulate half-open connections they can never complete.

Ticks are *anchored*: tick ``k`` fires at exactly ``t0 + k*TICK`` (via
:meth:`~repro.sim.core.Simulator.schedule_periodic`) instead of the
drift-accumulating ``now + TICK`` re-scheduling, so tick counts — and
therefore per-seed packet counts — are identical whether the module
emits scalar packets or :class:`~repro.sim.packet.PacketBatch` trains
(``batch=True``).  Batch emission draws the per-packet randomness in the
same order as the scalar loop, keeping same-seed runs equivalent.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

import numpy as np

from repro.sim.address import Ipv4Address
from repro.sim.packet import PacketBatch, Provenance, TcpFlags

if TYPE_CHECKING:
    from repro.sim.core import PeriodicEvent, Simulator
    from repro.sim.node import Node

TICK = 0.01
#: Spoofed-source pool for SYN floods (off-subnet, so SYN-ACKs die).
SPOOF_BASE = (172 << 24) | (16 << 16)
#: Flood source-port range.  The real Mirai draws the full 16-bit space,
#: but the testbed's container traffic exits through bridge/conntrack
#: plumbing that rewrites sources into the host's ephemeral range, so
#: observed flood ports overlap benign ephemeral ports (as in the paper's
#: captures, where source port alone does not identify flood packets).
SPORT_RANGE = (32768, 61000)


class AttackModule:
    """Base class: paced packet generation toward one target."""

    attack_name = "attack"

    def __init__(
        self,
        node: "Node",
        sim: "Simulator",
        target: Ipv4Address,
        target_port: int,
        pps: float,
        duration: float,
        seed: int = 0,
        batch: bool = False,
    ) -> None:
        self.node = node
        self.sim = sim
        self.target = target
        self.target_port = target_port
        self.pps = pps
        self.duration = duration
        self.batch = batch
        self.rng = random.Random(seed)
        self.provenance = Provenance(origin="bot", malicious=True, attack=self.attack_name)
        self.packets_sent = 0
        self.active = False
        self._ticker: "PeriodicEvent | None" = None
        self._end_time = 0.0
        self._carry = 0.0

    def start(self) -> None:
        """Begin flooding for ``duration`` seconds."""
        if self.active:
            return
        self.active = True
        t0 = self.sim.now
        self._end_time = t0 + self.duration
        self._tick()  # tick 0 fires immediately at t0
        if self.active:
            # Ticks k >= 1 land on exact multiples of TICK past t0.
            self._ticker = self.sim.schedule_periodic(TICK, self._tick, t0=t0)

    def stop(self) -> None:
        self.active = False
        if self._ticker is not None:
            self._ticker.cancel()
            self._ticker = None

    def _tick(self) -> None:
        if not self.active:
            return
        if self.sim.now >= self._end_time:
            self.stop()
            return
        budget = self.pps * TICK + self._carry
        count = int(budget)
        self._carry = budget - count
        if count:
            if self.batch:
                self._emit_batch(count)
            else:
                for _ in range(count):
                    self._send_one()
            self.packets_sent += count

    def _send_one(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def _emit_batch(self, count: int) -> None:
        """Emit one tick's worth of packets as a train.

        The default falls back to the scalar loop so custom subclasses
        stay correct under ``batch=True`` until they vectorize.
        """
        for _ in range(count):
            self._send_one()


class SynFlood(AttackModule):
    """TCP SYN flood with spoofed sources and random ISNs."""

    attack_name = "syn_flood"

    def __init__(self, *args, spoof: bool = True, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.spoof = spoof

    def _spoofed_source(self) -> Ipv4Address:
        return Ipv4Address(SPOOF_BASE | self.rng.randrange(1, 1 << 16))

    def _send_one(self) -> None:
        self.node.tcp.send_segment(
            src_port=self.rng.randrange(*SPORT_RANGE),
            dst=self.target,
            dst_port=self.target_port,
            seq=self.rng.randrange(1 << 32),
            ack=0,
            flags=TcpFlags.SYN,
            provenance=self.provenance,
            src=self._spoofed_source() if self.spoof else None,
        )

    def _emit_batch(self, count: int) -> None:
        rng = self.rng
        lo, hi = SPORT_RANGE
        sport = np.empty(count, dtype=np.int64)
        seq = np.empty(count, dtype=np.int64)
        src = np.empty(count, dtype=np.int64)
        own = 0 if self.spoof else self.node.address.value
        # Same per-packet draw order as _send_one: sport, seq, spoof.
        for i in range(count):
            sport[i] = rng.randrange(lo, hi)
            seq[i] = rng.randrange(1 << 32)
            src[i] = (SPOOF_BASE | rng.randrange(1, 1 << 16)) if self.spoof else own
        self.node.tcp.send_segment_batch(
            PacketBatch.tcp_batch(
                count,
                src_ip=src,
                dst_ip=self.target.value,
                src_port=sport,
                dst_port=self.target_port,
                seq=seq,
                ack=0,
                flags=TcpFlags.SYN,
                provenance=self.provenance,
            )
        )


class AckFlood(AttackModule):
    """TCP ACK flood with random seq/ack (draws RSTs from the victim).

    Carries a junk payload like the real Mirai (``ATK_OPT_PAYLOAD_SIZE``
    defaults to 512 random bytes), so each flood packet also consumes
    downstream bandwidth.
    """

    attack_name = "ack_flood"

    def __init__(self, *args, payload_bytes: int = 512, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.payload_bytes = payload_bytes

    def _send_one(self) -> None:
        self.node.tcp.send_segment(
            src_port=self.rng.randrange(*SPORT_RANGE),
            dst=self.target,
            dst_port=self.target_port,
            seq=self.rng.randrange(1 << 32),
            ack=self.rng.randrange(1 << 32),
            flags=TcpFlags.ACK,
            payload_len=self.payload_bytes,
            provenance=self.provenance,
        )

    def _emit_batch(self, count: int) -> None:
        rng = self.rng
        lo, hi = SPORT_RANGE
        sport = np.empty(count, dtype=np.int64)
        seq = np.empty(count, dtype=np.int64)
        ack = np.empty(count, dtype=np.int64)
        # Same per-packet draw order as _send_one: sport, seq, ack.
        for i in range(count):
            sport[i] = rng.randrange(lo, hi)
            seq[i] = rng.randrange(1 << 32)
            ack[i] = rng.randrange(1 << 32)
        self.node.tcp.send_segment_batch(
            PacketBatch.tcp_batch(
                count,
                src_ip=self.node.address.value,
                dst_ip=self.target.value,
                src_port=sport,
                dst_port=self.target_port,
                seq=seq,
                ack=ack,
                flags=TcpFlags.ACK,
                payload_len=self.payload_bytes,
                provenance=self.provenance,
            )
        )


class UdpFlood(AttackModule):
    """Generic UDP flood: fixed-size junk to randomized destination ports."""

    attack_name = "udp_flood"

    def __init__(self, *args, payload_bytes: int = 512, randomize_dport: bool = True, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.payload_bytes = payload_bytes
        self.randomize_dport = randomize_dport

    def _send_one(self) -> None:
        dport = (
            self.rng.randrange(1, 65536) if self.randomize_dport else self.target_port
        )
        self.node.udp.send_datagram(
            src_port=self.rng.randrange(*SPORT_RANGE),
            dst=self.target,
            dst_port=dport,
            payload_len=self.payload_bytes,
            provenance=self.provenance,
        )

    def _emit_batch(self, count: int) -> None:
        rng = self.rng
        lo, hi = SPORT_RANGE
        dport = np.empty(count, dtype=np.int64)
        sport = np.empty(count, dtype=np.int64)
        # Same per-packet draw order as _send_one: dport, then sport.
        for i in range(count):
            dport[i] = (
                rng.randrange(1, 65536) if self.randomize_dport else self.target_port
            )
            sport[i] = rng.randrange(lo, hi)
        self.node.udp.send_datagram_batch(
            PacketBatch.udp_batch(
                count,
                src_ip=self.node.address.value,
                dst_ip=self.target.value,
                src_port=sport,
                dst_port=dport,
                payload_len=self.payload_bytes,
                provenance=self.provenance,
            )
        )


ATTACKS = {
    "syn": SynFlood,
    "syn_flood": SynFlood,
    "ack": AckFlood,
    "ack_flood": AckFlood,
    "udp": UdpFlood,
    "udp_flood": UdpFlood,
}


def make_attack(
    kind: str,
    node: "Node",
    sim: "Simulator",
    target: Ipv4Address,
    target_port: int,
    pps: float,
    duration: float,
    seed: int = 0,
    batch: bool = False,
) -> AttackModule:
    """Instantiate an attack module by its command name."""
    try:
        cls = ATTACKS[kind.lower()]
    except KeyError:
        raise ValueError(
            f"unknown attack {kind!r}; expected one of {sorted(set(ATTACKS))}"
        ) from None
    return cls(node, sim, target, target_port, pps, duration, seed=seed, batch=batch)
