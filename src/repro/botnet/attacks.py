"""Mirai DDoS attack modules: SYN flood, ACK flood, UDP flood.

Each module runs inside a bot process and emits raw packets at a target
rate, batched on a 10 ms tick to keep the event count proportional to
traffic volume.  Packet shapes follow Mirai's ``attack_tcp.c`` /
``attack_udp.c``: randomized ephemeral source ports, random sequence
numbers, and (for the SYN flood) spoofed source addresses, which is why
victims accumulate half-open connections they can never complete.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.sim.address import Ipv4Address
from repro.sim.core import Event
from repro.sim.packet import Provenance, TcpFlags

if TYPE_CHECKING:
    from repro.sim.node import Node
    from repro.sim.core import Simulator

TICK = 0.01
#: Spoofed-source pool for SYN floods (off-subnet, so SYN-ACKs die).
SPOOF_BASE = (172 << 24) | (16 << 16)
#: Flood source-port range.  The real Mirai draws the full 16-bit space,
#: but the testbed's container traffic exits through bridge/conntrack
#: plumbing that rewrites sources into the host's ephemeral range, so
#: observed flood ports overlap benign ephemeral ports (as in the paper's
#: captures, where source port alone does not identify flood packets).
SPORT_RANGE = (32768, 61000)


class AttackModule:
    """Base class: paced packet generation toward one target."""

    attack_name = "attack"

    def __init__(
        self,
        node: "Node",
        sim: "Simulator",
        target: Ipv4Address,
        target_port: int,
        pps: float,
        duration: float,
        seed: int = 0,
    ) -> None:
        self.node = node
        self.sim = sim
        self.target = target
        self.target_port = target_port
        self.pps = pps
        self.duration = duration
        self.rng = random.Random(seed)
        self.provenance = Provenance(origin="bot", malicious=True, attack=self.attack_name)
        self.packets_sent = 0
        self.active = False
        self._tick_event: Event | None = None
        self._end_time = 0.0
        self._carry = 0.0

    def start(self) -> None:
        """Begin flooding for ``duration`` seconds."""
        if self.active:
            return
        self.active = True
        self._end_time = self.sim.now + self.duration
        self._tick()

    def stop(self) -> None:
        self.active = False
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None

    def _tick(self) -> None:
        if not self.active:
            return
        if self.sim.now >= self._end_time:
            self.stop()
            return
        budget = self.pps * TICK + self._carry
        count = int(budget)
        self._carry = budget - count
        for _ in range(count):
            self._send_one()
            self.packets_sent += 1
        self._tick_event = self.sim.schedule(TICK, self._tick)

    def _send_one(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class SynFlood(AttackModule):
    """TCP SYN flood with spoofed sources and random ISNs."""

    attack_name = "syn_flood"

    def __init__(self, *args, spoof: bool = True, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.spoof = spoof

    def _spoofed_source(self) -> Ipv4Address:
        return Ipv4Address(SPOOF_BASE | self.rng.randrange(1, 1 << 16))

    def _send_one(self) -> None:
        self.node.tcp.send_segment(
            src_port=self.rng.randrange(*SPORT_RANGE),
            dst=self.target,
            dst_port=self.target_port,
            seq=self.rng.randrange(1 << 32),
            ack=0,
            flags=TcpFlags.SYN,
            provenance=self.provenance,
            src=self._spoofed_source() if self.spoof else None,
        )


class AckFlood(AttackModule):
    """TCP ACK flood with random seq/ack (draws RSTs from the victim).

    Carries a junk payload like the real Mirai (``ATK_OPT_PAYLOAD_SIZE``
    defaults to 512 random bytes), so each flood packet also consumes
    downstream bandwidth.
    """

    attack_name = "ack_flood"

    def __init__(self, *args, payload_bytes: int = 512, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.payload_bytes = payload_bytes

    def _send_one(self) -> None:
        self.node.tcp.send_segment(
            src_port=self.rng.randrange(*SPORT_RANGE),
            dst=self.target,
            dst_port=self.target_port,
            seq=self.rng.randrange(1 << 32),
            ack=self.rng.randrange(1 << 32),
            flags=TcpFlags.ACK,
            payload_len=self.payload_bytes,
            provenance=self.provenance,
        )


class UdpFlood(AttackModule):
    """Generic UDP flood: fixed-size junk to randomized destination ports."""

    attack_name = "udp_flood"

    def __init__(self, *args, payload_bytes: int = 512, randomize_dport: bool = True, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.payload_bytes = payload_bytes
        self.randomize_dport = randomize_dport

    def _send_one(self) -> None:
        dport = (
            self.rng.randrange(1, 65536) if self.randomize_dport else self.target_port
        )
        self.node.udp.send_datagram(
            src_port=self.rng.randrange(*SPORT_RANGE),
            dst=self.target,
            dst_port=dport,
            payload_len=self.payload_bytes,
            provenance=self.provenance,
        )


ATTACKS = {
    "syn": SynFlood,
    "syn_flood": SynFlood,
    "ack": AckFlood,
    "ack_flood": AckFlood,
    "udp": UdpFlood,
    "udp_flood": UdpFlood,
}


def make_attack(
    kind: str,
    node: "Node",
    sim: "Simulator",
    target: Ipv4Address,
    target_port: int,
    pps: float,
    duration: float,
    seed: int = 0,
) -> AttackModule:
    """Instantiate an attack module by its command name."""
    try:
        cls = ATTACKS[kind.lower()]
    except KeyError:
        raise ValueError(
            f"unknown attack {kind!r}; expected one of {sorted(set(ATTACKS))}"
        ) from None
    return cls(node, sim, target, target_port, pps, duration, seed=seed)
