"""The Mirai command-and-control server.

Bots connect over TCP, register, and keep the channel alive with pings;
the botmaster's admin surface is :meth:`CncServer.launch_attack`, which
broadcasts an attack order to every connected bot (mirroring the real
CNC's attack command fan-out).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.containers.container import Process
from repro.sim.address import Ipv4Address
from repro.sim.packet import Provenance
from repro.sim.tcp import TcpSocket

CNC_PORT = 23


@dataclass(frozen=True)
class AttackOrder:
    """One attack command as broadcast to the botnet."""

    kind: str
    target: Ipv4Address
    target_port: int
    duration: float
    pps: float

    def encode(self) -> bytes:
        return (
            f"ATTACK {self.kind} {self.target} {self.target_port} "
            f"{self.duration} {self.pps}\r\n"
        ).encode("ascii")

    @classmethod
    def decode(cls, line: str) -> "AttackOrder":
        parts = line.split()
        if len(parts) != 6 or parts[0] != "ATTACK":
            raise ValueError(f"malformed attack order: {line!r}")
        return cls(
            kind=parts[1],
            target=Ipv4Address.parse(parts[2]),
            target_port=int(parts[3]),
            duration=float(parts[4]),
            pps=float(parts[5]),
        )


class CncServer(Process):
    """Tracks registered bots and fans out attack orders."""

    name = "cnc"

    def __init__(self, port: int = CNC_PORT) -> None:
        super().__init__()
        self.port = port
        self.provenance = Provenance(origin="cnc", malicious=True, attack="c2")
        self.bots: dict[str, TcpSocket] = {}
        self.orders_issued: list[AttackOrder] = []
        self.pings_received = 0
        self._listener = None

    def on_start(self) -> None:
        self._listener = self.node.tcp.listen(self.port, self._on_accept, backlog=256)
        self.node.tcp.default_provenance = self.provenance

    def on_stop(self) -> None:
        if self._listener is not None:
            self._listener.close()
        for sock in self.bots.values():
            sock.close()
        self.bots.clear()

    @property
    def bot_count(self) -> int:
        return len(self.bots)

    def launch_attack(
        self,
        kind: str,
        target: Ipv4Address,
        target_port: int = 80,
        duration: float = 10.0,
        pps: float = 100.0,
    ) -> AttackOrder:
        """Broadcast an attack order to every registered bot."""
        order = AttackOrder(kind, target, target_port, duration, pps)
        self.orders_issued.append(order)
        for sock in list(self.bots.values()):
            sock.provenance = self.provenance
            sock.send(order.encode(), app_data=("cnc", "attack"))
        return order

    def _on_accept(self, sock: TcpSocket) -> None:
        sock.provenance = self.provenance
        sock.on_data = self._on_message
        sock.on_reset = lambda s: self._drop(s)
        sock.on_close = lambda s: self._drop(s)

    def _on_message(self, sock: TcpSocket, payload: bytes, length: int, app_data: object) -> None:
        line = payload.decode("ascii", errors="replace").strip()
        verb, _, argument = line.partition(" ")
        if verb == "REG":
            self.bots[argument] = sock
            sock.send(b"OK\r\n")
        elif verb == "PING":
            self.pings_received += 1
            sock.send(b"PONG\r\n")

    def _drop(self, sock: TcpSocket) -> None:
        for bot_id, known in list(self.bots.items()):
            if known is sock:
                del self.bots[bot_id]
