"""Container images: named recipes for the processes a container runs.

An :class:`Image` plays the role of a Dockerfile build product: it names
the binaries (process factories) that start when a container boots, plus
default resource limits and exposed ports.  The testbed ships one image
per role (attacker, device, tserver, ids), and scenarios may derive
variants with :meth:`Image.with_entrypoint`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable

from repro.containers.resources import ResourceLimits

if TYPE_CHECKING:
    from repro.containers.container import Container, Process

#: A process factory: receives the booted container, returns the process.
ProcessFactory = Callable[["Container"], "Process"]


@dataclass(frozen=True)
class Image:
    """An immutable container image description."""

    name: str
    tag: str = "latest"
    entrypoints: tuple[ProcessFactory, ...] = ()
    exposed_ports: tuple[int, ...] = ()
    default_limits: ResourceLimits = field(default_factory=ResourceLimits)

    @property
    def reference(self) -> str:
        """The ``name:tag`` image reference."""
        return f"{self.name}:{self.tag}"

    def with_entrypoint(self, *factories: ProcessFactory) -> "Image":
        """Derive an image with additional entrypoint processes."""
        return replace(self, entrypoints=self.entrypoints + tuple(factories))

    def with_limits(self, limits: ResourceLimits) -> "Image":
        """Derive an image with different default resource limits."""
        return replace(self, default_limits=limits)


class Registry:
    """An in-memory image registry (the testbed's local image store)."""

    def __init__(self) -> None:
        self._images: dict[str, Image] = {}

    def push(self, image: Image) -> None:
        self._images[image.reference] = image

    def pull(self, reference: str) -> Image:
        if ":" not in reference:
            reference = f"{reference}:latest"
        try:
            return self._images[reference]
        except KeyError:
            raise KeyError(f"image not found in registry: {reference}") from None

    def __contains__(self, reference: str) -> bool:
        if ":" not in reference:
            reference = f"{reference}:latest"
        return reference in self._images
