"""Containers and the processes they host.

A :class:`Container` owns a simulated network node (via a tap bridge), a
resource accountant, and a set of :class:`Process` instances.  Processes
are the "IoT binaries" of the paper: event-driven objects that open
sockets on the container's node and schedule work on the shared
simulator.  ``container.exec(...)`` injects a process into a running
container — exactly how the Mirai loader drops a bot onto a compromised
device.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from repro.containers.image import Image
from repro.containers.resources import ResourceAccountant, ResourceLimits
from repro.sim.core import Simulator

if TYPE_CHECKING:
    from repro.sim.node import Node


class ContainerState(enum.Enum):
    CREATED = "created"
    RUNNING = "running"
    STOPPED = "stopped"


class ContainerError(RuntimeError):
    """Raised on lifecycle misuse (starting a started container, etc.)."""


class Process:
    """Base class for everything that runs inside a container.

    Subclasses implement :meth:`on_start` (open sockets, schedule work)
    and optionally :meth:`on_stop` (cancel timers, close sockets).
    """

    name = "process"

    def __init__(self) -> None:
        self.container: "Container | None" = None
        self.running = False

    # ------------------------------------------------------------------
    # Conveniences available once attached

    @property
    def sim(self) -> Simulator:
        assert self.container is not None, "process not attached to a container"
        return self.container.sim

    @property
    def node(self) -> "Node":
        assert self.container is not None, "process not attached to a container"
        return self.container.node

    def charge_cpu(self, work_seconds: float) -> float:
        """Account CPU work against the container; returns wall duration."""
        assert self.container is not None
        return self.container.resources.charge_cpu(work_seconds)

    # ------------------------------------------------------------------
    # Lifecycle hooks

    def start(self, container: "Container") -> None:
        self.container = container
        self.running = True
        self.on_start()

    def stop(self) -> None:
        if not self.running:
            return
        self.running = False
        self.on_stop()

    def on_start(self) -> None:  # pragma: no cover - overridden
        """Open sockets and schedule initial events."""

    def on_stop(self) -> None:
        """Cancel timers and release resources (override when needed)."""


class Container:
    """A running instance of an image, attached to one simulated node."""

    def __init__(
        self,
        name: str,
        image: Image,
        sim: Simulator,
        node: "Node",
        limits: ResourceLimits | None = None,
    ) -> None:
        self.name = name
        self.image = image
        self.sim = sim
        self.node = node
        self.resources = ResourceAccountant(limits or image.default_limits)
        self.state = ContainerState.CREATED
        self.processes: list[Process] = []
        self.started_at: float | None = None
        self.stopped_at: float | None = None

    def __repr__(self) -> str:
        return f"Container({self.name!r}, image={self.image.reference!r}, state={self.state.value})"

    def start(self) -> None:
        """Boot: run every entrypoint process from the image."""
        if self.state is ContainerState.RUNNING:
            raise ContainerError(f"{self.name} is already running")
        self.state = ContainerState.RUNNING
        self.started_at = self.sim.now
        for factory in self.image.entrypoints:
            self.exec(factory(self))

    def exec(self, process: Process) -> Process:
        """Inject and start an extra process (``docker exec`` analogue)."""
        if self.state is not ContainerState.RUNNING:
            raise ContainerError(f"cannot exec in {self.state.value} container {self.name}")
        self.processes.append(process)
        process.start(self)
        return process

    def stop(self) -> None:
        """Stop all processes; the node stays attached but goes quiet."""
        if self.state is not ContainerState.RUNNING:
            raise ContainerError(f"{self.name} is not running")
        for process in self.processes:
            process.stop()
        self.state = ContainerState.STOPPED
        self.stopped_at = self.sim.now

    @property
    def uptime(self) -> float:
        """Virtual seconds this container has been running."""
        if self.started_at is None:
            return 0.0
        end = self.stopped_at if self.stopped_at is not None else self.sim.now
        return end - self.started_at

    def find_process(self, name: str) -> Process | None:
        """Look up a hosted process by its class-level ``name``."""
        for process in self.processes:
            if process.name == name:
                return process
        return None
