"""Containers and the processes they host.

A :class:`Container` owns a simulated network node (via a tap bridge), a
resource accountant, and a set of :class:`Process` instances.  Processes
are the "IoT binaries" of the paper: event-driven objects that open
sockets on the container's node and schedule work on the shared
simulator.  ``container.exec(...)`` injects a process into a running
container — exactly how the Mirai loader drops a bot onto a compromised
device.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from repro.containers.image import Image
from repro.containers.resources import ResourceAccountant, ResourceLimits
from repro.sim.core import Simulator

if TYPE_CHECKING:
    from repro.sim.node import Node


class ContainerState(enum.Enum):
    CREATED = "created"
    RUNNING = "running"
    STOPPED = "stopped"
    FAILED = "failed"  # crashed (killed / health-check death), not a clean stop


class ContainerError(RuntimeError):
    """Raised on lifecycle misuse (starting a started container, etc.)."""


class Process:
    """Base class for everything that runs inside a container.

    Subclasses implement :meth:`on_start` (open sockets, schedule work)
    and optionally :meth:`on_stop` (cancel timers, close sockets).
    """

    name = "process"

    def __init__(self) -> None:
        self.container: "Container | None" = None
        self.running = False

    # ------------------------------------------------------------------
    # Conveniences available once attached

    @property
    def sim(self) -> Simulator:
        assert self.container is not None, "process not attached to a container"
        return self.container.sim

    @property
    def node(self) -> "Node":
        assert self.container is not None, "process not attached to a container"
        return self.container.node

    def charge_cpu(self, work_seconds: float) -> float:
        """Account CPU work against the container; returns wall duration."""
        assert self.container is not None
        return self.container.resources.charge_cpu(work_seconds)

    # ------------------------------------------------------------------
    # Lifecycle hooks

    def start(self, container: "Container") -> None:
        self.container = container
        self.running = True
        self.on_start()

    def stop(self) -> None:
        if not self.running:
            return
        self.running = False
        self.on_stop()

    def on_start(self) -> None:  # pragma: no cover - overridden
        """Open sockets and schedule initial events."""

    def on_stop(self) -> None:
        """Cancel timers and release resources (override when needed)."""


class Container:
    """A running instance of an image, attached to one simulated node."""

    def __init__(
        self,
        name: str,
        image: Image,
        sim: Simulator,
        node: "Node",
        limits: ResourceLimits | None = None,
    ) -> None:
        self.name = name
        self.image = image
        self.sim = sim
        self.node = node
        self.resources = ResourceAccountant(limits or image.default_limits)
        if sim.sanitizer is not None:
            sim.sanitizer.register_accountant(name, self.resources)
        self.state = ContainerState.CREATED
        self.processes: list[Process] = []
        self.started_at: float | None = None
        self.stopped_at: float | None = None
        self.restart_count = 0
        #: Supervision hooks fired on every exit: ``fn(container, failed)``.
        self.on_exit: list = []

    def __repr__(self) -> str:
        return f"Container({self.name!r}, image={self.image.reference!r}, state={self.state.value})"

    def start(self) -> None:
        """Boot: run every entrypoint process from the image."""
        if self.state is ContainerState.RUNNING:
            raise ContainerError(f"{self.name} is already running")
        self.state = ContainerState.RUNNING
        self.started_at = self.sim.now
        for factory in self.image.entrypoints:
            self.exec(factory(self))

    def exec(self, process: Process) -> Process:
        """Inject and start an extra process (``docker exec`` analogue)."""
        if self.state is not ContainerState.RUNNING:
            raise ContainerError(f"cannot exec in {self.state.value} container {self.name}")
        self.processes.append(process)
        process.start(self)
        return process

    def stop(self) -> None:
        """Stop all processes; the node stays attached but goes quiet."""
        if self.state is not ContainerState.RUNNING:
            raise ContainerError(f"{self.name} is not running")
        for process in self.processes:
            process.stop()
        self.state = ContainerState.STOPPED
        self.stopped_at = self.sim.now
        self._fire_exit(failed=False)

    def kill(self) -> None:
        """Crash the container: processes die and the tap is unplugged.

        Unlike :meth:`stop`, a kill marks the container FAILED (so
        ``on-failure`` restart policies trigger) and detaches its net
        devices from the medium — a crashed device drops off the LAN,
        flushing any frames still queued on its NIC.
        """
        if self.state is not ContainerState.RUNNING:
            raise ContainerError(f"cannot kill {self.state.value} container {self.name}")
        for process in self.processes:
            process.stop()
        for iface in self.node.interfaces:
            if iface.device.attached:
                iface.device.detach()
        self.state = ContainerState.FAILED
        self.stopped_at = self.sim.now
        self._fire_exit(failed=True)

    def restart(self) -> None:
        """Boot a stopped/crashed container again with its existing processes.

        Every process the container hosted — image entrypoints and
        ``exec``-injected ones alike — is started again, re-opening its
        sockets and rescheduling its work on the shared simulator.  The
        caller (normally the orchestrator's supervisor) is responsible
        for re-attaching the node's devices through the tap bridge first.
        """
        if self.state is ContainerState.RUNNING:
            raise ContainerError(f"{self.name} is already running")
        if self.state is ContainerState.CREATED:
            raise ContainerError(f"{self.name} was never started; use start()")
        self.state = ContainerState.RUNNING
        self.started_at = self.sim.now
        self.stopped_at = None
        self.restart_count += 1
        for process in self.processes:
            process.start(self)

    def is_healthy(self) -> bool:
        """Default health probe: running with at least one live process.

        Containers that were started without processes (bare nodes) count
        as healthy while RUNNING.
        """
        if self.state is not ContainerState.RUNNING:
            return False
        return not self.processes or any(p.running for p in self.processes)

    def _fire_exit(self, failed: bool) -> None:
        for hook in list(self.on_exit):
            hook(self, failed)

    @property
    def uptime(self) -> float:
        """Virtual seconds this container has been running."""
        if self.started_at is None:
            return 0.0
        end = self.stopped_at if self.stopped_at is not None else self.sim.now
        return end - self.started_at

    def find_process(self, name: str) -> Process | None:
        """Look up a hosted process by its class-level ``name``."""
        for process in self.processes:
            if process.name == name:
                return process
        return None
