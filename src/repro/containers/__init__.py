"""Container runtime emulation (Docker substitute).

DDoShield-IoT runs each role — Attacker, Devs, TServer, IDS — inside a
Docker container grafted onto the NS-3 network through a tap bridge.
This subpackage reproduces that operational surface: images declaring
the processes to run (:mod:`repro.containers.image`), containers with a
lifecycle and cgroup-style resource accounting
(:mod:`repro.containers.container`, :mod:`repro.containers.resources`),
tap bridges that attach containers to simulated ghost nodes
(:mod:`repro.containers.bridge`), and a compose-style orchestrator
(:mod:`repro.containers.orchestrator`).
"""

from repro.containers.bridge import TapBridge
from repro.containers.container import Container, ContainerState, Process
from repro.containers.image import Image
from repro.containers.orchestrator import (
    Orchestrator,
    RestartPolicy,
    ServiceSpec,
    SupervisorEvent,
)
from repro.containers.resources import ResourceAccountant, ResourceLimits, ResourceUsage

__all__ = [
    "Container",
    "ContainerState",
    "Image",
    "Orchestrator",
    "Process",
    "ResourceAccountant",
    "ResourceLimits",
    "ResourceUsage",
    "RestartPolicy",
    "ServiceSpec",
    "SupervisorEvent",
    "TapBridge",
]
