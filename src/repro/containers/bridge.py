"""Tap bridges: graft a container onto the simulated network.

DDoSim connects each Docker container to NS-3 through a veth/tap pair and
a ghost node.  Here the :class:`TapBridge` creates the ghost
:class:`~repro.sim.node.Node`, attaches it to a LAN, and hands it to the
container, so container processes do socket I/O directly on the simulated
stack — the same "container speaks through the simulation" topology as
the paper's Figure 1.
"""

from __future__ import annotations

from repro.sim.core import Simulator
from repro.sim.node import Node
from repro.sim.topology import CsmaLan


class TapBridge:
    """Builds ghost nodes on a LAN for containers to use."""

    def __init__(self, sim: Simulator, lan: CsmaLan) -> None:
        self.sim = sim
        self.lan = lan
        self.ghost_nodes: list[Node] = []

    def create_ghost_node(self, name: str, queue_capacity: int = 512) -> Node:
        """Create and attach the ghost node backing one container.

        Placement goes through ``lan.attach`` so hierarchical topologies
        (:class:`~repro.sim.topology.SegmentedLan`) can put the node on
        the right segment; a flat :class:`CsmaLan` attaches it directly.
        """
        node = Node(self.sim, name=f"ghost-{name}")
        self.lan.attach(node, queue_capacity=queue_capacity)
        self.ghost_nodes.append(node)
        return node

    def disconnect(self, node: Node) -> None:
        """Detach a ghost node (container churn / network unplug)."""
        self.lan.remove_host(node)
        if node in self.ghost_nodes:
            self.ghost_nodes.remove(node)

    def reconnect(self, node: Node) -> None:
        """Re-graft a ghost node whose devices were unplugged (crash restart).

        The node keeps its interfaces, addresses, and MACs across a
        container crash; reconnecting simply re-attaches each device to
        its channel, the same veth/tap re-plumbing a supervisor performs
        when it restarts a bridged container.
        """
        for iface in node.interfaces:
            if not iface.device.attached:
                iface.device.channel.attach(iface.device)
        if node not in self.ghost_nodes:
            self.ghost_nodes.append(node)
        if node not in self.lan.nodes:
            self.lan.nodes.append(node)
