"""cgroup-style resource accounting for containers.

The paper's Table II reports per-container CPU % and occupied RAM for the
IDS.  Processes report the virtual CPU seconds they consume and the bytes
they hold; the accountant aggregates per container and can enforce
limits, slowing down (or OOM-killing) processes the way cgroups do.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class ResourceLimitExceeded(RuntimeError):
    """Raised when a container breaches its memory limit (OOM-kill analogue)."""


@dataclass(frozen=True, slots=True)
class ResourceLimits:
    """Limits in the style of ``docker run --cpus --memory``.

    ``cpu_share`` scales how long a unit of work takes (1.0 = a full host
    core; 0.5 = work takes twice as long).  ``memory_bytes`` is a hard cap.
    """

    cpu_share: float = 1.0
    memory_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.cpu_share <= 0:
            raise ValueError(f"cpu_share must be positive, got {self.cpu_share}")
        if self.memory_bytes is not None and self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive when set")


@dataclass
class ResourceUsage:
    """A point-in-time resource snapshot for a container."""

    cpu_seconds: float = 0.0
    memory_bytes: int = 0
    peak_memory_bytes: int = 0

    @property
    def memory_kb(self) -> float:
        return self.memory_bytes / 1000.0


class ResourceAccountant:
    """Tracks a container's CPU time and memory high-water mark."""

    def __init__(self, limits: ResourceLimits | None = None) -> None:
        self.limits = limits or ResourceLimits()
        self.usage = ResourceUsage()
        self._allocations: dict[str, int] = {}

    def charge_cpu(self, work_seconds: float) -> float:
        """Record ``work_seconds`` of compute; return the wall time it takes
        under this container's CPU share (used to schedule completion)."""
        if work_seconds < 0:
            raise ValueError("cannot charge negative CPU time")
        self.usage.cpu_seconds += work_seconds
        return work_seconds / self.limits.cpu_share

    def allocate(self, tag: str, nbytes: int) -> None:
        """Account an allocation under ``tag`` (replacing any prior one)."""
        if nbytes < 0:
            raise ValueError("cannot allocate negative bytes")
        previous = self._allocations.get(tag, 0)
        new_total = self.usage.memory_bytes - previous + nbytes
        if (
            self.limits.memory_bytes is not None
            and new_total > self.limits.memory_bytes
        ):
            raise ResourceLimitExceeded(
                f"allocation {tag!r} of {nbytes}B exceeds limit "
                f"{self.limits.memory_bytes}B (in use: {self.usage.memory_bytes}B)"
            )
        self._allocations[tag] = nbytes
        self.usage.memory_bytes = new_total
        self.usage.peak_memory_bytes = max(
            self.usage.peak_memory_bytes, self.usage.memory_bytes
        )

    def free(self, tag: str) -> None:
        """Release the allocation recorded under ``tag``."""
        nbytes = self._allocations.pop(tag, 0)
        self.usage.memory_bytes -= nbytes

    def consistency_errors(self) -> list[str]:
        """Accounting invariants the runtime sanitizers verify.

        The usage ledger must equal the sum of live allocations, stay
        non-negative, and never exceed its own recorded peak.
        """
        problems: list[str] = []
        live = sum(self._allocations.values())
        if self.usage.memory_bytes != live:
            problems.append(
                f"memory ledger {self.usage.memory_bytes}B != live "
                f"allocations {live}B"
            )
        if self.usage.memory_bytes < 0:
            problems.append(f"negative memory ledger {self.usage.memory_bytes}B")
        if self.usage.peak_memory_bytes < self.usage.memory_bytes:
            problems.append(
                f"peak {self.usage.peak_memory_bytes}B below current "
                f"{self.usage.memory_bytes}B"
            )
        if self.usage.cpu_seconds < 0:
            problems.append(f"negative cpu ledger {self.usage.cpu_seconds}s")
        if (
            self.limits.memory_bytes is not None
            and self.usage.memory_bytes > self.limits.memory_bytes
        ):
            problems.append(
                f"memory {self.usage.memory_bytes}B exceeds limit "
                f"{self.limits.memory_bytes}B without an OOM kill"
            )
        return problems

    def cpu_percent(self, over_seconds: float) -> float:
        """Average CPU utilisation (%) over a window of virtual time."""
        if over_seconds <= 0:
            return 0.0
        return 100.0 * self.usage.cpu_seconds / (over_seconds * self.limits.cpu_share)
