"""Compose-style orchestration and supervision of multi-container scenarios.

The testbed's run scripts bring up the Attacker, N Devs, the TServer and
the IDS together.  :class:`Orchestrator` plays docker-compose: declare
:class:`ServiceSpec` entries (image, replicas, limits), call
:meth:`Orchestrator.up`, and get named running containers each attached
to the shared LAN through a tap bridge.

It is also the supervisor of the fault-injection subsystem: containers
can be :meth:`kill`-ed (crash faults), probed for health, and restarted
under a :class:`RestartPolicy` — exponential backoff with deterministic
jitter and a max-restart circuit breaker, mirroring Docker's
``restart: on-failure`` semantics.  Restarted containers are re-attached
to the LAN through the tap bridge and their processes started again.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro import obs
from repro.containers.bridge import TapBridge
from repro.containers.container import Container, ContainerState
from repro.containers.image import Image, Registry
from repro.containers.resources import ResourceLimits
from repro.sim.core import Event, Simulator
from repro.sim.topology import CsmaLan

RESTART_MODES = ("no", "on-failure", "always")


@dataclass(frozen=True)
class RestartPolicy:
    """When and how the supervisor resurrects a dead container.

    ``mode`` follows Docker: ``no`` never restarts, ``on-failure``
    restarts only crashed (killed) containers, ``always`` also restarts
    cleanly stopped ones.  Consecutive restarts back off exponentially
    from ``backoff_base`` up to ``backoff_cap`` with ``jitter``
    (a fraction of the delay, drawn from the supervisor's seeded RNG so
    runs stay reproducible).  After ``max_restarts`` consecutive failures
    the circuit breaker opens and the container stays down; a container
    that stays up ``reset_after`` seconds closes the breaker again.
    """

    mode: str = "no"
    max_restarts: int = 5
    backoff_base: float = 1.0
    backoff_cap: float = 30.0
    jitter: float = 0.1
    reset_after: float = 10.0

    def __post_init__(self) -> None:
        if self.mode not in RESTART_MODES:
            raise ValueError(f"restart mode must be one of {RESTART_MODES}, got {self.mode!r}")
        if self.max_restarts < 1:
            raise ValueError(f"max_restarts must be >= 1, got {self.max_restarts}")
        if self.backoff_base <= 0 or self.backoff_cap < self.backoff_base:
            raise ValueError(
                f"need 0 < backoff_base <= backoff_cap, got {self.backoff_base}/{self.backoff_cap}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def backoff(self, streak: int, rng: random.Random) -> float:
        """Delay before restart attempt number ``streak`` (0-based)."""
        delay = min(self.backoff_cap, self.backoff_base * (2.0**streak))
        if self.jitter:
            delay *= 1.0 + self.jitter * rng.uniform(-1.0, 1.0)
        return delay


@dataclass(frozen=True)
class SupervisorEvent:
    """One supervision decision, recorded for the run's fault trace."""

    time: float
    container: str
    action: str  # "kill" | "exit" | "backoff" | "restart" | "giveup" | "unhealthy"
    detail: str = ""

    def __str__(self) -> str:
        suffix = f" ({self.detail})" if self.detail else ""
        return f"t={self.time:.3f} {self.action} {self.container}{suffix}"


@dataclass
class ServiceSpec:
    """One service in the compose file: an image plus deployment settings."""

    name: str
    image: Image
    replicas: int = 1
    limits: ResourceLimits | None = None
    queue_capacity: int = 512
    restart: RestartPolicy | None = None


@dataclass
class _Supervision:
    """Per-container supervision state."""

    policy: RestartPolicy
    streak: int = 0
    pending: Event | None = None
    health_event: Event | None = None


class Orchestrator:
    """Creates, starts, stops, supervises, and looks up containers on one LAN."""

    def __init__(self, sim: Simulator, lan: CsmaLan, seed: int = 0) -> None:
        self.sim = sim
        self.lan = lan
        self.bridge = TapBridge(sim, lan)
        self.registry = Registry()
        self.containers: dict[str, Container] = {}
        self._services: list[ServiceSpec] = []
        self._supervised: dict[str, _Supervision] = {}
        self._rng = random.Random(seed)
        self.events: list[SupervisorEvent] = []
        #: Callbacks invoked with every SupervisorEvent (mitigation fallback).
        self.listeners: list = []
        ctx = obs.current()
        self._obs_events = ctx.events
        self._obs_registry = ctx.registry
        self._obs_restarts = ctx.registry.counter("container.restarts")

    def add_service(self, spec: ServiceSpec) -> None:
        """Register a service to be instantiated by :meth:`up`."""
        self._services.append(spec)
        self.registry.push(spec.image)

    def up(self) -> list[Container]:
        """Create and start every declared service replica."""
        started: list[Container] = []
        for spec in self._services:
            for replica in range(spec.replicas):
                name = spec.name if spec.replicas == 1 else f"{spec.name}-{replica}"
                container = self.run(name, spec.image, spec.limits, spec.queue_capacity)
                if spec.restart is not None:
                    self.supervise(name, spec.restart)
                started.append(container)
        return started

    def run(
        self,
        name: str,
        image: Image,
        limits: ResourceLimits | None = None,
        queue_capacity: int = 512,
    ) -> Container:
        """``docker run``: create a container on a fresh ghost node, start it."""
        if name in self.containers:
            raise ValueError(f"container name already in use: {name}")
        node = self.bridge.create_ghost_node(name, queue_capacity=queue_capacity)
        container = Container(name, image, self.sim, node, limits=limits)
        self.containers[name] = container
        container.start()
        return container

    def stop(self, name: str) -> None:
        """Stop one container (keeps it listed, like ``docker stop``)."""
        self.containers[name].stop()

    def remove(self, name: str) -> None:
        """Stop (if needed) and remove a container and its ghost node."""
        self.unsupervise(name)
        container = self.containers.pop(name)
        if container.state is ContainerState.RUNNING:
            container.stop()
        self.bridge.disconnect(container.node)

    def down(self) -> None:
        """Stop and remove everything (``docker compose down``)."""
        for name in list(self.containers):
            self.remove(name)

    def ps(self) -> list[tuple[str, str, str]]:
        """List (name, image, state) rows, like ``docker ps -a``."""
        return [
            (c.name, c.image.reference, c.state.value)
            for c in self.containers.values()
        ]

    def get(self, name: str) -> Container:
        try:
            return self.containers[name]
        except KeyError:
            raise KeyError(f"no such container: {name}") from None

    # ------------------------------------------------------------------
    # Supervision: crash faults, health probes, restart policies

    def supervise(self, name: str, policy: RestartPolicy) -> None:
        """Put ``name`` under ``policy``; exits now trigger the supervisor."""
        container = self.get(name)
        if name in self._supervised:
            self._supervised[name].policy = policy
            return
        self._supervised[name] = _Supervision(policy)
        container.on_exit.append(self._on_container_exit)

    def unsupervise(self, name: str) -> None:
        """Drop supervision: cancel pending restarts and health probes."""
        state = self._supervised.pop(name, None)
        if state is None:
            return
        if state.pending is not None:
            state.pending.cancel()
        if state.health_event is not None:
            state.health_event.cancel()
        container = self.containers.get(name)
        if container is not None and self._on_container_exit in container.on_exit:
            container.on_exit.remove(self._on_container_exit)

    def kill(self, name: str) -> None:
        """Crash one container (``docker kill``); supervision may revive it."""
        self._record(name, "kill")
        self.containers[name].kill()

    def add_health_probe(
        self,
        name: str,
        interval: float = 1.0,
        check=None,
    ) -> None:
        """Probe ``name`` every ``interval`` sim-seconds.

        ``check(container) -> bool`` defaults to
        :meth:`Container.is_healthy`.  A probe that finds a RUNNING
        container unhealthy kills it, which hands it to the restart
        policy — catching silent deaths (a wedged process that never
        crashed the container).
        """
        if interval <= 0:
            raise ValueError(f"health probe interval must be positive, got {interval}")
        container = self.get(name)
        if name not in self._supervised:
            # Health without a policy still detects, it just cannot revive.
            self.supervise(name, RestartPolicy(mode="no"))
        probe = check if check is not None else Container.is_healthy

        def tick() -> None:
            state = self._supervised.get(name)
            if state is None or name not in self.containers:
                return
            live = self.containers[name]
            if live.state is ContainerState.RUNNING and not probe(live):
                self._record(name, "unhealthy")
                live.kill()
            state.health_event = self.sim.schedule(interval, tick)

        self._supervised[name].health_event = self.sim.schedule(interval, tick)

    def _on_container_exit(self, container: Container, failed: bool) -> None:
        state = self._supervised.get(container.name)
        if state is None:
            return
        self._record(
            container.name, "exit", f"{'failed' if failed else 'clean'}"
        )
        policy = state.policy
        wants_restart = policy.mode == "always" or (policy.mode == "on-failure" and failed)
        if not wants_restart:
            return
        # A healthy stretch closes the circuit breaker.
        uptime = container.uptime
        if state.streak and uptime >= policy.reset_after:
            state.streak = 0
        if state.streak >= policy.max_restarts:
            self._record(
                container.name,
                "giveup",
                f"circuit breaker open after {state.streak} restarts",
            )
            return
        delay = policy.backoff(state.streak, self._rng)
        state.streak += 1
        self._record(container.name, "backoff", f"restart in {delay:.2f}s")
        state.pending = self.sim.schedule(delay, self._restart, container.name)

    def _restart(self, name: str) -> None:
        state = self._supervised.get(name)
        if state is not None:
            state.pending = None
        container = self.containers.get(name)
        if container is None or container.state is ContainerState.RUNNING:
            return
        # Re-plumb the tap first so processes re-open sockets on a live LAN.
        self.bridge.reconnect(container.node)
        container.restart()
        self._record(name, "restart", f"attempt {container.restart_count}")

    def restarts_of(self, name: str) -> int:
        return self.get(name).restart_count

    def _record(self, name: str, action: str, detail: str = "") -> None:
        event = SupervisorEvent(self.sim.now, name, action, detail)
        self.events.append(event)
        self._obs_events.record(self.sim.now, f"supervisor.{action}", detail=name)
        if action == "restart":
            self._obs_restarts.inc()
        for listener in list(self.listeners):
            listener(event)

    def sample_resources(self) -> None:
        """Publish each container's cgroup-style CPU/memory into telemetry.

        Point-in-time gauges labeled by container — the analogue of one
        ``docker stats`` sample.  Cheap no-ops when telemetry is off.
        """
        if not self._obs_registry.enabled:
            return
        for name, container in sorted(self.containers.items()):
            usage = container.resources.usage
            self._obs_registry.gauge("container.cpu_seconds", container=name).set(
                usage.cpu_seconds
            )
            self._obs_registry.gauge("container.memory_bytes", container=name).set(
                usage.memory_bytes
            )
            self._obs_registry.gauge(
                "container.peak_memory_bytes", container=name
            ).set(usage.peak_memory_bytes)
