"""Compose-style orchestration of multi-container scenarios.

The testbed's run scripts bring up the Attacker, N Devs, the TServer and
the IDS together.  :class:`Orchestrator` plays docker-compose: declare
:class:`ServiceSpec` entries (image, replicas, limits), call
:meth:`Orchestrator.up`, and get named running containers each attached
to the shared LAN through a tap bridge.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.containers.bridge import TapBridge
from repro.containers.container import Container, ContainerState
from repro.containers.image import Image, Registry
from repro.containers.resources import ResourceLimits
from repro.sim.core import Simulator
from repro.sim.topology import CsmaLan


@dataclass
class ServiceSpec:
    """One service in the compose file: an image plus deployment settings."""

    name: str
    image: Image
    replicas: int = 1
    limits: ResourceLimits | None = None
    queue_capacity: int = 512


class Orchestrator:
    """Creates, starts, stops, and looks up containers on one LAN."""

    def __init__(self, sim: Simulator, lan: CsmaLan) -> None:
        self.sim = sim
        self.lan = lan
        self.bridge = TapBridge(sim, lan)
        self.registry = Registry()
        self.containers: dict[str, Container] = {}
        self._services: list[ServiceSpec] = []

    def add_service(self, spec: ServiceSpec) -> None:
        """Register a service to be instantiated by :meth:`up`."""
        self._services.append(spec)
        self.registry.push(spec.image)

    def up(self) -> list[Container]:
        """Create and start every declared service replica."""
        started: list[Container] = []
        for spec in self._services:
            for replica in range(spec.replicas):
                name = spec.name if spec.replicas == 1 else f"{spec.name}-{replica}"
                started.append(self.run(name, spec.image, spec.limits, spec.queue_capacity))
        return started

    def run(
        self,
        name: str,
        image: Image,
        limits: ResourceLimits | None = None,
        queue_capacity: int = 512,
    ) -> Container:
        """``docker run``: create a container on a fresh ghost node, start it."""
        if name in self.containers:
            raise ValueError(f"container name already in use: {name}")
        node = self.bridge.create_ghost_node(name, queue_capacity=queue_capacity)
        container = Container(name, image, self.sim, node, limits=limits)
        self.containers[name] = container
        container.start()
        return container

    def stop(self, name: str) -> None:
        """Stop one container (keeps it listed, like ``docker stop``)."""
        self.containers[name].stop()

    def remove(self, name: str) -> None:
        """Stop (if needed) and remove a container and its ghost node."""
        container = self.containers.pop(name)
        if container.state is ContainerState.RUNNING:
            container.stop()
        self.bridge.disconnect(container.node)

    def down(self) -> None:
        """Stop and remove everything (``docker compose down``)."""
        for name in list(self.containers):
            self.remove(name)

    def ps(self) -> list[tuple[str, str, str]]:
        """List (name, image, state) rows, like ``docker ps -a``."""
        return [
            (c.name, c.image.reference, c.state.value)
            for c in self.containers.values()
        ]

    def get(self, name: str) -> Container:
        try:
            return self.containers[name]
        except KeyError:
            raise KeyError(f"no such container: {name}") from None
