"""Mitigation: IDS-driven traffic filtering at the victim.

DDoSim positions its results "for evaluating the effectiveness of
defense mechanisms, ranging from intrusion detection systems to traffic
filtering and mitigation techniques"; this module closes that loop.  A
:class:`BlocklistFilter` sits on the victim's net device: when the
real-time IDS flags a window, the filter extracts the offending sources
(and, for spoofed floods, rate signatures) and drops matching inbound
frames before they reach the victim's stack, restoring goodput.

Two mitigation strategies are provided:

* **source blocklisting** — block src IPs whose packets the IDS flagged
  (works for ACK/UDP floods from real bot addresses);
* **destination-port rate limiting** — a token bucket per destination
  port (catches spoofed SYN floods that rotate source addresses).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.sim.packet import Packet
from repro.sim.tracing import PacketRecord

if TYPE_CHECKING:
    from repro.ids.engine import RealTimeIds
    from repro.sim.node import Node


@dataclass
class TokenBucket:
    """Per-key rate limiter: ``rate`` tokens/s, burst up to ``burst``."""

    rate: float
    burst: float
    tokens: float = 0.0
    last_time: float = 0.0

    def allow(self, now: float, cost: float = 1.0) -> bool:
        self.tokens = min(self.burst, self.tokens + (now - self.last_time) * self.rate)
        self.last_time = now
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False


class BlocklistFilter:
    """Inline packet filter for a victim node, driven by IDS verdicts.

    Install with :meth:`install`; feed IDS window verdicts with
    :meth:`apply_window_verdict`.  Blocked sources expire after
    ``block_seconds`` so false positives do not mute devices forever.
    """

    def __init__(
        self,
        node: "Node",
        block_seconds: float = 30.0,
        syn_rate_limit: float = 200.0,
        syn_burst: float = 400.0,
    ) -> None:
        self.node = node
        self.block_seconds = block_seconds
        self.syn_rate_limit = syn_rate_limit
        self.syn_burst = syn_burst
        self.blocked_until: dict[int, float] = {}
        self.dropped_by_blocklist = 0
        self.dropped_by_rate_limit = 0
        self.passed = 0
        self._buckets: dict[int, TokenBucket] = defaultdict(
            lambda: TokenBucket(self.syn_rate_limit, self.syn_burst)
        )
        self._original_receive = None

    # ------------------------------------------------------------------
    # Installation

    def install(self) -> "BlocklistFilter":
        """Interpose on the node's inbound path."""
        if self._original_receive is not None:
            return self
        self._original_receive = self.node.receive
        node = self.node

        def filtered_receive(frame: Packet, device) -> None:
            if self._should_drop(frame):
                return
            self.passed += 1
            assert self._original_receive is not None
            self._original_receive(frame, device)

        node.receive = filtered_receive  # type: ignore[method-assign]
        return self

    def uninstall(self) -> None:
        if self._original_receive is not None:
            # Remove the instance override so the class method shows again.
            self.node.__dict__.pop("receive", None)
            self._original_receive = None

    # ------------------------------------------------------------------
    # Filtering

    def _should_drop(self, frame: Packet) -> bool:
        if frame.ip is None:
            return False
        now = self.node.sim.now
        until = self.blocked_until.get(frame.ip.src.value)
        if until is not None:
            if now < until:
                self.dropped_by_blocklist += 1
                return True
            del self.blocked_until[frame.ip.src.value]
        # SYN-specific rate limiting (spoofed sources rotate, so the
        # bucket keys on the targeted service port instead).
        if frame.tcp is not None and (frame.tcp.flags & 0x02) and not (frame.tcp.flags & 0x10):
            bucket = self._buckets[frame.tcp.dst_port]
            if not bucket.allow(now):
                self.dropped_by_rate_limit += 1
                return True
        return False

    # ------------------------------------------------------------------
    # IDS feedback

    def apply_window_verdict(
        self,
        records: list[PacketRecord],
        predictions: np.ndarray,
        min_flagged: int = 10,
    ) -> int:
        """Blocklist sources that dominate a flagged window.

        Returns the number of sources newly blocked.  Sources are only
        blocked when they account for several flagged packets, keeping
        single misclassifications from blocking a benign device.
        """
        if len(records) != len(predictions):
            raise ValueError("records and predictions misaligned")
        flagged: dict[int, int] = defaultdict(int)
        for record, prediction in zip(records, predictions):
            if prediction == 1:
                flagged[record.src_ip] += 1
        newly_blocked = 0
        expiry = self.node.sim.now + self.block_seconds
        for src, count in flagged.items():
            if count >= min_flagged and src != self.node.address.value:
                if src not in self.blocked_until:
                    newly_blocked += 1
                self.blocked_until[src] = expiry
        return newly_blocked

    @property
    def active_blocks(self) -> int:
        now = self.node.sim.now
        return sum(1 for until in self.blocked_until.values() if until > now)


class MitigatingIds:
    """Couples a :class:`~repro.ids.engine.RealTimeIds` to a filter.

    Every completed window's predictions are forwarded to the victim's
    blocklist filter, closing the detect→mitigate loop in real time.
    """

    def __init__(self, ids: "RealTimeIds", filter_: BlocklistFilter) -> None:
        self.ids = ids
        self.filter = filter_
        self.blocks_issued = 0
        original = ids._on_window

        def hooked(index: int, records: list[PacketRecord]) -> None:
            original(index, records)
            window = ids.report.windows[-1]
            if window.n_malicious_predicted > 0:
                X = ids.extractor.transform_window(records)
                predictions = np.asarray(ids.model.predict(ids.scaler.transform(X)))
                self.blocks_issued += self.filter.apply_window_verdict(
                    records, predictions
                )

        ids._on_window = hooked  # type: ignore[method-assign]
