"""Mitigation: the detect → mitigate → recover loop.

DDoSim positions its results "for evaluating the effectiveness of
defense mechanisms, ranging from intrusion detection systems to traffic
filtering and mitigation techniques"; this module closes that loop.  A
:class:`MitigationPlan` (attached to a scenario) describes the defended
configuration; a :class:`MitigationController` subscribes to live IDS
window verdicts and drives three escalating actions:

* **source blocklisting** (:class:`BlocklistFilter`) — block src IPs
  whose packets the IDS flagged, with TTL expiry, false-positive
  unblock, and established-connection passthrough (works for ACK/UDP
  floods from real bot addresses without severing the compromised
  device's in-flight benign sessions);
* **handshake hardening** — destination-port SYN rate limiting here,
  plus SYN-cookie mode in :mod:`repro.sim.tcp` (catches spoofed SYN
  floods that rotate source addresses);
* **upstream filtering** (:class:`UpstreamFilter`) — persistent
  offenders are pushed to the LAN tier so their frames die at the
  channel before occupying the bottleneck link.

The loop is fault-tolerant: when the IDS container restarts or its link
is partitioned (see :mod:`repro.faults`), the controller enters a
*fallback* state that freezes the last-known policy with bounded
staleness (``MitigationPlan.fallback_staleness``) instead of failing
open (TTL expiry would unblock mid-outage) or wedging (blocks never
expiring).  Every transition is recorded as a :class:`MitigationEvent`
and mirrored into :mod:`repro.obs` as ``mitigation.*`` events.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro import obs
from repro.sim.address import Ipv4Address
from repro.sim.packet import PROTO_TCP, Packet, PacketBatch
from repro.sim.tracing import PacketRecord

if TYPE_CHECKING:
    from repro.containers.orchestrator import SupervisorEvent
    from repro.faults.injector import FaultEvent
    from repro.ids.engine import RealTimeIds
    from repro.sim.core import Simulator
    from repro.sim.node import Node
    from repro.testbed.impact import ImpactSeries

#: Matches :data:`repro.faults.plan.ALL_TARGETS` (imported lazily to keep
#: this module free of testbed-layer dependencies).
_ALL_TARGETS = "*"


def _fmt_ip(value: int) -> str:
    return str(Ipv4Address(value))


@dataclass
class TokenBucket:
    """Per-key rate limiter: ``rate`` tokens/s, burst up to ``burst``.

    A fresh bucket starts **full** (``tokens = burst``): an empty start
    would spuriously drop the first benign packets right after install.
    """

    rate: float
    burst: float
    tokens: float | None = None
    last_time: float = 0.0

    def __post_init__(self) -> None:
        if self.tokens is None:
            self.tokens = self.burst

    def allow(self, now: float, cost: float = 1.0) -> bool:
        self.tokens = min(self.burst, self.tokens + (now - self.last_time) * self.rate)
        self.last_time = now
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False

    def take(self, now: float, requested: int, cost: float = 1.0) -> int:
        """Grant as many of ``requested`` units as the bucket holds.

        Equivalent to ``requested`` sequential :meth:`allow` calls at the
        same ``now`` (the refill happens once; the rest of the calls see
        zero elapsed time): the head of a batch is admitted, the tail
        refused — the batched form of drop-tail rate limiting.
        """
        if requested <= 0:
            return 0
        self.tokens = min(self.burst, self.tokens + (now - self.last_time) * self.rate)
        self.last_time = now
        granted = min(requested, int(self.tokens / cost))
        self.tokens -= granted * cost
        return granted


class BlocklistFilter:
    """Inline packet filter for a victim node, driven by IDS verdicts.

    Install with :meth:`install`; feed IDS window verdicts with
    :meth:`apply_window_verdict` (or drive :meth:`block`/:meth:`unblock`
    directly from a :class:`MitigationController`).  Blocking is
    conntrack-style — new work from a blocked source is dropped while
    packets of already-established victim connections pass (see
    :meth:`_established`).  Blocked sources expire after
    ``block_seconds`` so false positives do not mute devices forever.  While ``ttl_grace`` is non-zero (fallback mode),
    expired entries stay enforced for up to that many extra seconds —
    the conservative last-known policy used while the IDS is down.
    """

    def __init__(
        self,
        node: "Node",
        block_seconds: float = 30.0,
        syn_rate_limit: float = 200.0,
        syn_burst: float = 400.0,
    ) -> None:
        self.node = node
        self.block_seconds = block_seconds
        self.syn_rate_limit = syn_rate_limit
        self.syn_burst = syn_burst
        self.blocked_until: dict[int, float] = {}
        self.ttl_grace = 0.0
        self.on_expire: Callable[[int, float], None] | None = None
        self.dropped_by_blocklist = 0
        self.dropped_by_rate_limit = 0
        self.passed = 0
        self.passed_established = 0
        self._buckets: dict[int, TokenBucket] = defaultdict(
            lambda: TokenBucket(self.syn_rate_limit, self.syn_burst)
        )
        self._original_receive = None
        self._original_receive_batch = None

    # ------------------------------------------------------------------
    # Installation

    def install(self) -> "BlocklistFilter":
        """Interpose on the node's inbound path (scalar *and* batched).

        Both hooks are overridden together: leaving ``receive_batch``
        alone would let :class:`~repro.sim.packet.PacketBatch` trains
        bypass the filter entirely.  Trains from unblocked sources that
        carry no SYNs (nothing for the rate limiter to decide) pass
        through whole; anything the per-frame policy must examine is
        split and run through the scalar filter in arrival order.
        """
        if self._original_receive is not None:
            return self
        self._original_receive = self.node.receive
        self._original_receive_batch = self.node.receive_batch
        node = self.node

        def filtered_receive(frame: Packet, device) -> None:
            if self._should_drop(frame):
                return
            self.passed += 1
            assert self._original_receive is not None
            self._original_receive(frame, device)

        def filtered_receive_batch(batch, device) -> None:
            n = len(batch)
            if n == 0:
                return
            flags = int(batch.flags) if batch.protocol == PROTO_TCP else 0
            bare_syn = bool(flags & 0x02) and not bool(flags & 0x10)
            if not self.blocked_until and not bare_syn:
                # Nothing blocked and no SYNs: every frame would pass.
                self.passed += n
                assert self._original_receive_batch is not None
                self._original_receive_batch(batch, device)
                return
            for i in range(n):
                filtered_receive(batch.packet(i), device)

        node.receive = filtered_receive  # type: ignore[method-assign]
        node.receive_batch = filtered_receive_batch  # type: ignore[method-assign]
        return self

    def uninstall(self) -> None:
        if self._original_receive is not None:
            # Remove the instance overrides so the class methods show again.
            self.node.__dict__.pop("receive", None)
            self.node.__dict__.pop("receive_batch", None)
            self._original_receive = None
            self._original_receive_batch = None

    # ------------------------------------------------------------------
    # Block table

    def block(self, src: int, until: float) -> bool:
        """Block ``src`` until ``until``; returns True for a new entry."""
        is_new = src not in self.blocked_until
        self.blocked_until[src] = until
        return is_new

    def unblock(self, src: int) -> bool:
        return self.blocked_until.pop(src, None) is not None

    def prune(self, now: float) -> list[tuple[int, float]]:
        """Drop (and report) entries expired as of ``now`` + grace."""
        expired = [
            (src, until)
            for src, until in self.blocked_until.items()
            if now >= until + self.ttl_grace
        ]
        for src, until in expired:
            del self.blocked_until[src]
            if self.on_expire is not None:
                self.on_expire(src, until)
        return expired

    # ------------------------------------------------------------------
    # Filtering

    def _blocked_verdict(self, frame: Packet) -> bool:
        """Conntrack-style policy for a packet from a blocked source.

        Mirrors the standard iptables mitigation stance (``--ctstate
        INVALID -j DROP``): UDP and out-of-state TCP — exactly what the
        ACK/UDP floods emit — are dropped, packets of live victim
        connections pass (a compromised device's in-flight benign
        sessions survive its bot traffic being filtered), and bare SYNs
        count as NEW, falling through to the SYN rate-limit / cookie
        hardening instead of being source-dropped.  (The upstream
        LAN-tier ACL has no connection state — that is the escalation's
        collateral cost.)  Returns True to drop.
        """
        tcp = frame.tcp
        if tcp is None:
            return True  # UDP (or other non-TCP) flood traffic
        if (tcp.flags & 0x02) and not (tcp.flags & 0x10):
            return False  # NEW: handshake hardening decides, not the block
        assert frame.ip is not None
        key = (frame.ip.dst.value, tcp.dst_port, frame.ip.src.value, tcp.src_port)
        if key in self.node.tcp.sockets:
            self.passed_established += 1
            return False  # ESTABLISHED (includes victim-initiated SYN_SENT)
        listener = self.node.tcp.listeners.get(tcp.dst_port)
        if listener is not None:
            if (frame.ip.src.value, tcp.src_port) in listener.half_open:
                return False  # SYN_RECV: the handshake-completing ACK
            if (
                getattr(listener, "syn_cookies_enabled", False)
                and (tcp.ack - 1) & 0xFFFFFFFF
                == listener._cookie_isn(frame.ip.src.value, tcp.src_port)
            ):
                return False  # valid SYN-cookie completion (stateless)
        return True  # INVALID: unknown-4-tuple segments (the ACK flood)

    def _should_drop(self, frame: Packet) -> bool:
        if frame.ip is None:
            return False
        now = self.node.sim.now
        src = frame.ip.src.value
        until = self.blocked_until.get(src)
        if until is not None:
            if now < until + self.ttl_grace:
                if self._blocked_verdict(frame):
                    self.dropped_by_blocklist += 1
                    return True
            else:
                del self.blocked_until[src]
                if self.on_expire is not None:
                    self.on_expire(src, until)
        # SYN-specific rate limiting (spoofed sources rotate, so the
        # bucket keys on the targeted service port instead).
        if frame.tcp is not None and (frame.tcp.flags & 0x02) and not (frame.tcp.flags & 0x10):
            bucket = self._buckets[frame.tcp.dst_port]
            if not bucket.allow(now):
                self.dropped_by_rate_limit += 1
                return True
        return False

    # ------------------------------------------------------------------
    # IDS feedback

    def apply_window_verdict(
        self,
        records: list[PacketRecord],
        predictions: np.ndarray,
        min_flagged: int = 10,
    ) -> int:
        """Blocklist sources that dominate a flagged window.

        Returns the number of sources newly blocked.  Sources are only
        blocked when they account for several flagged packets, keeping
        single misclassifications from blocking a benign device.
        """
        if len(records) != len(predictions):
            raise ValueError("records and predictions misaligned")
        flagged: dict[int, int] = defaultdict(int)
        for record, prediction in zip(records, predictions):
            if prediction == 1:
                flagged[record.src_ip] += 1
        newly_blocked = 0
        expiry = self.node.sim.now + self.block_seconds
        for src, count in flagged.items():
            if count >= min_flagged and src != self.node.address.value:
                if self.block(src, expiry):
                    newly_blocked += 1
        return newly_blocked

    @property
    def active_blocks(self) -> int:
        now = self.node.sim.now
        return sum(1 for until in self.blocked_until.values() if until > now)


class UpstreamFilter:
    """Channel-tier ACL: the escalated form of the victim blocklist.

    Installed via :meth:`repro.sim.channel.CsmaChannel.set_traffic_filter`;
    the channel consults :meth:`should_drop` at dequeue time, so a
    filtered frame never occupies the wire — the simulated analogue of
    pushing an ACL from the victim to the access switch/router.  Only
    frames *to the victim* from blocked sources are dropped; the rest of
    the LAN is untouched.
    """

    def __init__(self, victim_ip: int) -> None:
        self.victim_ip = victim_ip
        self.blocked_until: dict[int, float] = {}
        self.ttl_grace = 0.0
        self.on_expire: Callable[[int, float], None] | None = None
        self.dropped = 0

    def block(self, src: int, until: float) -> bool:
        is_new = src not in self.blocked_until
        self.blocked_until[src] = until
        return is_new

    def unblock(self, src: int) -> bool:
        return self.blocked_until.pop(src, None) is not None

    def prune(self, now: float) -> list[tuple[int, float]]:
        expired = [
            (src, until)
            for src, until in self.blocked_until.items()
            if now >= until + self.ttl_grace
        ]
        for src, until in expired:
            del self.blocked_until[src]
            if self.on_expire is not None:
                self.on_expire(src, until)
        return expired

    def should_drop(self, frame: Packet, sender, now: float) -> bool:
        if frame.ip is None or frame.ip.dst.value != self.victim_ip:
            return False
        src = frame.ip.src.value
        until = self.blocked_until.get(src)
        if until is None:
            return False
        if now < until + self.ttl_grace:
            self.dropped += 1
            return True
        del self.blocked_until[src]
        if self.on_expire is not None:
            self.on_expire(src, until)
        return False

    def should_drop_batch(
        self, batch: PacketBatch, sender, now: float
    ) -> "np.ndarray | None":
        """Vectorized :meth:`should_drop` for a train; True rows drop.

        Matches the scalar path's lazy expiry: a blocked source whose
        TTL (+grace) has lapsed is expired — and reported via
        ``on_expire`` — only when one of its frames shows up, exactly as
        the per-frame check would.  Returns None when nothing drops.
        """
        if len(batch) == 0 or not self.blocked_until:
            return None
        to_victim = batch.dst_ip == self.victim_ip
        if not bool(to_victim.any()):
            return None
        live: list[int] = []
        for src in np.unique(batch.src_ip[to_victim]).tolist():
            until = self.blocked_until.get(src)
            if until is None:
                continue
            if now < until + self.ttl_grace:
                live.append(src)
            else:
                del self.blocked_until[src]
                if self.on_expire is not None:
                    self.on_expire(src, until)
        if not live:
            return None
        mask = to_victim & np.isin(batch.src_ip, np.asarray(live, dtype=np.int64))
        self.dropped += int(mask.sum())
        return mask

    @property
    def active_blocks(self) -> int:
        return len(self.blocked_until)


@dataclass(frozen=True)
class MitigationPlan:
    """Defended-run configuration, attached to a Scenario.

    ``mode="monitor"`` deploys the live IDS tap and victim impact
    monitoring *without* any filtering — the measured undefended
    baseline that defended runs are compared against.  ``upstream_after``
    counts flagged windows before a source is escalated from the victim
    blocklist to the LAN-tier :class:`UpstreamFilter`.
    """

    model: str = "K-Means"
    mode: str = "mitigate"  # "mitigate" | "monitor"
    block_seconds: float = 20.0
    min_flagged: int = 10
    syn_rate_limit: float = 200.0
    syn_burst: float = 400.0
    syn_cookies: bool = True
    syn_cookie_threshold: float = 0.5
    upstream_filter: bool = True
    upstream_after: int = 5
    fallback_staleness: float = 15.0

    def __post_init__(self) -> None:
        if self.mode not in ("mitigate", "monitor"):
            raise ValueError(f"mode must be 'mitigate' or 'monitor', got {self.mode!r}")
        if self.block_seconds <= 0:
            raise ValueError("block_seconds must be positive")
        if self.min_flagged < 1:
            raise ValueError("min_flagged must be >= 1")
        if self.syn_rate_limit <= 0 or self.syn_burst <= 0:
            raise ValueError("SYN rate limit and burst must be positive")
        if not 0 < self.syn_cookie_threshold <= 1:
            raise ValueError("syn_cookie_threshold must be in (0, 1]")
        if self.upstream_after < 1:
            raise ValueError("upstream_after must be >= 1")
        if self.fallback_staleness < 0:
            raise ValueError("fallback_staleness must be non-negative")

    def to_dict(self) -> dict:
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "MitigationPlan":
        known = {spec.name for spec in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown MitigationPlan field(s): {sorted(unknown)}")
        return cls(**payload)


@dataclass(frozen=True)
class MitigationEvent:
    """One mitigation state transition (always recorded, even obs-off)."""

    time: float
    action: str
    detail: str = ""
    value: float = 1.0

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "action": self.action,
            "detail": self.detail,
            "value": self.value,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MitigationEvent":
        return cls(**payload)


@dataclass(frozen=True)
class RecoveryMetrics:
    """Victim-side effectiveness of a defended (or monitor) run.

    * ``goodput_retained_pct`` — mean benign goodput during attack spans
      as a percentage of the clean-period baseline;
    * ``time_to_mitigate`` — median seconds from attack start to the
      first block/escalation (None when nothing was mitigated);
    * ``time_to_recovery`` — median seconds from the first goodput dip
      below ``recovery_fraction × baseline`` back above it (0.0 when
      goodput never dipped);
    * ``collateral_block_rate`` — fraction of blocked sources that were
      never attack participants (benign collateral damage).
    """

    goodput_retained_pct: float
    time_to_mitigate: float | None
    time_to_recovery: float | None
    collateral_block_rate: float
    blocked_sources: int
    collateral_blocks: int
    baseline_goodput: float
    attack_goodput: float

    def to_dict(self) -> dict:
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "RecoveryMetrics":
        return cls(**payload)

    def rows(self) -> list[tuple[str, str]]:
        fmt = lambda v: "n/a" if v is None else f"{v:.2f}s"  # noqa: E731
        return [
            ("goodput retained", f"{self.goodput_retained_pct:.1f}%"),
            ("time to mitigate", fmt(self.time_to_mitigate)),
            ("time to recovery", fmt(self.time_to_recovery)),
            ("collateral block rate", f"{self.collateral_block_rate:.2f}"),
            ("blocked sources", str(self.blocked_sources)),
            ("baseline goodput", f"{self.baseline_goodput:.0f} B/s"),
            ("attack goodput", f"{self.attack_goodput:.0f} B/s"),
        ]


def _median(values: list[float]) -> float | None:
    if not values:
        return None
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def compute_recovery_metrics(
    series: "ImpactSeries",
    events: list[MitigationEvent],
    attack_spans: list[tuple[float, float]],
    malicious_srcs: set[int],
    blocked_srcs: set[int],
    recovery_fraction: float = 0.5,
) -> RecoveryMetrics:
    """Fold an impact series + mitigation events into :class:`RecoveryMetrics`."""

    def in_attack(t: float) -> bool:
        return any(start <= t < end for start, end in attack_spans)

    samples = list(series.samples)
    clean = [s.goodput_bytes for s in samples if not in_attack(s.time)]
    hot = [s.goodput_bytes for s in samples if in_attack(s.time)]
    baseline = float(np.mean(clean)) if clean else 0.0
    attack_goodput = float(np.mean(hot)) if hot else 0.0
    retained = 100.0 * attack_goodput / baseline if baseline > 0 else 0.0

    mitigations = [e for e in events if e.action in ("block", "reblock", "escalate")]
    to_mitigate = []
    for start, end in attack_spans:
        deltas = [e.time - start for e in mitigations if start <= e.time <= end + 5.0]
        if deltas:
            to_mitigate.append(min(deltas))

    floor = recovery_fraction * baseline
    to_recovery = []
    for start, end in attack_spans:
        dipped_at = None
        recovered = None
        for sample in samples:
            if sample.time < start:
                continue
            if dipped_at is None:
                if sample.time >= end + 2.0:
                    break  # never dipped during this span
                if sample.goodput_bytes < floor:
                    dipped_at = sample.time
            elif sample.goodput_bytes >= floor:
                recovered = sample.time - dipped_at
                break
        if dipped_at is None:
            to_recovery.append(0.0)
        elif recovered is not None:
            to_recovery.append(recovered)

    collateral = blocked_srcs - malicious_srcs
    rate = len(collateral) / len(blocked_srcs) if blocked_srcs else 0.0
    return RecoveryMetrics(
        goodput_retained_pct=retained,
        time_to_mitigate=_median(to_mitigate),
        time_to_recovery=_median(to_recovery),
        collateral_block_rate=rate,
        blocked_sources=len(blocked_srcs),
        collateral_blocks=len(collateral),
        baseline_goodput=baseline,
        attack_goodput=attack_goodput,
    )


class MitigationController:
    """Drives the fault-tolerant detect → mitigate → recover loop.

    Subscribes to live IDS window verdicts and maintains the victim
    blocklist plus the LAN-tier upstream ACL.  Supervisor events for the
    IDS container and fault-injector partition events feed the fallback
    state machine: while the IDS is down the filters hold their
    last-known policy with bounded staleness (``ttl_grace``); when it
    comes back, stale entries are pruned and a ``resync`` is recorded.

    Events are kept on the controller itself (:attr:`events`) so
    defended runs stay byte-for-byte comparable even with telemetry
    disabled; they are mirrored into :mod:`repro.obs` as
    ``mitigation.<action>`` when a scope is active.
    """

    def __init__(
        self,
        plan: MitigationPlan,
        sim: "Simulator",
        victim: "Node",
        ids: "RealTimeIds",
        filter_: BlocklistFilter | None = None,
        upstream: UpstreamFilter | None = None,
        ids_container: str = "ids",
    ) -> None:
        self.plan = plan
        self.sim = sim
        self.victim = victim
        self.ids = ids
        self.filter = filter_
        self.upstream = upstream
        self.ids_container = ids_container
        self.events: list[MitigationEvent] = []
        self.blocks_issued = 0
        self.unblocks = 0
        self.fallback_entries = 0
        self.blocked_ever: set[int] = set()
        self.malicious_srcs: set[int] = set()
        self._offenses: dict[int, int] = defaultdict(int)
        self._fallback_reasons: set[str] = set()
        self._obs_events = obs.current().events
        ids.add_window_listener(self._on_window)
        if filter_ is not None:
            filter_.on_expire = self._victim_expired
        if upstream is not None:
            upstream.on_expire = self._upstream_expired

    # ------------------------------------------------------------------
    # Event plumbing

    def _emit(self, time: float, action: str, detail: str = "", value: float = 1.0) -> None:
        self.events.append(MitigationEvent(time, action, detail, value))
        self._obs_events.record(time, f"mitigation.{action}", detail=detail, value=value)

    def _victim_expired(self, src: int, until: float) -> None:
        self._emit(until, "expire", detail=_fmt_ip(src))

    def _upstream_expired(self, src: int, until: float) -> None:
        self._emit(until, "expire.upstream", detail=_fmt_ip(src))

    @property
    def in_fallback(self) -> bool:
        return bool(self._fallback_reasons)

    # ------------------------------------------------------------------
    # IDS verdicts → filter policy

    def _on_window(self, index: int, records, predictions, status: str) -> None:
        now = self.sim.now
        victim_ip = self.victim.address.value
        preds = np.asarray(predictions)
        flagged: dict[int, int] = defaultdict(int)
        seen: dict[int, int] = defaultdict(int)
        for record, pred in zip(records, preds):
            seen[record.src_ip] += 1
            if pred == 1:
                flagged[record.src_ip] += 1
            if record.label == 1:
                self.malicious_srcs.add(record.src_ip)
        offenders = sorted(
            src
            for src, count in flagged.items()
            if count >= self.plan.min_flagged and src != victim_ip
        )
        if offenders:
            self._emit(now, "verdict", detail=f"window={index}", value=float(len(offenders)))
        if self.filter is None:
            return  # monitor mode: measure, never filter
        until = now + self.plan.block_seconds
        for src in offenders:
            self._offenses[src] += 1
            if self.filter.block(src, until):
                action = "block" if src not in self.blocked_ever else "reblock"
                self.blocked_ever.add(src)
                self.blocks_issued += 1
                self._emit(now, action, detail=_fmt_ip(src))
            if self.upstream is not None and self._offenses[src] >= self.plan.upstream_after:
                if self.upstream.block(src, until):
                    self._emit(now, "escalate", detail=_fmt_ip(src))
        # False-positive recovery: a blocked source with a full window of
        # clean evidence is released early (and its offense slate wiped).
        for src in sorted(self.filter.blocked_until):
            if flagged.get(src, 0) == 0 and seen.get(src, 0) >= self.plan.min_flagged:
                self.filter.unblock(src)
                if self.upstream is not None:
                    self.upstream.unblock(src)
                self._offenses[src] = 0
                self.unblocks += 1
                self._emit(now, "unblock", detail=_fmt_ip(src))

    # ------------------------------------------------------------------
    # Fault tolerance: fallback state machine

    def on_supervisor_event(self, event: "SupervisorEvent") -> None:
        if event.container != self.ids_container:
            return
        if event.action in ("kill", "exit", "unhealthy"):
            self._enter_fallback("container", event.time)
        elif event.action == "restart":
            self._leave_fallback("container", event.time)

    def on_fault_event(self, event: "FaultEvent") -> None:
        if event.kind != "partition":
            return
        targets = set(event.targets)
        if self.ids_container not in targets and _ALL_TARGETS not in targets:
            return
        if event.action == "partition":
            self._enter_fallback("link", event.time)
        elif event.action == "heal":
            self._leave_fallback("link", event.time)

    def _enter_fallback(self, reason: str, time: float) -> None:
        entering = not self._fallback_reasons
        self._fallback_reasons.add(reason)
        if not entering:
            return
        self.fallback_entries += 1
        grace = self.plan.fallback_staleness
        if self.filter is not None:
            self.filter.ttl_grace = grace
        if self.upstream is not None:
            self.upstream.ttl_grace = grace
        self._emit(time, "fallback.enter", detail=reason)

    def _leave_fallback(self, reason: str, time: float) -> None:
        if reason not in self._fallback_reasons:
            return
        self._fallback_reasons.discard(reason)
        if self._fallback_reasons:
            return
        stale = 0
        if self.filter is not None:
            self.filter.ttl_grace = 0.0
            stale += len(self.filter.prune(time))
        if self.upstream is not None:
            self.upstream.ttl_grace = 0.0
            stale += len(self.upstream.prune(time))
        self._emit(time, "fallback.exit", detail=reason)
        self._emit(time, "resync", detail=f"stale={stale}", value=float(stale))

    # ------------------------------------------------------------------
    # Teardown / reporting

    def finish(self) -> None:
        """Flush lazy expiries so the event log covers the full run."""
        now = self.sim.now
        if self.filter is not None:
            self.filter.prune(now)
        if self.upstream is not None:
            self.upstream.prune(now)

    def summary(self) -> dict:
        cookies_sent = sum(
            getattr(listener, "syn_cookies_sent", 0)
            for listener in self.victim.tcp.listeners.values()
        )
        cookies_rejected = sum(
            getattr(listener, "syn_cookies_rejected", 0)
            for listener in self.victim.tcp.listeners.values()
        )
        return {
            "mode": self.plan.mode,
            "blocks_issued": self.blocks_issued,
            "unblocks": self.unblocks,
            "fallback_entries": self.fallback_entries,
            "blocked_sources": sorted(self.blocked_ever),
            "malicious_sources": len(self.malicious_srcs),
            "dropped_by_blocklist": self.filter.dropped_by_blocklist if self.filter else 0,
            "dropped_by_rate_limit": self.filter.dropped_by_rate_limit if self.filter else 0,
            "passed_established": self.filter.passed_established if self.filter else 0,
            "dropped_upstream": self.upstream.dropped if self.upstream else 0,
            "syn_cookies_sent": cookies_sent,
            "syn_cookies_rejected": cookies_rejected,
            "events": len(self.events),
        }


class MitigatingIds:
    """Couples a :class:`~repro.ids.engine.RealTimeIds` to a filter.

    Every completed window's predictions are forwarded to the victim's
    blocklist filter, closing the detect→mitigate loop in real time.
    Thin manual-wiring variant of :class:`MitigationController` (which
    adds escalation, fallback, and event logging).
    """

    def __init__(self, ids: "RealTimeIds", filter_: BlocklistFilter) -> None:
        self.ids = ids
        self.filter = filter_
        self.blocks_issued = 0
        ids.add_window_listener(self._on_window)

    def _on_window(self, index: int, records, predictions, status: str) -> None:
        preds = np.asarray(predictions)
        if int(preds.sum()) > 0:
            self.blocks_issued += self.filter.apply_window_verdict(records, preds)
