"""Sustainability metering: CPU %, occupied memory, and model size.

Table II's three metrics, measured for real:

* **CPU %** — actual ``time.process_time`` consumed by the IDS's
  per-window compute (feature extraction + scaling + inference), expressed
  as utilisation of an IoT-class CPU budget.  The paper measures the IDS
  container on a laptop; our equivalent models the IDS host as a core
  ``IOT_CPU_SCALE`` times slower than the benchmark machine, so
  ``cpu% = 100 * host_cpu_seconds / (window_seconds * IOT_CPU_SCALE)``.
  The scale constant is documented, not hidden, and the *relative* CPU
  cost across models — which is what the table compares — does not depend
  on it.
* **Memory (Kb)** — real ``tracemalloc`` peak allocation during a
  window's detection compute, averaged over windows (the working set the
  detection step occupies on top of the resident model).
* **Model size (Kb)** — real pickled size of the trained model (the
  paper's PKL file).

The meter is backed by :mod:`repro.obs` instruments rather than a private
struct: its measurements live in a meter-owned registry (so Table II math
is exact per run) and, when an ambient telemetry scope is active, are
mirrored into it under the same names — ``ids.cpu_seconds``,
``ids.window_peak_memory_bytes``, ``ids.windows_measured`` — labeled by
model.  CPU and memory are wall-clock-derived and registered with
``wall=True`` so deterministic snapshots exclude them.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass

from repro import obs
from repro.obs.registry import MetricsRegistry, NULL_INSTRUMENT

#: How many times slower than the benchmark host an IoT-class core is.
#: 1 host-CPU-millisecond per 1 s window ≈ 2.5% IoT CPU at this scale.
IOT_CPU_SCALE = 0.04

#: Active power draw of an IoT-class SoC core (W).  Used for the §VI
#: Green-AI energy estimates: energy = IoT-CPU-seconds × IOT_WATTS.
IOT_WATTS = 2.5

#: Peak-allocation histogram buckets in bytes (10 KB .. 100 MB).
MEMORY_BUCKETS: tuple[float, ...] = (
    1e4, 5e4, 1e5, 5e5, 1e6, 5e6, 1e7, 5e7, 1e8,
)


@dataclass(frozen=True)
class SustainabilityMetrics:
    """One model's Table II row, plus the §VI Green-AI energy estimate."""

    cpu_percent: float
    memory_kb: float
    model_size_kb: float
    energy_mj_per_window: float = 0.0

    def __str__(self) -> str:
        return (
            f"cpu {self.cpu_percent:.2f}% | mem {self.memory_kb:.2f} Kb | "
            f"model {self.model_size_kb:.2f} Kb | "
            f"{self.energy_mj_per_window:.1f} mJ/window"
        )

    def to_dict(self) -> dict:
        """JSON-serializable form (pipeline report artifacts)."""
        return {
            "cpu_percent": self.cpu_percent,
            "memory_kb": self.memory_kb,
            "model_size_kb": self.model_size_kb,
            "energy_mj_per_window": self.energy_mj_per_window,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SustainabilityMetrics":
        """Rebuild metrics from :meth:`to_dict`."""
        return cls(**payload)


class ResourceMeter:
    """Accumulates per-window CPU and peak-memory measurements.

    ``model`` labels the mirrored ambient metrics so one telemetry scope
    can hold several models' meters side by side.
    """

    def __init__(
        self,
        window_seconds: float,
        iot_cpu_scale: float = IOT_CPU_SCALE,
        model: str = "",
    ) -> None:
        if window_seconds <= 0:
            raise ValueError(f"window_seconds must be positive, got {window_seconds}")
        self.window_seconds = window_seconds
        self.iot_cpu_scale = iot_cpu_scale
        self.model = model
        # Meter-owned instruments: exact per-run accounting.
        self._registry = MetricsRegistry(enabled=True)
        self._cpu = self._registry.counter("ids.cpu_seconds", wall=True)
        self._memory = self._registry.histogram(
            "ids.window_peak_memory_bytes", buckets=MEMORY_BUCKETS, wall=True
        )
        self._windows = self._registry.counter("ids.windows_measured")
        # Ambient mirrors: null objects unless a telemetry scope is active.
        ctx = obs.current()
        if ctx.enabled:
            labels = {"model": model} if model else {}
            self._pub_cpu = ctx.registry.counter("ids.cpu_seconds", wall=True, **labels)
            self._pub_memory = ctx.registry.histogram(
                "ids.window_peak_memory_bytes", buckets=MEMORY_BUCKETS, wall=True, **labels
            )
            self._pub_windows = ctx.registry.counter("ids.windows_measured", **labels)
        else:
            self._pub_cpu = NULL_INSTRUMENT
            self._pub_memory = NULL_INSTRUMENT
            self._pub_windows = NULL_INSTRUMENT
        self._cpu_start: float | None = None
        self._tracing = False

    def start_window(self) -> None:
        """Begin measuring one window's detection compute."""
        self._tracing = not tracemalloc.is_tracing()
        if self._tracing:
            tracemalloc.start()
        tracemalloc.reset_peak() if tracemalloc.is_tracing() else None
        self._cpu_start = time.process_time()

    def end_window(self) -> None:
        """Finish measuring; accumulates CPU seconds and peak bytes."""
        if self._cpu_start is None:
            raise RuntimeError("end_window() without start_window()")
        elapsed = time.process_time() - self._cpu_start
        self._cpu.inc(elapsed)
        self._pub_cpu.inc(elapsed)
        self._cpu_start = None
        if tracemalloc.is_tracing():
            _, peak = tracemalloc.get_traced_memory()
            self._memory.observe(peak)
            self._pub_memory.observe(peak)
            if self._tracing:
                tracemalloc.stop()
        self._windows.inc()
        self._pub_windows.inc()

    @property
    def cpu_seconds_total(self) -> float:
        """Host CPU seconds consumed by detection compute so far."""
        return self._cpu.value

    @property
    def windows_measured(self) -> int:
        """Number of windows measured so far."""
        return int(self._windows.value)

    @property
    def cpu_percent(self) -> float:
        """Mean IoT-budget utilisation across measured windows."""
        if self.windows_measured == 0:
            return 0.0
        budget = self.windows_measured * self.window_seconds * self.iot_cpu_scale
        return 100.0 * self.cpu_seconds_total / budget

    @property
    def memory_kb(self) -> float:
        """Mean per-window peak allocation in Kb."""
        return self._memory.mean / 1000.0

    @property
    def energy_mj_per_window(self) -> float:
        """Mean detection energy per window on an IoT-class core (mJ)."""
        if self.windows_measured == 0:
            return 0.0
        iot_cpu_seconds = self.cpu_seconds_total / self.iot_cpu_scale
        return 1000.0 * iot_cpu_seconds * IOT_WATTS / self.windows_measured

    def finalize(self, model_size_kb: float) -> SustainabilityMetrics:
        """Produce the Table II row for this run."""
        return SustainabilityMetrics(
            cpu_percent=self.cpu_percent,
            memory_kb=self.memory_kb,
            model_size_kb=model_size_kb,
            energy_mj_per_window=self.energy_mj_per_window,
        )
