"""Stages 2-3 of the IDS: preprocessing and attack identification.

:class:`RealTimeIds` wires the pipeline of the paper's Figure 2: packets
stream in from a :class:`~repro.ids.monitor.TrafficMonitor`, a
:class:`~repro.features.window.WindowAggregator` closes each time window,
the :class:`~repro.features.pipeline.FeatureExtractor` computes basic +
statistical features, the scaler normalises them, the trained model
classifies every packet, and the per-window accuracy against ground
truth is recorded (the paper's real-time metric).  Resource use of each
window's compute is metered for Table II.
"""

from __future__ import annotations

import math
from typing import Protocol, Sequence

import numpy as np

from repro import obs
from repro.features.columnar import RecordBatch
from repro.features.pipeline import FeatureExtractor
from repro.features.window import WindowAggregator
from repro.ids.meter import ResourceMeter
from repro.ids.monitor import TrafficMonitor
from repro.ids.report import (
    STATUS_DEGRADED,
    STATUS_HEALTHY,
    DetectionReport,
    WindowResult,
)
from repro.ml.serialization import model_size_kb
from repro.sim.tracing import PacketRecord


class Classifier(Protocol):
    """Anything with a ``predict(X) -> labels`` method."""

    def predict(self, X: np.ndarray) -> np.ndarray: ...


class Scaler(Protocol):
    def transform(self, X: np.ndarray) -> np.ndarray: ...


class _IdentityScaler:
    def transform(self, X: np.ndarray) -> np.ndarray:
        return X


class RealTimeIds:
    """The real-time detection loop for one trained model."""

    def __init__(
        self,
        model: Classifier,
        model_name: str,
        extractor: FeatureExtractor | None = None,
        scaler: Scaler | None = None,
        window_seconds: float = 1.0,
        meter: ResourceMeter | None = None,
    ) -> None:
        self.model = model
        self.model_name = model_name
        self.extractor = extractor or FeatureExtractor(window_seconds=window_seconds)
        self.scaler = scaler or _IdentityScaler()
        self.window_seconds = window_seconds
        self.meter = meter or ResourceMeter(window_seconds, model=model_name)
        self.monitor = TrafficMonitor(self._on_record)
        ctx = obs.current()
        self._obs_events = ctx.events
        self._obs_errors = ctx.registry.counter(
            "ids.classifier_errors", model=model_name
        )
        # Late-bound dispatch so wrappers (e.g. MitigatingIds) can hook
        # the per-window handler after construction.
        self._aggregator = WindowAggregator(
            window_seconds, lambda index, records: self._on_window(index, records)
        )
        self.report = DetectionReport(model_name)
        self.alerts: list[tuple[float, int]] = []  # (window start, n flagged)
        self.window_listeners: list = []
        self.classifier_errors = 0
        self._last_index: int | None = None
        self._degraded_intervals: list[tuple[float, float]] = []

    # ------------------------------------------------------------------
    # Fault awareness

    def add_window_listener(self, listener) -> None:
        """Subscribe ``listener(index, records, predictions, status)``.

        Called after every *scored* window (outage gap-fill windows carry
        no records, hence no verdict to act on).  This is how mitigation
        couples to detection without monkey-patching the window handler.
        """
        self.window_listeners.append(listener)

    def mark_degraded(self, start: float, stop: float) -> None:
        """Declare [start, stop) a fault interval (partition, restart).

        Windows overlapping a declared interval are scored with a
        ``degraded`` verdict so the report can separate accuracy under
        faults from accuracy on healthy traffic.
        """
        if stop <= start:
            raise ValueError(f"degraded interval must have stop > start, got {start}..{stop}")
        self._degraded_intervals.append((start, stop))

    def _window_degraded(self, index: int) -> bool:
        start = index * self.window_seconds
        stop = start + self.window_seconds
        return any(s < stop and e > start for s, e in self._degraded_intervals)

    def _emit_outage(self, index: int) -> None:
        """Record a window the IDS saw nothing in — an explicit degraded
        verdict rather than a silent gap in the report."""
        self.report.windows.append(
            WindowResult(
                window_index=index,
                start_time=index * self.window_seconds,
                n_packets=0,
                n_malicious_true=0,
                n_malicious_predicted=0,
                accuracy=0.0,
                status=STATUS_DEGRADED,
            )
        )

    # ------------------------------------------------------------------
    # Pipeline

    def _on_record(self, record: PacketRecord) -> None:
        self._aggregator.add(record)

    def _on_window(self, index: int, records: list[PacketRecord]) -> None:
        # Fill interior gaps: the aggregator only emits non-empty windows,
        # so missing indices mean the tap went blind (partition / restart).
        if self._last_index is not None:
            for missing in range(self._last_index + 1, index):
                self._emit_outage(missing)
        self._last_index = index
        if not records:
            self._emit_outage(index)
            return
        batch = RecordBatch.from_records(records)
        labels = batch.label.astype(int)
        status = STATUS_DEGRADED if self._window_degraded(index) else STATUS_HEALTHY
        self.meter.start_window()
        try:
            X = self.extractor.transform_window(batch)
            X = self.scaler.transform(X)
            predictions = np.asarray(self.model.predict(X), dtype=int)
        except Exception:
            # Classifier/pipeline failure mid-run: degrade the window
            # instead of taking the whole IDS down with it.
            self.classifier_errors += 1
            self._obs_errors.inc()
            predictions = np.zeros(len(records), dtype=int)
            status = STATUS_DEGRADED
        finally:
            self.meter.end_window()
        accuracy = float(np.mean(predictions == labels))
        start_time = index * self.window_seconds
        flagged = int(predictions.sum())
        if flagged:
            self.alerts.append((start_time, flagged))
        self._obs_events.record(
            start_time, "ids.window", detail=self.model_name, value=accuracy
        )
        self.report.windows.append(
            WindowResult(
                window_index=index,
                start_time=start_time,
                n_packets=len(records),
                n_malicious_true=int(labels.sum()),
                n_malicious_predicted=flagged,
                accuracy=accuracy,
                status=status,
            )
        )
        for listener in list(self.window_listeners):
            listener(index, records, predictions, status)

    def process(
        self, records: Sequence[PacketRecord], until: float | None = None
    ) -> DetectionReport:
        """Run the full loop over a recorded stream and finish.

        ``until`` extends degraded-outage accounting to the capture's
        nominal end time: trailing windows the tap never saw (e.g. a
        partition running past the last packet) get explicit verdicts.
        """
        self.monitor.replay(records)
        return self.finish(until=until)

    @property
    def records_reordered(self) -> int:
        """Out-of-order records the aggregator sorted into their true window."""
        return self._aggregator.records_reordered

    @property
    def records_dropped_late(self) -> int:
        """Records dropped because their window had already been emitted."""
        return self._aggregator.records_dropped_late

    def finish(self, until: float | None = None) -> DetectionReport:
        """Flush the final partial window and attach sustainability.

        With ``until`` given, every window in ``[0, until)`` the tap
        never saw gets an explicit degraded verdict — including the
        trailing *partial* window (``until`` lands mid-window) and the
        total-blackout case where the IDS saw no packets at all.
        """
        self._aggregator.flush()
        if until is not None:
            # Ceil with a small tolerance: until exactly on a window
            # boundary (even when the float product lands a hair above
            # it) must not conjure an extra empty window, while any
            # genuinely live partial window must get a verdict.
            final_index = max(0, math.ceil(until / self.window_seconds - 1e-9))
            start = 0 if self._last_index is None else self._last_index + 1
            for missing in range(start, final_index):
                self._emit_outage(missing)
                self._last_index = missing
        self.report.sustainability = self.meter.finalize(model_size_kb(self.model))
        return self.report
