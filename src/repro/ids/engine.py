"""Stages 2-3 of the IDS: preprocessing and attack identification.

:class:`RealTimeIds` wires the pipeline of the paper's Figure 2: packets
stream in from a :class:`~repro.ids.monitor.TrafficMonitor`, a
:class:`~repro.features.window.WindowAggregator` closes each time window,
the :class:`~repro.features.pipeline.FeatureExtractor` computes basic +
statistical features, the scaler normalises them, the trained model
classifies every packet, and the per-window accuracy against ground
truth is recorded (the paper's real-time metric).  Resource use of each
window's compute is metered for Table II.
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from repro.features.pipeline import FeatureExtractor
from repro.features.window import WindowAggregator
from repro.ids.meter import ResourceMeter
from repro.ids.monitor import TrafficMonitor
from repro.ids.report import DetectionReport, WindowResult
from repro.ml.serialization import model_size_kb
from repro.sim.tracing import PacketRecord


class Classifier(Protocol):
    """Anything with a ``predict(X) -> labels`` method."""

    def predict(self, X: np.ndarray) -> np.ndarray: ...


class Scaler(Protocol):
    def transform(self, X: np.ndarray) -> np.ndarray: ...


class _IdentityScaler:
    def transform(self, X: np.ndarray) -> np.ndarray:
        return X


class RealTimeIds:
    """The real-time detection loop for one trained model."""

    def __init__(
        self,
        model: Classifier,
        model_name: str,
        extractor: FeatureExtractor | None = None,
        scaler: Scaler | None = None,
        window_seconds: float = 1.0,
        meter: ResourceMeter | None = None,
    ) -> None:
        self.model = model
        self.model_name = model_name
        self.extractor = extractor or FeatureExtractor(window_seconds=window_seconds)
        self.scaler = scaler or _IdentityScaler()
        self.window_seconds = window_seconds
        self.meter = meter or ResourceMeter(window_seconds)
        self.monitor = TrafficMonitor(self._on_record)
        # Late-bound dispatch so wrappers (e.g. MitigatingIds) can hook
        # the per-window handler after construction.
        self._aggregator = WindowAggregator(
            window_seconds, lambda index, records: self._on_window(index, records)
        )
        self.report = DetectionReport(model_name)
        self.alerts: list[tuple[float, int]] = []  # (window start, n flagged)

    def _on_record(self, record: PacketRecord) -> None:
        self._aggregator.add(record)

    def _on_window(self, index: int, records: list[PacketRecord]) -> None:
        self.meter.start_window()
        X = self.extractor.transform_window(records)
        X = self.scaler.transform(X)
        predictions = np.asarray(self.model.predict(X), dtype=int)
        self.meter.end_window()
        labels = np.array([r.label for r in records], dtype=int)
        accuracy = float(np.mean(predictions == labels))
        start_time = index * self.window_seconds
        flagged = int(predictions.sum())
        if flagged:
            self.alerts.append((start_time, flagged))
        self.report.windows.append(
            WindowResult(
                window_index=index,
                start_time=start_time,
                n_packets=len(records),
                n_malicious_true=int(labels.sum()),
                n_malicious_predicted=flagged,
                accuracy=accuracy,
            )
        )

    def process(self, records: Sequence[PacketRecord]) -> DetectionReport:
        """Run the full loop over a recorded stream and finish."""
        self.monitor.replay(records)
        return self.finish()

    def finish(self) -> DetectionReport:
        """Flush the final partial window and attach sustainability."""
        self._aggregator.flush()
        self.report.sustainability = self.meter.finalize(model_size_kb(self.model))
        return self.report
