"""The real-time IDS unit (Figure 2 of the paper).

Three stages, mirroring the paper's IDS component: real-time traffic
monitoring (:mod:`repro.ids.monitor` subscribes to the capture tap),
preprocessing (window aggregation + feature extraction + scaling), and
attack identification (the ML model).  :mod:`repro.ids.meter` measures
the CPU, memory, and model-size sustainability metrics of Table II, and
:mod:`repro.ids.report` holds the result dataclasses.
"""

from repro.ids.defense import (
    BlocklistFilter,
    MitigatingIds,
    MitigationController,
    MitigationEvent,
    MitigationPlan,
    RecoveryMetrics,
    TokenBucket,
    UpstreamFilter,
    compute_recovery_metrics,
)
from repro.ids.engine import RealTimeIds
from repro.ids.meter import IOT_CPU_SCALE, ResourceMeter, SustainabilityMetrics
from repro.ids.monitor import TrafficMonitor
from repro.ids.report import (
    STATUS_DEGRADED,
    STATUS_HEALTHY,
    DetectionReport,
    WindowResult,
)

__all__ = [
    "BlocklistFilter",
    "DetectionReport",
    "STATUS_DEGRADED",
    "STATUS_HEALTHY",
    "IOT_CPU_SCALE",
    "MitigatingIds",
    "MitigationController",
    "MitigationEvent",
    "MitigationPlan",
    "RealTimeIds",
    "RecoveryMetrics",
    "UpstreamFilter",
    "compute_recovery_metrics",
    "ResourceMeter",
    "SustainabilityMetrics",
    "TokenBucket",
    "TrafficMonitor",
    "WindowResult",
]
