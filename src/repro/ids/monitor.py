"""Stage 1 of the IDS: real-time traffic monitoring.

A :class:`TrafficMonitor` subscribes to the capture tap (a
:class:`~repro.sim.tracing.PacketProbe` on the LAN) and forwards records
into the IDS's window aggregator.  It can also replay a recorded capture
— useful for evaluating several models against the *same* live stream,
which is how the benchmark harness compares RF / K-Means / CNN fairly.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.sim.tracing import PacketProbe, PacketRecord


class TrafficMonitor:
    """Feeds live or recorded packet streams into a sink."""

    def __init__(self, sink: Callable[[PacketRecord], None]) -> None:
        self.sink = sink
        self.packets_seen = 0
        self._attached_probe: PacketProbe | None = None

    def attach(self, probe: PacketProbe) -> None:
        """Subscribe to a live capture tap."""
        probe.subscribe(self._on_record)
        self._attached_probe = probe

    def replay(self, records: Iterable[PacketRecord]) -> None:
        """Stream a recorded capture through the sink in order."""
        for record in records:
            self._on_record(record)

    def _on_record(self, record: PacketRecord) -> None:
        self.packets_seen += 1
        self.sink(record)
