"""Result dataclasses for real-time detection runs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ids.meter import SustainabilityMetrics


#: Window verdict statuses.  ``healthy`` windows saw normal traffic;
#: ``degraded`` windows overlap a fault (partition, container crash,
#: classifier failure) or were empty/missing entirely.
STATUS_HEALTHY = "healthy"
STATUS_DEGRADED = "degraded"


@dataclass(frozen=True)
class WindowResult:
    """One time window's detection outcome."""

    window_index: int
    start_time: float
    n_packets: int
    n_malicious_true: int
    n_malicious_predicted: int
    accuracy: float
    status: str = STATUS_HEALTHY

    @property
    def is_pure_benign(self) -> bool:
        return self.n_malicious_true == 0

    @property
    def is_pure_malicious(self) -> bool:
        return self.n_malicious_true == self.n_packets

    @property
    def is_degraded(self) -> bool:
        return self.status == STATUS_DEGRADED

    @property
    def scored(self) -> bool:
        """Whether accuracy is meaningful (the window held packets)."""
        return self.n_packets > 0

    def to_dict(self) -> dict:
        """JSON-serializable form (pipeline report artifacts)."""
        return {
            "window_index": self.window_index,
            "start_time": self.start_time,
            "n_packets": self.n_packets,
            "n_malicious_true": self.n_malicious_true,
            "n_malicious_predicted": self.n_malicious_predicted,
            "accuracy": self.accuracy,
            "status": self.status,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "WindowResult":
        """Rebuild a window result from :meth:`to_dict`."""
        return cls(**payload)


@dataclass
class DetectionReport:
    """A full real-time detection run for one model (Table I row + extras)."""

    model_name: str
    windows: list[WindowResult] = field(default_factory=list)
    sustainability: SustainabilityMetrics | None = None

    @property
    def mean_accuracy(self) -> float:
        """The paper's headline metric: mean of per-window accuracies.

        Only *scored* windows (those holding packets) contribute; empty
        degraded verdicts emitted during partitions/restarts record the
        outage without deflating the classifier's score.
        """
        scored = [w for w in self.windows if w.scored]
        if not scored:
            return 0.0
        return sum(w.accuracy for w in scored) / len(scored)

    @property
    def min_accuracy(self) -> float:
        """Worst single scored window (the paper reports a 35% minimum)."""
        scored = [w for w in self.windows if w.scored]
        if not scored:
            return 0.0
        return min(w.accuracy for w in scored)

    @property
    def packet_accuracy(self) -> float:
        """Packet-weighted accuracy over the whole run."""
        total = sum(w.n_packets for w in self.windows)
        if total == 0:
            return 0.0
        correct = sum(w.accuracy * w.n_packets for w in self.windows)
        return correct / total

    @property
    def n_windows(self) -> int:
        return len(self.windows)

    # ------------------------------------------------------------------
    # Fault-aware breakdown

    @property
    def healthy_windows(self) -> list[WindowResult]:
        return [w for w in self.windows if not w.is_degraded]

    @property
    def degraded_windows(self) -> list[WindowResult]:
        return [w for w in self.windows if w.is_degraded]

    @property
    def n_degraded(self) -> int:
        return len(self.degraded_windows)

    @property
    def healthy_accuracy(self) -> float:
        """Mean accuracy over scored windows unaffected by faults."""
        scored = [w for w in self.healthy_windows if w.scored]
        if not scored:
            return 0.0
        return sum(w.accuracy for w in scored) / len(scored)

    @property
    def degraded_accuracy(self) -> float:
        """Mean accuracy over scored windows that overlapped a fault."""
        scored = [w for w in self.degraded_windows if w.scored]
        if not scored:
            return 0.0
        return sum(w.accuracy for w in scored) / len(scored)

    @property
    def availability(self) -> float:
        """Fraction of windows with a healthy verdict (1.0 on clean runs)."""
        if not self.windows:
            return 0.0
        return len(self.healthy_windows) / len(self.windows)

    def fault_breakdown(self) -> dict[str, float]:
        """The fault-aware accuracy summary printed by ``ddoshield faults``."""
        degraded = self.degraded_windows
        return {
            "n_windows": float(self.n_windows),
            "n_degraded": float(len(degraded)),
            "n_outage": float(sum(1 for w in degraded if not w.scored)),
            "availability": self.availability,
            "healthy_accuracy": self.healthy_accuracy,
            "degraded_accuracy": self.degraded_accuracy,
        }

    def accuracy_series(self) -> list[tuple[float, float]]:
        """(window start time, accuracy) pairs — the per-second trace."""
        return [(w.start_time, w.accuracy) for w in self.windows]

    def per_second_accuracy(self, bucket_seconds: float = 1.0) -> list[dict]:
        """Packet-weighted verdict-vs-truth accuracy per time bucket.

        Groups scored windows by ``start_time // bucket_seconds`` and
        weights each window's accuracy by its packet count, so buckets
        that straddle an attack edge show the boundary dip the paper
        reports (the "first and last second of an attack").  Returns one
        ``{"second", "accuracy", "n_packets", "n_windows"}`` dict per
        non-empty bucket, in time order; buckets holding only unscored
        (empty/outage) windows are omitted.
        """
        if bucket_seconds <= 0:
            raise ValueError(f"bucket_seconds must be positive, got {bucket_seconds}")
        packets: dict[int, int] = {}
        weighted: dict[int, float] = {}
        windows: dict[int, int] = {}
        for w in self.windows:
            if not w.scored:
                continue
            bucket = int(w.start_time // bucket_seconds)
            packets[bucket] = packets.get(bucket, 0) + w.n_packets
            weighted[bucket] = weighted.get(bucket, 0.0) + w.accuracy * w.n_packets
            windows[bucket] = windows.get(bucket, 0) + 1
        return [
            {
                "second": bucket * bucket_seconds,
                "accuracy": weighted[bucket] / packets[bucket],
                "n_packets": packets[bucket],
                "n_windows": windows[bucket],
            }
            for bucket in sorted(packets)
        ]

    def boundary_windows(self) -> list[WindowResult]:
        """Windows adjacent to a traffic-regime flip (attack edges).

        Includes both the last window of the outgoing regime and the
        first window of the incoming one — the paper's "first and the
        last second of an attack duration" where accuracy dips.
        """
        edges: list[WindowResult] = []
        previous: WindowResult | None = None
        for window in self.windows:
            if previous is not None and window.is_pure_benign != previous.is_pure_benign:
                if not edges or edges[-1] is not previous:
                    edges.append(previous)
                edges.append(window)
            previous = window
        return edges

    def to_dict(self) -> dict:
        """JSON-serializable form of the full run (pipeline artifacts)."""
        return {
            "model_name": self.model_name,
            "windows": [w.to_dict() for w in self.windows],
            "sustainability": (
                self.sustainability.to_dict() if self.sustainability is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DetectionReport":
        """Rebuild a report from :meth:`to_dict`."""
        sustainability = payload.get("sustainability")
        return cls(
            model_name=payload["model_name"],
            windows=[WindowResult.from_dict(w) for w in payload.get("windows", [])],
            sustainability=(
                SustainabilityMetrics.from_dict(sustainability)
                if sustainability is not None
                else None
            ),
        )

    def __str__(self) -> str:
        line = (
            f"{self.model_name}: mean accuracy {100 * self.mean_accuracy:.2f}% "
            f"over {self.n_windows} windows (min {100 * self.min_accuracy:.1f}%)"
        )
        if self.n_degraded:
            line += (
                f"; {self.n_degraded} degraded windows "
                f"(healthy {100 * self.healthy_accuracy:.2f}% / "
                f"degraded {100 * self.degraded_accuracy:.2f}%)"
            )
        if self.sustainability is not None:
            line += f"; {self.sustainability}"
        return line
