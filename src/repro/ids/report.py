"""Result dataclasses for real-time detection runs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ids.meter import SustainabilityMetrics


@dataclass(frozen=True)
class WindowResult:
    """One time window's detection outcome."""

    window_index: int
    start_time: float
    n_packets: int
    n_malicious_true: int
    n_malicious_predicted: int
    accuracy: float

    @property
    def is_pure_benign(self) -> bool:
        return self.n_malicious_true == 0

    @property
    def is_pure_malicious(self) -> bool:
        return self.n_malicious_true == self.n_packets


@dataclass
class DetectionReport:
    """A full real-time detection run for one model (Table I row + extras)."""

    model_name: str
    windows: list[WindowResult] = field(default_factory=list)
    sustainability: SustainabilityMetrics | None = None

    @property
    def mean_accuracy(self) -> float:
        """The paper's headline metric: mean of per-window accuracies."""
        if not self.windows:
            return 0.0
        return sum(w.accuracy for w in self.windows) / len(self.windows)

    @property
    def min_accuracy(self) -> float:
        """Worst single window (the paper reports a 35% minimum)."""
        if not self.windows:
            return 0.0
        return min(w.accuracy for w in self.windows)

    @property
    def packet_accuracy(self) -> float:
        """Packet-weighted accuracy over the whole run."""
        total = sum(w.n_packets for w in self.windows)
        if total == 0:
            return 0.0
        correct = sum(w.accuracy * w.n_packets for w in self.windows)
        return correct / total

    @property
    def n_windows(self) -> int:
        return len(self.windows)

    def accuracy_series(self) -> list[tuple[float, float]]:
        """(window start time, accuracy) pairs — the per-second trace."""
        return [(w.start_time, w.accuracy) for w in self.windows]

    def boundary_windows(self) -> list[WindowResult]:
        """Windows adjacent to a traffic-regime flip (attack edges).

        Includes both the last window of the outgoing regime and the
        first window of the incoming one — the paper's "first and the
        last second of an attack duration" where accuracy dips.
        """
        edges: list[WindowResult] = []
        previous: WindowResult | None = None
        for window in self.windows:
            if previous is not None and window.is_pure_benign != previous.is_pure_benign:
                if not edges or edges[-1] is not previous:
                    edges.append(previous)
                edges.append(window)
            previous = window
        return edges

    def __str__(self) -> str:
        line = (
            f"{self.model_name}: mean accuracy {100 * self.mean_accuracy:.2f}% "
            f"over {self.n_windows} windows (min {100 * self.min_accuracy:.1f}%)"
        )
        if self.sustainability is not None:
            line += f"; {self.sustainability}"
        return line
