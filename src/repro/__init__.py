"""DDoShield-IoT reproduction.

A from-scratch Python implementation of the DDoShield-IoT testbed
(De Vivo, Obaidat, Dai, Liguori - DSN 2024): a discrete-event network
simulator standing in for NS-3, a container-runtime emulation standing in
for Docker, a full Mirai botnet lifecycle, benign HTTP/FTP/RTMP traffic
generators, a packet-capture and feature-extraction pipeline, and
from-scratch ML detectors (Random Forest, U-K-Means, CNN, plus the
paper's future-work models) evaluated by a real-time IDS engine.

Quickstart::

    from repro.testbed import Scenario, Testbed

    scenario = Scenario(n_devices=6, seed=7)
    testbed = Testbed(scenario)
    dataset = testbed.generate_dataset(duration=30.0)
"""

__version__ = "1.0.0"
