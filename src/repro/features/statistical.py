"""Per-window statistical features.

Implements every statistic the paper's §IV-A walks through:

* packet counts per window (volume spikes/drops);
* Shannon entropy of destination-port usage (floods that spray random
  ports push entropy up; single-service floods push it down);
* frequency concentration of the most-used port;
* short-lived connection identification and repeated connection attempts;
* SYN-flags-without-corresponding-ACK counting (half-handshake scans and
  SYN floods);
* flow rates and TCP sequence-number variance;

plus *frequency-normalised* variants of the count statistics (each count
divided by the window's packet total).  The normalised view matters for
scale-sensitive models: distance- and gradient-based detectors consume
relative frequencies that stay in-distribution when the live attack rate
differs from the training rate, whereas raw counts are the literal
values the paper lists (and what threshold-splitting models train on).

All statistics are computed from one window's packets only, exactly as a
streaming IDS sees them, and are attached unchanged to every packet in
the window — the paper's design choice that causes the accuracy dips at
attack boundaries.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.sim.tracing import PacketRecord

#: The raw-count statistics of §IV-A (the paper's literal list).
PAPER_STATISTICAL_FEATURE_NAMES: tuple[str, ...] = (
    "pkt_count",
    "dport_entropy",
    "top_dport_fraction",
    "syn_count",
    "syn_without_ack",
    "short_lived_conns",
    "repeated_conn_attempts",
    "rst_count",
    "flow_rate",
    "seq_std",
)

#: Frequency-normalised view: scale-free structure of the same window.
NORMALIZED_STATISTICAL_FEATURE_NAMES: tuple[str, ...] = (
    "dport_entropy",
    "top_dport_fraction",
    "syn_ratio",
    "syn_without_ack_ratio",
    "short_lived_ratio",
    "repeated_conn_ratio",
    "rst_ratio",
    "ack_ratio",
    "udp_fraction",
    "seq_std",
)

#: Names of all computed window-statistic features, in column order.
STATISTICAL_FEATURE_NAMES: tuple[str, ...] = (
    "pkt_count",
    "byte_count",
    "mean_size",
    "std_size",
    "dport_entropy",
    "sport_entropy",
    "unique_src",
    "unique_dst_ports",
    "top_dport_fraction",
    "syn_count",
    "syn_ratio",
    "syn_without_ack",
    "syn_without_ack_ratio",
    "short_lived_conns",
    "short_lived_ratio",
    "repeated_conn_attempts",
    "repeated_conn_ratio",
    "rst_count",
    "rst_ratio",
    "ack_ratio",
    "flow_rate",
    "udp_fraction",
    "seq_std",
)

_RST_FLAG = 0x04


def shannon_entropy(counts: Sequence[int]) -> float:
    """Shannon entropy (bits) of a count distribution; 0 for empty input."""
    total = sum(counts)
    if total <= 0:
        return 0.0
    entropy = 0.0
    for count in counts:
        if count > 0:
            p = count / total
            entropy -= p * math.log2(p)
    return entropy


@dataclass(frozen=True)
class WindowStatistics:
    """The statistical feature values for one time window."""

    pkt_count: float
    byte_count: float
    mean_size: float
    std_size: float
    dport_entropy: float
    sport_entropy: float
    unique_src: float
    unique_dst_ports: float
    top_dport_fraction: float
    syn_count: float
    syn_ratio: float
    syn_without_ack: float
    syn_without_ack_ratio: float
    short_lived_conns: float
    short_lived_ratio: float
    repeated_conn_attempts: float
    repeated_conn_ratio: float
    rst_count: float
    rst_ratio: float
    ack_ratio: float
    flow_rate: float
    udp_fraction: float
    seq_std: float

    def to_array(self) -> np.ndarray:
        return np.array([getattr(self, name) for name in STATISTICAL_FEATURE_NAMES])

    @classmethod
    def zeros(cls) -> "WindowStatistics":
        return cls(*([0.0] * len(STATISTICAL_FEATURE_NAMES)))


def compute_window_statistics(
    records: "Sequence[PacketRecord] | RecordBatch", window_seconds: float = 1.0
) -> WindowStatistics:
    """Compute all §IV-A statistics over one window's packets.

    Accepts either a :class:`~repro.features.columnar.RecordBatch` (the
    fast path — no conversion) or any sequence of records, which is
    coerced to a batch first.  Both routes run the vectorized
    implementation; :func:`compute_window_statistics_legacy` keeps the
    original per-record walk as the reference the test suite validates
    against.
    """
    from repro.features.columnar import as_batch, compute_batch_statistics

    return compute_batch_statistics(as_batch(records), window_seconds)


def compute_window_statistics_legacy(
    records: Sequence[PacketRecord], window_seconds: float = 1.0
) -> WindowStatistics:
    """Reference per-record implementation (validation and benchmarking)."""
    if not records:
        return WindowStatistics.zeros()

    sizes = np.array([r.size for r in records], dtype=float)
    dports = Counter(r.dst_port for r in records)
    sports = Counter(r.src_port for r in records)
    unique_src = len({r.src_ip for r in records})
    udp_count = sum(1 for r in records if r.is_udp)
    rst_count = sum(1 for r in records if r.tcp_flags & _RST_FLAG)
    ack_count = sum(1 for r in records if r.is_ack)

    # SYN bookkeeping: a SYN "without corresponding ACK" is a connection
    # opener from a (src, dst, dport) that never completes the handshake
    # within the window (no later pure-ACK from the same endpoint pair).
    syns = [r for r in records if r.is_syn]
    ack_pairs = {
        (r.src_ip, r.dst_ip, r.dst_port)
        for r in records
        if r.is_ack and not r.is_syn
    }
    syn_without_ack = sum(
        1 for r in syns if (r.src_ip, r.dst_ip, r.dst_port) not in ack_pairs
    )

    # Connection-attempt analysis keyed by (src, dst, dport).
    attempts: dict[tuple[int, int, int], int] = defaultdict(int)
    for r in syns:
        attempts[(r.src_ip, r.dst_ip, r.dst_port)] += 1
    repeated = sum(1 for count in attempts.values() if count > 1)

    # Short-lived connections: flows that both open (SYN) and terminate
    # (FIN or RST) inside this single window.
    fin_or_rst = {
        (r.src_ip, r.src_port, r.dst_ip, r.dst_port)
        for r in records
        if r.is_fin or (r.tcp_flags & _RST_FLAG)
    }
    opened = {(r.src_ip, r.src_port, r.dst_ip, r.dst_port) for r in syns}
    short_lived = len(opened & fin_or_rst)

    flows = {r.flow_key for r in records}
    tcp_seqs = np.array([r.seq for r in records if r.is_tcp], dtype=float)
    seq_std = float(np.std(tcp_seqs / 2**32)) if tcp_seqs.size else 0.0

    n = len(records)
    return WindowStatistics(
        pkt_count=float(n),
        byte_count=float(sizes.sum()),
        mean_size=float(sizes.mean()),
        std_size=float(sizes.std()),
        dport_entropy=shannon_entropy(list(dports.values())),
        sport_entropy=shannon_entropy(list(sports.values())),
        unique_src=float(unique_src),
        unique_dst_ports=float(len(dports)),
        top_dport_fraction=max(dports.values()) / n,
        syn_count=float(len(syns)),
        syn_ratio=len(syns) / n,
        syn_without_ack=float(syn_without_ack),
        syn_without_ack_ratio=syn_without_ack / n,
        short_lived_conns=float(short_lived),
        short_lived_ratio=short_lived / n,
        repeated_conn_attempts=float(repeated),
        repeated_conn_ratio=repeated / n,
        rst_count=float(rst_count),
        rst_ratio=rst_count / n,
        ack_ratio=ack_count / n,
        flow_rate=len(flows) / window_seconds,
        udp_fraction=udp_count / n,
        seq_std=seq_std,
    )
