"""Feature-pipeline benchmark: legacy per-record vs vectorized columnar.

Times the two costs that dominate every experiment — offline
``FeatureExtractor.transform`` over a whole capture (training-set
generation) and per-window ``transform_window`` latency (the real-time
IDS hot path) — on a synthetic capture, and reports the speedup of the
columnar path over the preserved per-record implementation.  Results are
written as JSON (``BENCH_features.json``) so the perf trajectory of the
pipeline is recorded run over run.

Run via ``python benchmarks/bench_features.py`` or
``ddoshield bench-features``.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.capture.synthetic import synthetic_capture
from repro.features.columnar import RecordBatch
from repro.features.pipeline import FeatureExtractor


def _best_of(fn, repeats: int) -> float:
    """Best-of-N wall time in seconds (min is the least noisy estimator)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def run_feature_benchmark(
    n_packets: int = 100_000,
    duration: float = 100.0,
    window_seconds: float = 1.0,
    seed: int = 7,
    repeats: int = 3,
    stat_set: str | Sequence[str] = "extended",
) -> dict:
    """Benchmark offline extraction and per-window latency; return results."""
    capture = synthetic_capture(n_packets, duration=duration, seed=seed)
    extractor = FeatureExtractor(
        window_seconds=window_seconds, include_details=True, stat_set=stat_set
    )
    records = capture.records
    batch = capture.to_batch()

    # Offline path: whole-capture transform (training-set generation).
    legacy_transform = _best_of(lambda: extractor.transform_legacy(records), repeats)
    vector_transform = _best_of(lambda: extractor.transform(batch), repeats)

    # Sanity: both paths must produce the same matrix before we compare
    # their timings — a fast wrong answer is not a speedup.
    X_legacy, y_legacy, w_legacy = extractor.transform_legacy(records)
    X_vector, y_vector, w_vector = extractor.transform(batch)
    np.testing.assert_allclose(X_vector, X_legacy, atol=1e-9, rtol=0)
    np.testing.assert_array_equal(y_vector, y_legacy)
    np.testing.assert_array_equal(w_vector, w_legacy)

    # Real-time path: per-window latency over every window of the capture.
    windows = list(batch.window_slices(window_seconds))
    record_windows = [w.to_records() for _, w in windows]

    def run_vector() -> None:
        for _, window in windows:
            extractor.transform_window(window)

    def run_legacy() -> None:
        for bucket in record_windows:
            extractor.transform_window_legacy(bucket)

    legacy_window_total = _best_of(run_legacy, repeats)
    vector_window_total = _best_of(run_vector, repeats)
    n_windows = max(1, len(windows))

    build_seconds = _best_of(lambda: RecordBatch.from_records(records), 1)

    return {
        "n_packets": n_packets,
        "n_windows": len(windows),
        "duration_seconds": duration,
        "window_seconds": window_seconds,
        "n_features": extractor.n_features,
        "seed": seed,
        "repeats": repeats,
        "batch_build_seconds": build_seconds,
        "offline_transform": {
            "legacy_seconds": legacy_transform,
            "vectorized_seconds": vector_transform,
            "speedup": legacy_transform / vector_transform,
            "vectorized_packets_per_second": n_packets / vector_transform,
        },
        "per_window_latency": {
            "legacy_mean_ms": 1000.0 * legacy_window_total / n_windows,
            "vectorized_mean_ms": 1000.0 * vector_window_total / n_windows,
            "speedup": legacy_window_total / vector_window_total,
        },
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def write_benchmark(result: dict, path: str | Path) -> Path:
    """Persist benchmark results as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(result, indent=2) + "\n")
    return path


def merge_benchmark(result: dict, path: str | Path, section: str = "features") -> Path:
    """Record a feature-bench result into the shared BENCH history.

    Same append-only ``ddoshield-bench-history/v1`` scheme as
    :func:`repro.sim.bench.merge_benchmark`, so ``BENCH_features.json``
    carries a performance trajectory that ``ddoshield bench-compare``
    can gate on, instead of being overwritten per run.
    """
    from repro.obs.regress import record_benchmark

    path = Path(path)
    record_benchmark(result, path, section)
    return path


def format_benchmark(result: dict) -> str:
    """Human-readable one-screen summary of a benchmark result."""
    offline = result["offline_transform"]
    window = result["per_window_latency"]
    return "\n".join(
        [
            f"feature pipeline benchmark — {result['n_packets']} packets, "
            f"{result['n_windows']} windows, {result['n_features']} features",
            f"  offline transform: legacy {offline['legacy_seconds']:.3f}s "
            f"→ vectorized {offline['vectorized_seconds']:.3f}s "
            f"({offline['speedup']:.1f}×, "
            f"{offline['vectorized_packets_per_second']:.0f} pkt/s)",
            f"  per-window latency: legacy {window['legacy_mean_ms']:.3f}ms "
            f"→ vectorized {window['vectorized_mean_ms']:.3f}ms "
            f"({window['speedup']:.1f}×)",
            f"  batch build: {result['batch_build_seconds']:.3f}s",
        ]
    )
