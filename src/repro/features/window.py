"""Time-window assignment for streaming and offline feature extraction.

Both entry points tolerate out-of-order input (which PR 1's jitter
faults produce on real taps): :func:`iter_windows` stable-sorts a
disordered capture before grouping, and :class:`WindowAggregator`
buffers records inside a configurable reorder horizon, emitting each
window only once it can no longer receive stragglers.  Records arriving
for a window that has already been emitted are dropped and counted
rather than silently filed into the wrong window.
"""

from __future__ import annotations

from bisect import insort
from typing import Callable, Iterator, Sequence

from repro.sim.tracing import PacketRecord


def iter_windows(
    records: Sequence[PacketRecord], window_seconds: float = 1.0
) -> Iterator[tuple[int, list[PacketRecord]]]:
    """Group records into fixed windows, sorting disordered input first.

    Yields ``(window_index, records)`` for every *non-empty* window, where
    ``window_index = floor(timestamp / window_seconds)``.  Out-of-order
    input is stable-sorted by timestamp, so a jittered replay produces
    exactly the window assignment of the sorted capture.
    """
    if window_seconds <= 0:
        raise ValueError(f"window_seconds must be positive, got {window_seconds}")
    ordered = list(records)
    if any(
        ordered[i].timestamp > ordered[i + 1].timestamp
        for i in range(len(ordered) - 1)
    ):
        ordered.sort(key=lambda r: r.timestamp)
    current_index: int | None = None
    bucket: list[PacketRecord] = []
    for record in ordered:
        index = int(record.timestamp // window_seconds)
        if current_index is None:
            current_index = index
        if index != current_index:
            yield current_index, bucket
            bucket = []
            current_index = index
        bucket.append(record)
    if bucket and current_index is not None:
        yield current_index, bucket


class WindowAggregator:
    """Streaming window assembler for the real-time IDS.

    Feed records with :meth:`add`; a window is handed to
    ``on_window(index, records)`` once the stream has advanced past its
    end by at least ``reorder_horizon`` seconds, so late-but-tolerable
    stragglers (network jitter, tap scheduling) are sorted into their
    true window instead of being filed into whichever bucket was open.
    Records older than an already-emitted window cannot be re-windowed;
    they are dropped and counted in ``records_dropped_late``.
    ``records_reordered`` counts every record that arrived behind a
    newer timestamp.  Call :meth:`flush` at end of capture to emit the
    remaining buffered windows.
    """

    def __init__(
        self,
        window_seconds: float,
        on_window: Callable[[int, list[PacketRecord]], None],
        reorder_horizon: float = 0.0,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError(f"window_seconds must be positive, got {window_seconds}")
        if reorder_horizon < 0:
            raise ValueError(
                f"reorder_horizon must be non-negative, got {reorder_horizon}"
            )
        self.window_seconds = window_seconds
        self.on_window = on_window
        self.reorder_horizon = reorder_horizon
        self._pending: list[PacketRecord] = []  # always timestamp-sorted
        self._max_timestamp: float | None = None
        self._next_index: int | None = None  # first index not yet emitted
        self.windows_emitted = 0
        self.records_reordered = 0
        self.records_dropped_late = 0

    def _index_of(self, record: PacketRecord) -> int:
        return int(record.timestamp // self.window_seconds)

    def add(self, record: PacketRecord) -> None:
        if self._next_index is not None and self._index_of(record) < self._next_index:
            # Its window was already emitted; re-windowing would corrupt
            # the per-second timeline, so drop it — visibly.
            self.records_dropped_late += 1
            return
        if self._max_timestamp is not None and record.timestamp < self._max_timestamp:
            self.records_reordered += 1
            insort(self._pending, record, key=lambda r: r.timestamp)
        else:
            self._pending.append(record)
            self._max_timestamp = record.timestamp
        # Emit every window that can no longer receive stragglers: those
        # ending at or before (newest timestamp - horizon).
        assert self._max_timestamp is not None
        safe_limit = int(
            (self._max_timestamp - self.reorder_horizon) // self.window_seconds
        )
        self._emit_through(safe_limit)

    def flush(self) -> None:
        """Emit all buffered windows (end of capture)."""
        self._emit_through(None)

    def _emit_through(self, limit: int | None) -> None:
        """Emit buffered complete windows with index < ``limit`` (all if None)."""
        while self._pending:
            index = self._index_of(self._pending[0])
            if limit is not None and index >= limit:
                return
            cut = 1
            while cut < len(self._pending) and self._index_of(self._pending[cut]) == index:
                cut += 1
            bucket = self._pending[:cut]
            del self._pending[:cut]
            self._next_index = index + 1
            self.windows_emitted += 1
            self.on_window(index, bucket)
