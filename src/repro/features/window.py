"""Time-window assignment for streaming and offline feature extraction."""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from repro.sim.tracing import PacketRecord


def iter_windows(
    records: Sequence[PacketRecord], window_seconds: float = 1.0
) -> Iterator[tuple[int, list[PacketRecord]]]:
    """Group chronologically-ordered records into fixed windows.

    Yields ``(window_index, records)`` for every *non-empty* window, where
    ``window_index = floor(timestamp / window_seconds)``.
    """
    if window_seconds <= 0:
        raise ValueError(f"window_seconds must be positive, got {window_seconds}")
    current_index: int | None = None
    bucket: list[PacketRecord] = []
    for record in records:
        index = int(record.timestamp // window_seconds)
        if current_index is None:
            current_index = index
        if index != current_index:
            yield current_index, bucket
            bucket = []
            current_index = index
        bucket.append(record)
    if bucket and current_index is not None:
        yield current_index, bucket


class WindowAggregator:
    """Streaming window assembler for the real-time IDS.

    Feed records with :meth:`add`; whenever a record crosses into a new
    window, the completed window is handed to ``on_window(index, records)``.
    Call :meth:`flush` at end of capture to emit the final partial window.
    """

    def __init__(
        self,
        window_seconds: float,
        on_window: Callable[[int, list[PacketRecord]], None],
    ) -> None:
        if window_seconds <= 0:
            raise ValueError(f"window_seconds must be positive, got {window_seconds}")
        self.window_seconds = window_seconds
        self.on_window = on_window
        self._current_index: int | None = None
        self._bucket: list[PacketRecord] = []
        self.windows_emitted = 0

    def add(self, record: PacketRecord) -> None:
        index = int(record.timestamp // self.window_seconds)
        if self._current_index is None:
            self._current_index = index
        if index != self._current_index:
            self._emit()
            self._current_index = index
        self._bucket.append(record)

    def flush(self) -> None:
        """Emit any buffered partial window."""
        if self._bucket:
            self._emit()
            self._current_index = None

    def _emit(self) -> None:
        bucket, self._bucket = self._bucket, []
        self.windows_emitted += 1
        assert self._current_index is not None
        self.on_window(self._current_index, bucket)
