"""Columnar packet storage: the vectorized feature-pipeline hot path.

The feature extractor is the dominant cost of both training-set
generation and the real-time IDS.  :class:`RecordBatch` stores a capture
(or one window of it) as a struct-of-arrays — one NumPy column per
:class:`~repro.sim.tracing.PacketRecord` field — so every per-window
statistic of the paper's §IV-A reduces to array operations:

* entropies and port concentration via ``np.unique`` counts;
* SYN-without-ACK, repeated-attempt, and short-lived-connection sets via
  dense integer group ids (``np.unique(return_inverse=True)`` over the
  endpoint-tuple columns) and ``np.isin``/``np.intersect1d``;
* window slicing via ``np.searchsorted`` over the (sorted) timestamp
  column, returning zero-copy views.

The scalar helpers in :mod:`repro.features.basic` and
:mod:`repro.features.statistical` remain the reference semantics; the
test suite asserts the two paths agree to 1e-9 on randomized windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.sim.packet import PROTO_TCP, PROTO_UDP, TcpFlags
from repro.sim.tracing import PacketRecord

_SYN = int(TcpFlags.SYN)
_ACK = int(TcpFlags.ACK)
_FIN = int(TcpFlags.FIN)
_RST = int(TcpFlags.RST)

#: Numeric columns of a batch, in :class:`PacketRecord` field order.
COLUMN_NAMES: tuple[str, ...] = (
    "timestamp",
    "src_ip",
    "dst_ip",
    "protocol",
    "src_port",
    "dst_port",
    "size",
    "tcp_flags",
    "seq",
    "label",
)


@dataclass
class RecordBatch:
    """A struct-of-arrays view of an ordered packet capture.

    Rows are always sorted by timestamp (``from_records`` stable-sorts
    out-of-order input), which is what makes window slicing a pair of
    ``searchsorted`` lookups instead of a scan.  ``slice`` returns
    zero-copy views of the underlying columns.
    """

    timestamp: np.ndarray
    src_ip: np.ndarray
    dst_ip: np.ndarray
    protocol: np.ndarray
    src_port: np.ndarray
    dst_port: np.ndarray
    size: np.ndarray
    tcp_flags: np.ndarray
    seq: np.ndarray
    label: np.ndarray
    attack: np.ndarray  # object dtype; None for benign rows

    @classmethod
    def from_records(cls, records: Sequence[PacketRecord]) -> "RecordBatch":
        """Build the columnar store (one pass; stable-sorts if needed)."""
        n = len(records)
        timestamp = np.fromiter((r.timestamp for r in records), dtype=np.float64, count=n)
        batch = cls(
            timestamp=timestamp,
            src_ip=np.fromiter((r.src_ip for r in records), dtype=np.int64, count=n),
            dst_ip=np.fromiter((r.dst_ip for r in records), dtype=np.int64, count=n),
            protocol=np.fromiter((r.protocol for r in records), dtype=np.int64, count=n),
            src_port=np.fromiter((r.src_port for r in records), dtype=np.int64, count=n),
            dst_port=np.fromiter((r.dst_port for r in records), dtype=np.int64, count=n),
            size=np.fromiter((r.size for r in records), dtype=np.int64, count=n),
            tcp_flags=np.fromiter((r.tcp_flags for r in records), dtype=np.int64, count=n),
            seq=np.fromiter((r.seq for r in records), dtype=np.int64, count=n),
            label=np.fromiter((r.label for r in records), dtype=np.int64, count=n),
            attack=np.array([r.attack for r in records], dtype=object),
        )
        if n > 1 and np.any(np.diff(timestamp) < 0):
            order = np.argsort(timestamp, kind="stable")
            batch = batch.take(order)
        return batch

    @classmethod
    def empty(cls) -> "RecordBatch":
        return cls.from_records([])

    def __len__(self) -> int:
        return len(self.timestamp)

    def take(self, order: np.ndarray) -> "RecordBatch":
        """A new batch with rows reordered/selected by ``order``."""
        return RecordBatch(
            **{name: getattr(self, name)[order] for name in COLUMN_NAMES},
            attack=self.attack[order],
        )

    def slice(self, start: int, stop: int) -> "RecordBatch":
        """Zero-copy row range ``[start, stop)`` (columns are views)."""
        return RecordBatch(
            **{name: getattr(self, name)[start:stop] for name in COLUMN_NAMES},
            attack=self.attack[start:stop],
        )

    def to_records(self) -> list[PacketRecord]:
        """Materialise back into per-record rows (compatibility path)."""
        return [
            PacketRecord(
                timestamp=float(self.timestamp[i]),
                src_ip=int(self.src_ip[i]),
                dst_ip=int(self.dst_ip[i]),
                protocol=int(self.protocol[i]),
                src_port=int(self.src_port[i]),
                dst_port=int(self.dst_port[i]),
                size=int(self.size[i]),
                tcp_flags=int(self.tcp_flags[i]),
                seq=int(self.seq[i]),
                label=int(self.label[i]),
                attack=self.attack[i],
            )
            for i in range(len(self))
        ]

    # ------------------------------------------------------------------
    # Derived boolean columns (same semantics as PacketRecord properties)

    @property
    def is_tcp(self) -> np.ndarray:
        return self.protocol == PROTO_TCP

    @property
    def is_udp(self) -> np.ndarray:
        return self.protocol == PROTO_UDP

    @property
    def is_syn(self) -> np.ndarray:
        return ((self.tcp_flags & _SYN) != 0) & ((self.tcp_flags & _ACK) == 0)

    @property
    def is_ack(self) -> np.ndarray:
        return (self.tcp_flags & _ACK) != 0

    @property
    def is_fin(self) -> np.ndarray:
        return (self.tcp_flags & _FIN) != 0

    @property
    def is_rst(self) -> np.ndarray:
        return (self.tcp_flags & _RST) != 0

    # ------------------------------------------------------------------
    # Window slicing

    def window_indices(self, window_seconds: float) -> np.ndarray:
        """Per-row window index: ``floor(timestamp / window_seconds)``."""
        if window_seconds <= 0:
            raise ValueError(f"window_seconds must be positive, got {window_seconds}")
        return (self.timestamp // window_seconds).astype(np.int64)

    def window_slices(
        self, window_seconds: float
    ) -> Iterator[tuple[int, "RecordBatch"]]:
        """Yield ``(window_index, batch_view)`` for each non-empty window.

        The per-row index column is nondecreasing (rows are sorted), so
        each window is a contiguous run located with ``np.searchsorted``
        and returned as a zero-copy slice.
        """
        if len(self) == 0:
            return
        indices = self.window_indices(window_seconds)
        windows = np.unique(indices)
        bounds = np.searchsorted(indices, windows, side="left")
        ends = np.append(bounds[1:], len(indices))
        for window, start, stop in zip(windows, bounds, ends):
            yield int(window), self.slice(int(start), int(stop))


def as_batch(records: "RecordBatch | Sequence[PacketRecord]") -> RecordBatch:
    """Coerce either representation to a :class:`RecordBatch`."""
    if isinstance(records, RecordBatch):
        return records
    return RecordBatch.from_records(records)


# ----------------------------------------------------------------------
# Vectorized statistics


def _entropy(counts: np.ndarray) -> float:
    """Shannon entropy (bits) of a count vector."""
    total = counts.sum()
    if total <= 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-(p * np.log2(p)).sum())


def _group_ids(*columns: np.ndarray) -> np.ndarray:
    """Dense integer ids for the row tuples of the given columns.

    Equal tuples map to equal ids, so set algebra over endpoint tuples
    (membership, intersection, multiplicity) becomes integer-array work.
    Each accumulation step re-densifies, keeping values < n and far from
    int64 overflow regardless of column magnitudes.
    """
    ids = np.zeros(len(columns[0]), dtype=np.int64)
    for column in columns:
        _, inverse = np.unique(column, return_inverse=True)
        ids = ids * (int(inverse.max()) + 1 if len(inverse) else 1) + inverse
        _, ids = np.unique(ids, return_inverse=True)
    return ids


def compute_batch_statistics(batch: RecordBatch, window_seconds: float = 1.0):
    """Vectorized §IV-A statistics over one window held as a batch.

    Returns a :class:`~repro.features.statistical.WindowStatistics` that
    matches the per-record reference implementation to 1e-9.
    """
    from repro.features.statistical import WindowStatistics

    n = len(batch)
    if n == 0:
        return WindowStatistics.zeros()

    sizes = batch.size.astype(np.float64)
    _, dport_counts = np.unique(batch.dst_port, return_counts=True)
    _, sport_counts = np.unique(batch.src_port, return_counts=True)

    syn_mask = batch.is_syn
    ack_mask = batch.is_ack
    rst_mask = batch.is_rst
    syn_count = int(syn_mask.sum())

    # (src, dst, dport) triple ids shared by the SYN and ACK sides, so a
    # half-open handshake is a SYN id absent from the ACK id set.
    triple = _group_ids(batch.src_ip, batch.dst_ip, batch.dst_port)
    syn_triples = triple[syn_mask]
    ack_triples = triple[ack_mask & ~syn_mask]
    if syn_count:
        syn_without_ack = int(np.isin(syn_triples, ack_triples, invert=True).sum())
        _, attempt_counts = np.unique(syn_triples, return_counts=True)
        repeated = int((attempt_counts > 1).sum())
    else:
        syn_without_ack = 0
        repeated = 0

    # Short-lived connections: 4-tuples that both open and terminate
    # inside the window.
    quad = _group_ids(batch.src_ip, batch.src_port, batch.dst_ip, batch.dst_port)
    short_lived = len(np.intersect1d(quad[syn_mask], quad[batch.is_fin | rst_mask]))

    flow = _group_ids(
        batch.src_ip, batch.src_port, batch.dst_ip, batch.dst_port, batch.protocol
    )
    n_flows = int(flow.max()) + 1 if n else 0

    tcp_seqs = batch.seq[batch.is_tcp].astype(np.float64)
    seq_std = float(np.std(tcp_seqs / 2**32)) if tcp_seqs.size else 0.0

    rst_count = int(rst_mask.sum())
    return WindowStatistics(
        pkt_count=float(n),
        byte_count=float(sizes.sum()),
        mean_size=float(sizes.mean()),
        std_size=float(sizes.std()),
        dport_entropy=_entropy(dport_counts),
        sport_entropy=_entropy(sport_counts),
        unique_src=float(len(np.unique(batch.src_ip))),
        unique_dst_ports=float(len(dport_counts)),
        top_dport_fraction=int(dport_counts.max()) / n,
        syn_count=float(syn_count),
        syn_ratio=syn_count / n,
        syn_without_ack=float(syn_without_ack),
        syn_without_ack_ratio=syn_without_ack / n,
        short_lived_conns=float(short_lived),
        short_lived_ratio=short_lived / n,
        repeated_conn_attempts=float(repeated),
        repeated_conn_ratio=repeated / n,
        rst_count=float(rst_count),
        rst_ratio=rst_count / n,
        ack_ratio=int(ack_mask.sum()) / n,
        flow_rate=n_flows / window_seconds,
        udp_fraction=int(batch.is_udp.sum()) / n,
        seq_std=seq_std,
    )


def basic_features_batch(
    batch: RecordBatch,
    include_ips: bool = False,
    include_timestamp: bool = True,
    include_details: bool = False,
) -> np.ndarray:
    """The basic feature matrix for every row of a batch at once.

    Column order matches :func:`repro.features.basic.basic_features` /
    :func:`repro.features.basic.basic_feature_names`.
    """
    columns: list[np.ndarray] = []
    if include_ips:
        columns += [batch.src_ip, batch.dst_ip]
    if include_timestamp:
        columns.append(batch.timestamp)
    columns += [batch.protocol, batch.src_port, batch.dst_port]
    if include_details:
        columns += [
            batch.size,
            batch.is_syn,
            batch.is_ack,
            batch.is_fin,
            batch.is_rst,
            batch.seq / 2**32,
        ]
    if len(batch) == 0:
        return np.empty((0, len(columns)))
    return np.column_stack([np.asarray(c, dtype=np.float64) for c in columns])
