"""The end-to-end feature extractor.

Combines per-packet basic features with per-window statistics into the
model-ready matrix.  As in the paper, every packet in a window shares
that window's statistical features ("this aggregation ... prevents the
misclassification of packets belonging to different classes within the
same time window"), and the window length is user-configurable (the
paper's experiments use 1 second).

The default configuration is paper-faithful: basic features are the
timestamp/protocol/port attributes of §IV-A, and the statistical set is
the nine statistics the section walks through
(:data:`~repro.features.statistical.PAPER_STATISTICAL_FEATURE_NAMES`).
``stat_set="extended"`` and ``include_details=True`` enable the richer
feature space used by the ablation benchmarks.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.features.basic import basic_feature_names, basic_features
from repro.features.columnar import RecordBatch, as_batch, basic_features_batch
from repro.features.statistical import (
    NORMALIZED_STATISTICAL_FEATURE_NAMES,
    PAPER_STATISTICAL_FEATURE_NAMES,
    STATISTICAL_FEATURE_NAMES,
    compute_window_statistics,
    compute_window_statistics_legacy,
)
from repro.features.window import iter_windows
from repro.sim.tracing import PacketRecord


class FeatureExtractor:
    """Turns packet records into per-packet feature vectors.

    Parameters
    ----------
    window_seconds:
        Statistical-aggregation window (paper default: 1 s).
    include_ips:
        Include raw src/dst IP integers as features.
    include_timestamp:
        Include the capture-relative timestamp (paper-faithful default).
    include_details:
        Add per-packet size/flag/sequence columns (ablation only).
    stat_set:
        ``"paper"`` (default), ``"extended"`` (every computed statistic),
        ``"none"``, or an explicit tuple of statistic names.
    """

    def __init__(
        self,
        window_seconds: float = 1.0,
        include_ips: bool = False,
        include_timestamp: bool = True,
        include_details: bool = False,
        stat_set: str | Sequence[str] = "paper",
    ) -> None:
        if window_seconds <= 0:
            raise ValueError(f"window_seconds must be positive, got {window_seconds}")
        self.window_seconds = window_seconds
        self.include_ips = include_ips
        self.include_timestamp = include_timestamp
        self.include_details = include_details
        if stat_set == "paper":
            stat_names: tuple[str, ...] = PAPER_STATISTICAL_FEATURE_NAMES
        elif stat_set == "normalized":
            stat_names = NORMALIZED_STATISTICAL_FEATURE_NAMES
        elif stat_set == "extended":
            stat_names = STATISTICAL_FEATURE_NAMES
        elif stat_set == "none":
            stat_names = ()
        elif isinstance(stat_set, str):
            raise ValueError(f"unknown stat_set {stat_set!r}")
        else:
            unknown = set(stat_set) - set(STATISTICAL_FEATURE_NAMES)
            if unknown:
                raise ValueError(f"unknown statistic names: {sorted(unknown)}")
            stat_names = tuple(stat_set)
        self.stat_names = stat_names
        self._stat_columns = np.array(
            [STATISTICAL_FEATURE_NAMES.index(name) for name in stat_names], dtype=int
        )

    def to_config(self) -> dict:
        """JSON-serializable constructor arguments.

        ``stat_set`` is stored as the resolved tuple of statistic names,
        so a round-tripped extractor produces byte-identical matrices
        even if the named preset's contents ever change.
        """
        return {
            "window_seconds": self.window_seconds,
            "include_ips": self.include_ips,
            "include_timestamp": self.include_timestamp,
            "include_details": self.include_details,
            "stat_set": list(self.stat_names),
        }

    @classmethod
    def from_config(cls, config: dict) -> "FeatureExtractor":
        """Rebuild an extractor from :meth:`to_config` (validation re-fires)."""
        return cls(
            window_seconds=config["window_seconds"],
            include_ips=config["include_ips"],
            include_timestamp=config["include_timestamp"],
            include_details=config["include_details"],
            stat_set=tuple(config["stat_set"]),
        )

    @property
    def feature_names(self) -> tuple[str, ...]:
        """Column names of the produced matrix."""
        return (
            basic_feature_names(
                self.include_ips, self.include_timestamp, self.include_details
            )
            + self.stat_names
        )

    @property
    def n_features(self) -> int:
        return len(self.feature_names)

    def transform_window(
        self, records: RecordBatch | Sequence[PacketRecord]
    ) -> np.ndarray:
        """Features for the packets of one window (real-time path).

        Accepts a :class:`~repro.features.columnar.RecordBatch` (fast
        path) or a sequence of records (coerced to one).
        """
        batch = as_batch(records)
        if len(batch) == 0:
            return np.empty((0, self.n_features))
        basic = basic_features_batch(
            batch, self.include_ips, self.include_timestamp, self.include_details
        )
        if not len(self.stat_names):
            return basic
        stats = compute_window_statistics(batch, self.window_seconds).to_array()
        selected = stats[self._stat_columns]
        tiled = np.tile(selected, (len(batch), 1))
        return np.hstack([basic, tiled])

    def transform(
        self, records: RecordBatch | Sequence[PacketRecord]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Features for a whole capture (offline/training path).

        Returns ``(X, y, window_ids)`` where ``y`` holds ground-truth
        labels and ``window_ids`` the window index of each packet.

        The capture is held as one columnar batch: the basic block is
        computed in a single vectorized pass over every packet, then
        each window (a zero-copy slice) contributes its statistics row.
        """
        batch = as_batch(records)
        n = len(batch)
        if n == 0:
            return (
                np.empty((0, self.n_features)),
                np.empty(0, dtype=int),
                np.empty(0, dtype=int),
            )
        y = batch.label.astype(int)
        window_ids = batch.window_indices(self.window_seconds)
        n_basic = self.n_features - len(self.stat_names)
        X = np.empty((n, self.n_features))
        X[:, :n_basic] = basic_features_batch(
            batch, self.include_ips, self.include_timestamp, self.include_details
        )
        # Fill statistic rows window by window: rows are timestamp-sorted,
        # so each window is a contiguous run of the index column.
        if len(self.stat_names):
            boundaries = np.flatnonzero(np.diff(window_ids)) + 1
            starts = np.concatenate(([0], boundaries))
            stops = np.concatenate((boundaries, [n]))
            for start, stop in zip(starts, stops):
                stats = compute_window_statistics(
                    batch.slice(int(start), int(stop)), self.window_seconds
                ).to_array()
                X[start:stop, n_basic:] = stats[self._stat_columns]
        return X, y, window_ids.astype(int)

    # ------------------------------------------------------------------
    # Legacy per-record path (reference semantics; kept for the
    # equivalence tests and the benchmark's before/after comparison).

    def transform_window_legacy(self, records: Sequence[PacketRecord]) -> np.ndarray:
        """Original per-record implementation of :meth:`transform_window`."""
        if not records:
            return np.empty((0, self.n_features))
        basic = np.stack(
            [
                basic_features(
                    r, self.include_ips, self.include_timestamp, self.include_details
                )
                for r in records
            ]
        )
        if not len(self.stat_names):
            return basic
        stats = compute_window_statistics_legacy(records, self.window_seconds).to_array()
        selected = stats[self._stat_columns]
        tiled = np.tile(selected, (len(records), 1))
        return np.hstack([basic, tiled])

    def transform_legacy(
        self, records: Sequence[PacketRecord]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Original per-record implementation of :meth:`transform`."""
        blocks: list[np.ndarray] = []
        labels: list[int] = []
        window_ids: list[int] = []
        for index, bucket in iter_windows(records, self.window_seconds):
            blocks.append(self.transform_window_legacy(bucket))
            labels.extend(r.label for r in bucket)
            window_ids.extend([index] * len(bucket))
        if not blocks:
            return (
                np.empty((0, self.n_features)),
                np.empty(0, dtype=int),
                np.empty(0, dtype=int),
            )
        return (
            np.vstack(blocks),
            np.array(labels, dtype=int),
            np.array(window_ids, dtype=int),
        )
