"""Per-packet basic features.

The paper's §IV-A basic attributes are exactly: timestamps, IP source and
destination addresses, protocol types, and source and destination ports.
That is the default set here (IPs behind a flag, see below).  TCP flags,
packet sizes, and sequence numbers appear in the paper only through the
window *statistics* (SYN-without-ACK counts, sequence-number variance,
flow rates); the ``include_details`` flag adds them per-packet for the
feature-ablation experiments.

Two deliberate defaults:

* ``include_timestamp=True`` — the paper lists timestamps first.  A
  capture-relative timestamp lets threshold-splitting models memorise
  *when* the training run's attacks happened rather than what they look
  like; keeping it faithful to the paper preserves that hazard.
* ``include_ips=False`` — on the testbed's flat LAN the infected devices
  emit both benign and attack traffic, so addresses carry little signal
  while dominating distance metrics; ``include_ips=True`` restores the
  paper's literal list.
"""

from __future__ import annotations

import numpy as np

from repro.sim.tracing import PacketRecord

#: The paper's per-packet attributes (minus IPs, which are flag-gated).
CORE_FEATURE_NAMES: tuple[str, ...] = (
    "timestamp",
    "protocol",
    "src_port",
    "dst_port",
)

#: Extra per-packet columns available for ablations.
DETAIL_FEATURE_NAMES: tuple[str, ...] = (
    "size",
    "is_syn",
    "is_ack",
    "is_fin",
    "is_rst",
    "seq_norm",
)

#: Extra columns prepended when ``include_ips`` is requested.
IP_FEATURE_NAMES: tuple[str, ...] = ("src_ip", "dst_ip")

#: Backwards-friendly alias: the default column set.
BASIC_FEATURE_NAMES: tuple[str, ...] = CORE_FEATURE_NAMES

_RST_FLAG = 0x04


def basic_features(
    record: PacketRecord,
    include_ips: bool = False,
    include_timestamp: bool = True,
    include_details: bool = False,
) -> np.ndarray:
    """The basic feature vector for one packet."""
    core: tuple[float, ...] = (
        float(record.protocol),
        float(record.src_port),
        float(record.dst_port),
    )
    if include_timestamp:
        core = (record.timestamp,) + core
    if include_details:
        core = core + (
            float(record.size),
            1.0 if record.is_syn else 0.0,
            1.0 if record.is_ack else 0.0,
            1.0 if record.is_fin else 0.0,
            1.0 if record.tcp_flags & _RST_FLAG else 0.0,
            record.seq / 2**32,
        )
    if include_ips:
        return np.array((float(record.src_ip), float(record.dst_ip)) + core)
    return np.array(core)


def basic_feature_names(
    include_ips: bool = False,
    include_timestamp: bool = True,
    include_details: bool = False,
) -> tuple[str, ...]:
    """Column names matching :func:`basic_features`."""
    names = CORE_FEATURE_NAMES if include_timestamp else CORE_FEATURE_NAMES[1:]
    if include_details:
        names = names + DETAIL_FEATURE_NAMES
    return (IP_FEATURE_NAMES + names) if include_ips else names
