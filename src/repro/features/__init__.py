"""Feature extraction for intrusion detection (the paper's §IV-A pipeline).

Per-packet *basic* features (:mod:`repro.features.basic`) are aggregated
with per-window *statistical* features (:mod:`repro.features.statistical`)
computed over user-configurable time windows
(:mod:`repro.features.window`) — packet counts, destination-port entropy,
port-frequency concentration, short-lived connections, repeated
connection attempts, SYN-without-ACK counts, flow rates, and
sequence-number variance.  :class:`~repro.features.pipeline.FeatureExtractor`
combines them into the model-ready matrix where, exactly as in the paper,
the statistical features are identical for every packet inside a window.

The hot path is columnar (:mod:`repro.features.columnar`): captures are
held as a :class:`~repro.features.columnar.RecordBatch` struct-of-arrays
and every statistic is computed with NumPy array operations; the
per-record helpers remain as the validated reference semantics.
"""

from repro.features.basic import BASIC_FEATURE_NAMES, basic_features
from repro.features.columnar import (
    RecordBatch,
    as_batch,
    basic_features_batch,
    compute_batch_statistics,
)
from repro.features.pipeline import FeatureExtractor
from repro.features.statistical import (
    STATISTICAL_FEATURE_NAMES,
    WindowStatistics,
    compute_window_statistics,
    compute_window_statistics_legacy,
    shannon_entropy,
)
from repro.features.window import WindowAggregator, iter_windows

__all__ = [
    "BASIC_FEATURE_NAMES",
    "FeatureExtractor",
    "RecordBatch",
    "STATISTICAL_FEATURE_NAMES",
    "WindowAggregator",
    "WindowStatistics",
    "as_batch",
    "basic_features",
    "basic_features_batch",
    "compute_batch_statistics",
    "compute_window_statistics",
    "compute_window_statistics_legacy",
    "iter_windows",
    "shannon_entropy",
]
