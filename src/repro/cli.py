"""Command-line interface: ``ddoshield <command>``.

Four commands cover the testbed's day-to-day uses:

* ``ddoshield experiment`` — the full §IV-D reproduction (train + live
  detection), printing Tables I/II;
* ``ddoshield faults`` — the same flow with the detection run impaired
  by a fault plan (loss, partition, container crash + restart), printing
  the healthy-vs-degraded accuracy breakdown and the fault/supervisor
  logs;
* ``ddoshield campaign`` — sweep a scenario × seed grid through the
  staged pipeline, sharded across ``--jobs`` workers with a shared
  content-addressed artifact cache (``--cache-dir``; repeated runs
  resume from cache), printing per-scenario Table I/II aggregates;
  crashed or timed-out runs are retried once and then recorded as
  failed instead of aborting the sweep;
* ``ddoshield mitigate`` — deploy the detect→mitigate→recover loop on
  the detection run (optionally under the ``--chaos`` fault plan) and
  print the mitigation event log, recovery metrics against an
  undefended baseline, and the victim-goodput timeline;
* ``ddoshield dataset`` — generate a labelled capture and export CSV
  (and optionally pcap);
* ``ddoshield inventory`` — build the Figure 1 topology, run the Mirai
  lifecycle, and print the live component inventory;
* ``ddoshield bench-features`` — time the vectorized feature pipeline
  against the legacy per-record path and write ``BENCH_features.json``;
* ``ddoshield bench-sim`` — time the batched event kernel against
  scalar per-packet dispatch across node counts, check scalar/batch
  equivalence, and write ``BENCH_sim.json``;
* ``ddoshield profile`` — run a flood scene under the deterministic
  kernel profiler and print the per-subsystem attribution table (with
  optional collapsed-stack flamegraph and flight-recorder exports);
* ``ddoshield bench-compare`` — diff the newest entry of the
  append-only BENCH histories against a baseline under tolerance bands
  and exit non-zero on regression;
* ``ddoshield timeline`` — run one telemetry-enabled experiment and
  render the unified per-second run timeline (traffic bars, accuracy,
  attack/fault/queue-drop markers) as an ASCII chart, with optional
  CSV/JSON/Chrome-trace exports;
* ``ddoshield metrics`` — run one telemetry-enabled experiment and dump
  the metrics registry plus a per-span cost summary;
* ``ddoshield lint`` — run the determinism linter (repro.analysis) over
  the source tree against the committed baseline;
* ``ddoshield check-parity`` — run the batch/scalar dual-path parity
  checker and event-commutativity analyzer (BAT001–BAT004, ORD002) over
  the dual-path subtrees against ``analysis/parity_baseline.json``.
"""

from __future__ import annotations

import argparse
from pathlib import Path


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--devices", type=int, default=6, help="number of Dev containers")
    parser.add_argument("--seed", type=int, default=7, help="scenario seed")


def cmd_experiment(args: argparse.Namespace) -> int:
    from repro.testbed import Scenario, run_full_experiment

    scenario = Scenario(n_devices=args.devices, seed=args.seed)
    result = run_full_experiment(
        scenario,
        train_duration=args.train_duration,
        detect_duration=args.detect_duration,
    )
    print(result.train_summary)
    print("\ntraining metrics (held-out split):")
    for name, accuracy, precision, recall, f1 in result.training_metrics():
        print(f"  {name}: acc={accuracy:.4f} p={precision:.4f} r={recall:.4f} f1={f1:.4f}")
    print("\nTable I — real-time accuracy (%):")
    for name, accuracy in result.table1():
        print(f"  {name}: {accuracy:.2f}")
    print("\nTable II — sustainability:")
    for name, cpu, mem, size in result.table2():
        print(f"  {name}: cpu={cpu:.2f}% mem={mem:.2f}Kb model={size:.2f}Kb")
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    from repro.testbed import Scenario, run_fault_experiment

    scenario = Scenario(n_devices=args.devices, seed=args.seed)
    result = run_fault_experiment(
        scenario,
        train_duration=args.train_duration,
        detect_duration=args.detect_duration,
    )
    assert result.fault_plan is not None
    print("fault plan:")
    for spec in result.fault_plan.specs:
        print(f"  {spec.describe()}")
    print("\nfault events:")
    for event in result.fault_events:
        print(f"  t={event.time:9.3f}  {event.action:<10} {event.kind} "
              f"targets={','.join(event.targets)} {event.detail}")
    print("\nsupervisor events:")
    for event in result.supervisor_events:
        print(f"  t={event.time:9.3f}  {event.action:<8} {event.container} {event.detail}")
    if result.restarts:
        restarts = ", ".join(f"{k}×{v}" for k, v in sorted(result.restarts.items()))
        print(f"\nrestarts: {restarts}")
    print("\nreal-time accuracy under faults:")
    for name, availability, healthy, degraded in result.fault_table():
        print(f"  {name}: availability={availability:.2f} "
              f"healthy={healthy:.2f}% degraded={degraded:.2f}%")
    for report in result.detection:
        print(f"  {report}")
    return 0


def cmd_mitigate(args: argparse.Namespace) -> int:
    """Defended run (detect→mitigate→recover) vs an undefended baseline."""
    from dataclasses import replace

    from repro.ids.defense import MitigationPlan
    from repro.obs import timeline_from_result
    from repro.pipeline import run_experiment_pipeline
    from repro.testbed import Scenario

    plan = MitigationPlan(
        model=args.model,
        block_seconds=args.block_seconds,
        upstream_filter=not args.no_upstream,
        syn_cookies=not args.no_syn_cookies,
    )
    scenario = Scenario(n_devices=args.devices, seed=args.seed, mitigation_plan=plan)
    fault_plan = scenario.chaos_fault_schedule(args.detect_duration) if args.chaos else None

    def run(mode: str):
        bound = replace(scenario, mitigation_plan=replace(plan, mode=mode))
        result, _ = run_experiment_pipeline(
            scenario=bound,
            train_duration=args.train_duration,
            detect_duration=args.detect_duration,
            fault_plan=fault_plan,
            faults=args.chaos,
        )
        return result

    defended = run("mitigate")
    baseline = None if args.no_baseline else run("monitor")

    assert defended.mitigation is not None
    summary = defended.mitigation["summary"]
    if args.chaos:
        print("chaos fault plan (aimed at the defense):")
        for spec in fault_plan.specs:
            print(f"  {spec.describe()}")
        print()
    print("mitigation events:")
    for event in defended.mitigation["events"]:
        detail = f" {event['detail']}" if event["detail"] else ""
        print(f"  t={event['time']:9.3f}  {event['action']:<16}{detail}")
    print(
        f"\ndefense summary: {summary['blocks_issued']} block(s), "
        f"{summary['unblocks']} unblock(s), {summary['fallback_entries']} fallback(s); "
        f"dropped blocklist={summary['dropped_by_blocklist']} "
        f"rate-limit={summary['dropped_by_rate_limit']} "
        f"upstream={summary['dropped_upstream']}; "
        f"SYN cookies sent={summary['syn_cookies_sent']} "
        f"rejected={summary['syn_cookies_rejected']}"
    )
    print("\nrecovery — defended:")
    for metric, value in defended.recovery_table():
        print(f"  {metric}: {value}")
    if baseline is not None:
        print("\nrecovery — undefended baseline (monitor mode):")
        for metric, value in baseline.recovery_table():
            print(f"  {metric}: {value}")
    print("\ndefended victim goodput (bytes/s):")
    timeline = timeline_from_result(defended, bucket_seconds=args.bucket_seconds)
    print(timeline.render_ascii(traffic="goodput", width=args.width))
    if args.csv_dir:
        out = Path(args.csv_dir)
        out.mkdir(parents=True, exist_ok=True)
        (out / "defended.csv").write_text(timeline.to_csv())
        print(f"\nwrote {out / 'defended.csv'}")
        if baseline is not None:
            base_tl = timeline_from_result(baseline, bucket_seconds=args.bucket_seconds)
            (out / "undefended.csv").write_text(base_tl.to_csv())
            print(f"wrote {out / 'undefended.csv'}")
    retained = defended.recovery_metrics().goodput_retained_pct
    if args.min_goodput_retained is not None and retained < args.min_goodput_retained:
        print(
            f"\ndefended goodput retained {retained:.1f}% below required "
            f"{args.min_goodput_retained:.1f}%"
        )
        return 1
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    import json

    from repro.pipeline import CampaignSpec, run_campaign
    from repro.testbed import Scenario

    if args.catalog:
        from repro.testbed.catalog import get_scenario

        names = [part.strip() for part in args.catalog.split(",") if part.strip()]
        if not names:
            raise SystemExit(f"--catalog: expected scenario names, got {args.catalog!r}")
        overrides = (
            {"n_devices": args.catalog_devices} if args.catalog_devices else {}
        )
        try:
            scenarios = tuple(get_scenario(name, **overrides) for name in names)
        except KeyError as exc:
            raise SystemExit(str(exc.args[0]))
    elif args.scenarios:
        payload = json.loads(Path(args.scenarios).read_text())
        if not isinstance(payload, list) or not payload:
            raise SystemExit(f"{args.scenarios}: expected a non-empty JSON list of scenarios")
        scenarios = tuple(Scenario.from_dict(entry) for entry in payload)
    else:
        scenarios = tuple(
            Scenario(n_devices=devices) for devices in _parse_int_list(args.devices)
        )
    spec = CampaignSpec(
        scenarios=scenarios,
        seeds=tuple(_parse_int_list(args.seeds)),
        train_duration=args.train_duration,
        detect_duration=args.detect_duration,
        faults=args.faults,
    )
    report = run_campaign(
        spec,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        max_retries=args.max_retries,
        run_timeout=args.run_timeout,
    )
    print(report.format_text())
    if args.out:
        Path(args.out).write_text(report.to_json())
        print(f"\nwrote {args.out}")
    if args.min_cache_hit_rate is not None and report.cache_hit_rate < args.min_cache_hit_rate:
        print(
            f"cache hit rate {report.cache_hit_rate:.2f} below required "
            f"{args.min_cache_hit_rate:.2f}"
        )
        return 1
    if report.runs_failed and not args.allow_failures:
        print(f"{report.runs_failed} run(s) failed")
        return 1
    return 0


def _parse_int_list(text: str) -> list[int]:
    try:
        values = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise SystemExit(f"expected a comma-separated integer list, got {text!r}")
    if not values:
        raise SystemExit(f"expected a non-empty integer list, got {text!r}")
    return values


def cmd_dataset(args: argparse.Namespace) -> int:
    from repro.testbed import Scenario, Testbed

    scenario = Scenario(n_devices=args.devices, seed=args.seed)
    testbed = Testbed(scenario).build()
    testbed.infect_all()
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    pcap_path = str(out / "capture.pcap") if args.pcap else None
    capture = testbed.capture(
        args.duration, scenario.training_schedule(args.duration), pcap_path=pcap_path
    )
    capture.to_csv(out / "capture.csv")
    print(capture.summary())
    print(f"wrote {out / 'capture.csv'}")
    if pcap_path:
        print(f"wrote {pcap_path}")
    return 0


def cmd_inventory(args: argparse.Namespace) -> int:
    from repro.testbed import Scenario, Testbed

    scenario = Scenario(n_devices=args.devices, seed=args.seed)
    testbed = Testbed(scenario).build()
    seconds = testbed.infect_all()
    print(f"infection completed in {seconds:.1f} sim-seconds; "
          f"{testbed.bot_count} bots registered")
    for container, processes in sorted(testbed.component_inventory().items()):
        print(f"  {container}: {', '.join(sorted(processes))}")
    return 0


def cmd_bench_features(args: argparse.Namespace) -> int:
    from repro.features.bench import (
        format_benchmark,
        merge_benchmark,
        run_feature_benchmark,
    )

    result = run_feature_benchmark(
        n_packets=args.packets,
        duration=args.duration,
        window_seconds=args.window_seconds,
        seed=args.seed,
        repeats=args.repeats,
    )
    print(format_benchmark(result))
    if args.out:
        print(f"wrote {merge_benchmark(result, args.out, 'features')}")
    return 0


def cmd_bench_sim(args: argparse.Namespace) -> int:
    from repro.sim.bench import (
        format_benchmark,
        format_benign_benchmark,
        merge_benchmark,
        run_benign_benchmark,
        run_sim_benchmark,
    )

    if args.benign:
        result = run_benign_benchmark(
            node_counts=tuple(args.nodes),
            duration=args.benign_duration,
            seed=args.seed,
            mean_session_interval=args.mean_session_interval,
            mean_dns_interval=args.mean_dns_interval,
            devices_per_segment=args.segment_size,
        )
        print(format_benign_benchmark(result))
        if args.out:
            print(f"wrote {merge_benchmark(result, args.out, 'benign')}")
        if args.assert_speedup is not None:
            top = result["runs"][-1]
            speedup = top["speedup_packets_per_second"]
            if speedup < args.assert_speedup:
                print(
                    f"benign speedup {speedup:.2f}x at {top['nodes']} devices "
                    f"below required {args.assert_speedup:.2f}x"
                )
                return 1
        return 0
    result = run_sim_benchmark(
        node_counts=tuple(args.nodes),
        pps_per_node=args.pps,
        duration=args.duration,
        seed=args.seed,
        attack=args.attack,
        window_seconds=args.window_seconds,
        devices_per_segment=args.segment_size,
    )
    print(format_benchmark(result))
    if args.out:
        print(f"wrote {merge_benchmark(result, args.out, 'flood')}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.sim.bench import build_and_run_flood

    ctx = obs.ObsContext.make(enabled=True, profile=True)
    with obs.scope(ctx):
        run = build_and_run_flood(
            n_nodes=args.nodes,
            batch=not args.scalar,
            pps_per_node=args.pps,
            duration=args.duration,
            seed=args.seed,
            attack=args.attack,
            devices_per_segment=args.segment_size,
        )
    profiler = ctx.profiler
    include_wall = not args.no_wall
    print(
        f"profiled {args.attack} flood: {args.nodes} node(s), "
        f"{run['events']} event(s), {run['packets_sent']} packet(s) sent, "
        f"{run['wall_seconds'] * 1000.0:.1f} ms wall"
    )
    print(profiler.format_table(top=args.top, include_wall=include_wall))
    if args.flamegraph:
        Path(args.flamegraph).write_text(
            profiler.collapsed_stacks(include_wall=include_wall)
        )
        print(f"wrote {args.flamegraph}")
    if args.flight:
        import json

        Path(args.flight).write_text(
            json.dumps(ctx.flight.dump(registry=ctx.registry), indent=2) + "\n"
        )
        print(f"wrote {args.flight}")
    if args.json:
        import json

        Path(args.json).write_text(
            json.dumps(profiler.snapshot(include_wall=include_wall), indent=2) + "\n"
        )
        print(f"wrote {args.json}")
    if args.min_attribution is not None:
        fraction = profiler.attribution()["named_fraction"]
        if fraction < args.min_attribution:
            print(
                f"named-subsystem attribution {fraction:.1%} below required "
                f"{args.min_attribution:.1%}"
            )
            return 1
    return 0


def cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.obs.regress import compare_file

    exit_code = 0
    for path in args.paths:
        comparisons = compare_file(
            path,
            sections=args.section or None,
            tolerance=args.tolerance,
            baseline=args.baseline,
        )
        if not comparisons:
            print(f"{path}: no benchmark sections recorded")
            continue
        print(f"{path}:")
        for comparison in comparisons:
            print(comparison.format_text())
            if comparison.regressions and args.assert_no_regression:
                exit_code = 1
            if comparison.baseline_sha is None and args.require_baseline:
                print(f"  => baseline required but none found for [{comparison.section}]")
                exit_code = 1
    return exit_code


def _run_observed(args: argparse.Namespace):
    """Run one experiment inside an enabled telemetry scope.

    Returns ``(result, octx)`` — the scope's live context outlives the
    run, so commands can render from the real registry/tracer objects
    rather than the serialized ``result.telemetry`` snapshot.
    """
    from repro import obs
    from repro.testbed import Scenario, run_fault_experiment, run_full_experiment

    scenario = Scenario(n_devices=args.devices, seed=args.seed)
    with obs.scope() as octx:
        if args.faults:
            result = run_fault_experiment(
                scenario,
                train_duration=args.train_duration,
                detect_duration=args.detect_duration,
            )
        else:
            result = run_full_experiment(
                scenario,
                train_duration=args.train_duration,
                detect_duration=args.detect_duration,
            )
    return result, octx


def _write_chrome_trace(octx, path: str) -> None:
    import json

    from repro.obs import chrome_trace

    Path(path).write_text(json.dumps(chrome_trace(octx.tracer.spans), indent=2))
    print(f"wrote {path}")


def cmd_timeline(args: argparse.Namespace) -> int:
    from repro.obs import timeline_from_result

    result, octx = _run_observed(args)
    timeline = timeline_from_result(result, bucket_seconds=args.bucket_seconds)
    print(timeline.render_ascii(width=args.width))
    if args.csv:
        Path(args.csv).write_text(timeline.to_csv())
        print(f"wrote {args.csv}")
    if args.json:
        Path(args.json).write_text(timeline.to_json())
        print(f"wrote {args.json}")
    if args.trace:
        _write_chrome_trace(octx, args.trace)
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    _, octx = _run_observed(args)
    print(octx.registry.format_text(include_wall=not args.no_wall))
    spans: dict[str, list] = {}
    for span in octx.tracer.spans:
        spans.setdefault(span.name, []).append(span)
    if spans:
        print("\nspans:")
        for name in sorted(spans):
            group = spans[name]
            sim_total = sum(s.sim_duration for s in group)
            line = f"  {name}: n={len(group)} sim={sim_total:.3f}s"
            if not args.no_wall:
                wall_total = 1000.0 * sum(s.wall_seconds for s in group)
                line += f" wall={wall_total:.1f}ms"
            print(line)
    if args.trace:
        _write_chrome_trace(octx, args.trace)
    return 0


def _report_findings(args: argparse.Namespace, findings, suppressed, files_checked) -> int:
    """Shared baseline/format/exit flow for ``lint`` and ``check-parity``."""
    from repro.analysis import Baseline, diff_findings, format_json, format_text

    baseline_path = Path(args.root or ".") / args.baseline
    if args.update_baseline:
        previous = Baseline.load(baseline_path) if baseline_path.exists() else Baseline()
        justifications = {
            key: entry.get("justification", "")
            for key, entry in previous.entries.items()
        }
        updated = Baseline.from_findings(findings, justifications=justifications)
        updated.save(baseline_path)
        print(f"wrote {baseline_path} ({len(updated)} accepted finding(s))")
        return 0
    baseline = Baseline() if args.no_baseline else Baseline.load(baseline_path)
    report = diff_findings(
        findings, baseline, suppressed=suppressed, files_checked=files_checked
    )
    print(format_json(report) if args.format == "json" else format_text(report))
    return 0 if report.ok else 1


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import lint_paths

    findings, suppressed, files_checked = lint_paths(args.paths, root=args.root)
    return _report_findings(args, findings, suppressed, files_checked)


def cmd_check_parity(args: argparse.Namespace) -> int:
    from repro.analysis import check_parity_paths

    findings, suppressed, files_checked = check_parity_paths(
        args.paths or None, root=args.root
    )
    return _report_findings(args, findings, suppressed, files_checked)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ddoshield",
        description="DDoShield-IoT reproduction: IoT botnet DDoS testbed + IDS evaluation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    experiment = sub.add_parser("experiment", help="run the full paper reproduction")
    _add_scenario_args(experiment)
    experiment.add_argument("--train-duration", type=float, default=60.0)
    experiment.add_argument("--detect-duration", type=float, default=30.0)
    experiment.set_defaults(fn=cmd_experiment)

    faults = sub.add_parser(
        "faults", help="run the reproduction with an impaired detection phase"
    )
    _add_scenario_args(faults)
    faults.add_argument("--train-duration", type=float, default=60.0)
    faults.add_argument("--detect-duration", type=float, default=30.0)
    faults.set_defaults(fn=cmd_faults)

    campaign = sub.add_parser(
        "campaign",
        help="sweep a scenario × seed grid with caching and parallel workers",
    )
    campaign.add_argument(
        "--devices", default="6",
        help="comma-separated device counts, one scenario per entry (default: 6)",
    )
    campaign.add_argument(
        "--seeds", default="7",
        help="comma-separated seeds applied to every scenario (default: 7)",
    )
    campaign.add_argument(
        "--scenarios", default=None,
        help="JSON file with a list of Scenario.to_dict() entries (overrides --devices)",
    )
    campaign.add_argument(
        "--catalog", default=None,
        help="comma-separated named scenarios from the testbed catalog "
             "(e.g. urban-smoke,urban-4060; overrides --devices/--scenarios)",
    )
    campaign.add_argument(
        "--catalog-devices", type=int, default=None,
        help="override n_devices on every --catalog scenario (CI-sized cuts "
             "of the urban recipes)",
    )
    campaign.add_argument("--train-duration", type=float, default=60.0)
    campaign.add_argument("--detect-duration", type=float, default=30.0)
    campaign.add_argument("--faults", action="store_true",
                          help="impair every detection run with the scenario's fault plan")
    campaign.add_argument("--jobs", type=int, default=1,
                          help="parallel worker processes (default: 1)")
    campaign.add_argument("--cache-dir", default=".ddoshield-cache",
                          help="content-addressed artifact cache shared by all runs")
    campaign.add_argument("--out", default=None, help="also write the report as JSON")
    campaign.add_argument(
        "--min-cache-hit-rate", type=float, default=None,
        help="exit non-zero if the cache hit rate falls below this fraction "
             "(CI guard for resume-from-cache)",
    )
    campaign.add_argument(
        "--max-retries", type=int, default=1,
        help="retries per crashed/timed-out run before recording it failed (default: 1)",
    )
    campaign.add_argument(
        "--run-timeout", type=float, default=None,
        help="wall-clock seconds per run attempt before it counts as crashed",
    )
    campaign.add_argument(
        "--allow-failures", action="store_true",
        help="exit zero even when some runs are recorded as failed",
    )
    campaign.set_defaults(fn=cmd_campaign)

    mitigate = sub.add_parser(
        "mitigate",
        help="run the detect→mitigate→recover loop and compare against an "
             "undefended baseline",
    )
    _add_scenario_args(mitigate)
    mitigate.add_argument("--train-duration", type=float, default=60.0)
    mitigate.add_argument("--detect-duration", type=float, default=30.0)
    mitigate.add_argument("--model", default="K-Means",
                          help="IDS model driving mitigation (default: K-Means)")
    mitigate.add_argument("--block-seconds", type=float, default=20.0,
                          help="blocklist TTL in sim-seconds (default: 20)")
    mitigate.add_argument("--no-upstream", action="store_true",
                          help="disable the LAN-tier upstream filter escalation")
    mitigate.add_argument("--no-syn-cookies", action="store_true",
                          help="disable SYN-cookie handshake hardening")
    mitigate.add_argument("--chaos", action="store_true",
                          help="arm the chaos fault plan (IDS kill + link flaps) "
                               "against the defended run")
    mitigate.add_argument("--no-baseline", action="store_true",
                          help="skip the undefended monitor-mode baseline run")
    mitigate.add_argument("--bucket-seconds", type=float, default=1.0)
    mitigate.add_argument("--width", type=int, default=40,
                          help="goodput bar width in characters (default: 40)")
    mitigate.add_argument("--csv-dir", default=None,
                          help="write defended/undefended timeline CSVs here")
    mitigate.add_argument(
        "--min-goodput-retained", type=float, default=None,
        help="exit non-zero if the defended run retains less goodput (%%) "
             "under attack (CI recovery floor)",
    )
    mitigate.set_defaults(fn=cmd_mitigate)

    dataset = sub.add_parser("dataset", help="generate and export a labelled capture")
    _add_scenario_args(dataset)
    dataset.add_argument("--duration", type=float, default=60.0)
    dataset.add_argument("--out", default="dataset_out")
    dataset.add_argument("--pcap", action="store_true", help="also write a pcap file")
    dataset.set_defaults(fn=cmd_dataset)

    inventory = sub.add_parser("inventory", help="build the topology and list components")
    _add_scenario_args(inventory)
    inventory.set_defaults(fn=cmd_inventory)

    bench = sub.add_parser(
        "bench-features", help="benchmark the vectorized feature pipeline"
    )
    bench.add_argument("--packets", type=int, default=100_000)
    bench.add_argument("--duration", type=float, default=100.0)
    bench.add_argument("--window-seconds", type=float, default=1.0)
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument("--out", default="BENCH_features.json")
    bench.set_defaults(fn=cmd_bench_features)

    bench_sim = sub.add_parser(
        "bench-sim", help="benchmark the batched event kernel against scalar dispatch"
    )
    bench_sim.add_argument("--nodes", type=int, nargs="+", default=[16, 64, 256, 1024])
    bench_sim.add_argument("--pps", type=float, default=20000.0)
    bench_sim.add_argument("--duration", type=float, default=0.05)
    bench_sim.add_argument("--window-seconds", type=float, default=0.01)
    bench_sim.add_argument("--seed", type=int, default=7)
    bench_sim.add_argument(
        "--attack", default="syn", choices=["syn", "udp", "ack", "http"]
    )
    bench_sim.add_argument("--segment-size", type=int, default=64,
                           help="devices per CSMA segment (0 = flat LAN)")
    bench_sim.add_argument("--out", default="BENCH_sim.json")
    bench_sim.add_argument(
        "--benign", action="store_true",
        help="benchmark the benign plane (HTTP/FTP/RTMP/DNS mix, no floods) "
             "instead of the flood path; writes the 'benign' section of --out",
    )
    bench_sim.add_argument(
        "--benign-duration", type=float, default=8.0,
        help="sim-seconds per benign run (the flood --duration is far too "
             "short for session-scale traffic; default: 8)",
    )
    bench_sim.add_argument("--mean-session-interval", type=float, default=6.0,
                           help="benign: mean seconds between device sessions")
    bench_sim.add_argument("--mean-dns-interval", type=float, default=2.0,
                           help="benign: mean seconds between DNS lookups")
    bench_sim.add_argument(
        "--assert-speedup", type=float, default=None,
        help="benign: exit non-zero if batch/scalar pkt/s speedup at the "
             "largest node count falls below this (CI floor)",
    )
    bench_sim.set_defaults(fn=cmd_bench_sim)

    profile = sub.add_parser(
        "profile",
        help="profile the event kernel on a flood scene and attribute wall "
             "time per subsystem",
    )
    profile.add_argument("--nodes", type=int, default=64, help="attacker count")
    profile.add_argument("--pps", type=float, default=20000.0)
    profile.add_argument("--duration", type=float, default=0.05)
    profile.add_argument("--seed", type=int, default=7)
    profile.add_argument(
        "--attack", default="syn", choices=["syn", "udp", "ack", "http"]
    )
    profile.add_argument("--segment-size", type=int, default=64,
                         help="devices per CSMA segment (0 = flat LAN)")
    profile.add_argument("--scalar", action="store_true",
                         help="profile the scalar per-packet path instead of batch")
    profile.add_argument("--top", type=int, default=15,
                         help="callsite rows in the table (default: 15)")
    profile.add_argument(
        "--no-wall", action="store_true",
        help="event/train counts only — byte-identical output for a seed",
    )
    profile.add_argument("--flamegraph", default=None,
                         help="write a collapsed-stack file (flamegraph.pl input)")
    profile.add_argument("--flight", default=None,
                         help="write the run's flight-recorder dump as JSON")
    profile.add_argument("--json", default=None,
                         help="write the full profiler snapshot as JSON")
    profile.add_argument(
        "--min-attribution", type=float, default=None,
        help="exit non-zero if the named-subsystem share of measured wall "
             "time falls below this fraction (CI gate, e.g. 0.95)",
    )
    profile.set_defaults(fn=cmd_profile)

    bench_compare = sub.add_parser(
        "bench-compare",
        help="diff the newest bench-history entry against a baseline and "
             "flag regressions",
    )
    bench_compare.add_argument(
        "paths", nargs="*", default=["BENCH_sim.json", "BENCH_features.json"],
        help="bench history files (default: BENCH_sim.json BENCH_features.json)",
    )
    bench_compare.add_argument(
        "--section", action="append", default=[],
        help="restrict to a section (flood/benign/features); repeatable",
    )
    bench_compare.add_argument(
        "--tolerance", type=float, default=0.30,
        help="relative tolerance band before a delta counts as a regression "
             "(default: 0.30)",
    )
    bench_compare.add_argument(
        "--baseline", default=None,
        help="sha prefix of the baseline entry (default: the most recent "
             "earlier entry with a matching config fingerprint)",
    )
    bench_compare.add_argument(
        "--assert-no-regression", action="store_true",
        help="exit non-zero when any compared metric regresses beyond tolerance",
    )
    bench_compare.add_argument(
        "--require-baseline", action="store_true",
        help="exit non-zero when a section has no comparable baseline entry",
    )
    bench_compare.set_defaults(fn=cmd_bench_compare)

    def _add_observed_args(p: argparse.ArgumentParser) -> None:
        _add_scenario_args(p)
        p.add_argument("--train-duration", type=float, default=60.0)
        p.add_argument("--detect-duration", type=float, default=30.0)
        p.add_argument("--faults", action="store_true",
                       help="impair the detection phase with the scenario's fault plan")
        p.add_argument("--trace", default=None,
                       help="also write a Chrome trace_event JSON (chrome://tracing)")

    timeline = sub.add_parser(
        "timeline",
        help="run a telemetry-enabled experiment and chart the per-second timeline",
    )
    _add_observed_args(timeline)
    timeline.add_argument("--bucket-seconds", type=float, default=1.0)
    timeline.add_argument("--width", type=int, default=40,
                          help="traffic bar width in characters (default: 40)")
    timeline.add_argument("--csv", default=None, help="also write the timeline as CSV")
    timeline.add_argument("--json", default=None, help="also write the timeline as JSON")
    timeline.set_defaults(fn=cmd_timeline)

    metrics = sub.add_parser(
        "metrics",
        help="run a telemetry-enabled experiment and dump the metrics registry",
    )
    _add_observed_args(metrics)
    metrics.add_argument(
        "--no-wall", action="store_true",
        help="drop wall-clock-derived metrics (deterministic output for a seed)",
    )
    metrics.set_defaults(fn=cmd_metrics)

    lint = sub.add_parser(
        "lint", help="run the determinism linter against the committed baseline"
    )
    lint.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    lint.add_argument(
        "--root", default=None,
        help="repository root findings are reported relative to (default: cwd)",
    )
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument(
        "--baseline", default="analysis/baseline.json",
        help="baseline file, relative to --root",
    )
    lint.add_argument(
        "--update-baseline", action="store_true",
        help="accept all current findings into the baseline and exit",
    )
    lint.add_argument(
        "--no-baseline", action="store_true",
        help="report every finding, ignoring the baseline",
    )
    lint.set_defaults(fn=cmd_lint)

    parity = sub.add_parser(
        "check-parity",
        help="check batch/scalar dual-path parity and event commutativity",
    )
    parity.add_argument(
        "paths", nargs="*", default=[],
        help="files or directories to check (default: the dual-path subtrees "
        "src/repro/{sim,ids,testbed,botnet})",
    )
    parity.add_argument(
        "--root", default=None,
        help="repository root findings are reported relative to (default: cwd)",
    )
    parity.add_argument("--format", choices=("text", "json"), default="text")
    parity.add_argument(
        "--baseline", default="analysis/parity_baseline.json",
        help="baseline file, relative to --root",
    )
    parity.add_argument(
        "--update-baseline", action="store_true",
        help="accept all current findings into the baseline and exit",
    )
    parity.add_argument(
        "--no-baseline", action="store_true",
        help="report every finding, ignoring the baseline",
    )
    parity.set_defaults(fn=cmd_check_parity)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
