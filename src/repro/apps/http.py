"""HTTP server and client (the TServer's Apache analogue).

The server publishes a small site of pages with deterministic,
seed-derived sizes; clients request random pages and read the response.
Requests and responses are literal HTTP/1.0-style messages so captures
look like web traffic, with response bodies carried as virtual payload
bytes of the advertised Content-Length.
"""

from __future__ import annotations

import random

from repro.containers.container import Process
from repro.sim.address import Ipv4Address
from repro.sim.tcp import TcpSocket

HTTP_PORT = 80


class HttpServer(Process):
    """Serves GET requests for a generated site on port 80."""

    name = "http-server"

    def __init__(
        self,
        port: int = HTTP_PORT,
        n_pages: int = 32,
        min_page_bytes: int = 2_000,
        max_page_bytes: int = 60_000,
        seed: int = 1,
    ) -> None:
        super().__init__()
        self.port = port
        rng = random.Random(seed)
        self.pages = {
            f"/page{i}.html": rng.randint(min_page_bytes, max_page_bytes)
            for i in range(n_pages)
        }
        self.requests_served = 0
        self.not_found = 0
        self._listener = None

    def on_start(self) -> None:
        self._listener = self.node.tcp.listen(self.port, self._on_accept)

    def on_stop(self) -> None:
        if self._listener is not None:
            self._listener.close()

    def page_names(self) -> list[str]:
        return sorted(self.pages)

    def _on_accept(self, sock: TcpSocket) -> None:
        sock.on_data = self._on_request
        sock.on_data_batch = self._on_request_batch

    def _on_request_batch(self, sock: TcpSocket, batch) -> None:
        """Trains reaching the listener parse per message: requests are
        message-oriented, so a batched delivery replays the scalar twin
        row by row (responses still leave as batched send windows)."""
        for packet in batch.packets():
            self._on_request(sock, packet.payload, packet.data_len, packet.app_data)

    def _on_request(self, sock: TcpSocket, payload: bytes, length: int, app_data: object) -> None:
        if not sock.writable:
            return  # request raced with our close (pipelined clients)
        line = payload.decode("ascii", errors="replace").split("\r\n", 1)[0]
        parts = line.split(" ")
        path = parts[1] if len(parts) >= 2 else "/"
        size = self.pages.get(path)
        if size is None:
            self.not_found += 1
            sock.send(b"HTTP/1.0 404 Not Found\r\n\r\n", app_data=("http", 404))
        else:
            self.requests_served += 1
            header = (
                f"HTTP/1.0 200 OK\r\nContent-Length: {size}\r\n\r\n"
            ).encode("ascii")
            sock.send(header, length=len(header) + size, app_data=("http", 200))
        sock.close()


class HttpClient(Process):
    """Fetches random pages from a server at exponential think intervals."""

    name = "http-client"

    def __init__(
        self,
        server: Ipv4Address,
        pages: list[str],
        port: int = HTTP_PORT,
        mean_interval: float = 5.0,
        seed: int = 2,
        start_delay: float = 0.0,
    ) -> None:
        super().__init__()
        self.server = server
        self.port = port
        self.pages = pages
        self.mean_interval = mean_interval
        self.rng = random.Random(seed)
        self.start_delay = start_delay
        self.completed = 0
        self.failed = 0
        self.bytes_fetched = 0
        self._next_event = None

    def on_start(self) -> None:
        self._next_event = self.sim.schedule(
            self.start_delay + self.rng.expovariate(1.0 / self.mean_interval),
            self._fetch,
        )

    def on_stop(self) -> None:
        if self._next_event is not None:
            self._next_event.cancel()

    def fetch_once(self, path: str | None = None) -> None:
        """Issue a single GET immediately (used by tests and examples)."""
        chosen = path if path is not None else self.rng.choice(self.pages)
        sock = self.node.tcp.socket()
        request = f"GET {chosen} HTTP/1.0\r\nHost: tserver\r\n\r\n".encode("ascii")

        def on_established(s: TcpSocket) -> None:
            s.send(request, app_data=("http-get", chosen))

        def on_data(s: TcpSocket, payload: bytes, length: int, app_data: object) -> None:
            self.bytes_fetched += length
            if app_data is not None:  # final segment of the response
                self.completed += 1
                s.close()

        def on_data_batch(s: TcpSocket, batch) -> None:
            self.bytes_fetched += int(batch.payload_len.sum())
            if batch.app_data is not None and any(
                tag is not None for tag in batch.app_data
            ):  # the train carries the response's final segment
                self.completed += 1
                s.close()

        sock.on_data = on_data
        sock.on_data_batch = on_data_batch
        sock.on_reset = lambda s: self._count_failure()
        sock.connect(self.server, self.port, on_established)

    def _count_failure(self) -> None:
        self.failed += 1

    def _fetch(self) -> None:
        if not self.running:
            return
        self.fetch_once()
        self._next_event = self.sim.schedule(
            self.rng.expovariate(1.0 / self.mean_interval), self._fetch
        )
