"""RTMP-style video streaming (the TServer's Nginx-RTMP analogue).

A client connects to port 1935 and sends a ``play`` command; the server
then pushes fixed-interval chunks sized to the stream's bitrate for the
session duration, ending with an end-of-stream marker.  The result is the
long-lived, high-volume, steady-rate flow class the paper's benign mix
needs next to bursty HTTP and bulk FTP.
"""

from __future__ import annotations

import random

from repro.containers.container import Process
from repro.sim.address import Ipv4Address
from repro.sim.core import Event
from repro.sim.tcp import TcpSocket

RTMP_PORT = 1935


class RtmpServer(Process):
    """Streams chunked video to players on port 1935."""

    name = "rtmp-server"

    def __init__(
        self,
        port: int = RTMP_PORT,
        bitrate_bps: float = 800_000.0,
        chunk_interval: float = 0.1,
    ) -> None:
        super().__init__()
        self.port = port
        self.bitrate_bps = bitrate_bps
        self.chunk_interval = chunk_interval
        self.sessions_started = 0
        self.sessions_completed = 0
        self._listener = None
        self._active: dict[TcpSocket, Event] = {}

    @property
    def chunk_bytes(self) -> int:
        return int(self.bitrate_bps / 8 * self.chunk_interval)

    def on_start(self) -> None:
        self._listener = self.node.tcp.listen(self.port, self._on_accept)

    def on_stop(self) -> None:
        if self._listener is not None:
            self._listener.close()
        for event in self._active.values():
            event.cancel()
        self._active.clear()

    def _on_accept(self, sock: TcpSocket) -> None:
        sock.on_data = self._on_command
        sock.on_data_batch = self._on_command_batch
        sock.on_reset = lambda s: self._end_session(s, completed=False)
        sock.on_close = lambda s: self._end_session(s, completed=False)

    def _on_command_batch(self, sock: TcpSocket, batch) -> None:
        """Commands are message-oriented: a batched delivery replays the
        scalar twin row by row."""
        for packet in batch.packets():
            self._on_command(sock, packet.payload, packet.data_len, packet.app_data)

    def _on_command(self, sock: TcpSocket, payload: bytes, length: int, app_data: object) -> None:
        line = payload.decode("ascii", errors="replace").strip()
        verb, _, argument = line.partition(" ")
        if verb != "play":
            sock.send(b"error unsupported\r\n")
            sock.close()
            return
        try:
            duration = float(argument)
        except ValueError:
            duration = 10.0
        self.sessions_started += 1
        remaining = max(1, int(duration / self.chunk_interval))
        self._schedule_chunk(sock, remaining)

    def _schedule_chunk(self, sock: TcpSocket, remaining: int) -> None:
        event = self.sim.schedule(self.chunk_interval, self._push_chunk, sock, remaining)
        self._active[sock] = event

    def _push_chunk(self, sock: TcpSocket, remaining: int) -> None:
        if sock not in self._active:
            return
        from repro.sim.tcp import TcpState

        if sock.state is not TcpState.ESTABLISHED:
            self._end_session(sock, completed=False)
            return
        if remaining <= 1:
            sock.send(b"EOS", app_data=("rtmp", "end-of-stream"))
            sock.close()
            self._end_session(sock, completed=True)
            return
        sock.send(length=self.chunk_bytes, app_data=("rtmp", "chunk"))
        self._schedule_chunk(sock, remaining - 1)

    def _end_session(self, sock: TcpSocket, completed: bool) -> None:
        event = self._active.pop(sock, None)
        if event is not None:
            event.cancel()
            if completed:
                self.sessions_completed += 1


class RtmpClient(Process):
    """Periodically opens playback sessions of random duration."""

    name = "rtmp-client"

    def __init__(
        self,
        server: Ipv4Address,
        port: int = RTMP_PORT,
        mean_interval: float = 30.0,
        min_duration: float = 5.0,
        max_duration: float = 20.0,
        seed: int = 5,
        start_delay: float = 0.0,
    ) -> None:
        super().__init__()
        self.server = server
        self.port = port
        self.mean_interval = mean_interval
        self.min_duration = min_duration
        self.max_duration = max_duration
        self.rng = random.Random(seed)
        self.start_delay = start_delay
        self.sessions_completed = 0
        self.bytes_streamed = 0
        self.failed = 0
        self._next_event = None

    def on_start(self) -> None:
        self._next_event = self.sim.schedule(
            self.start_delay + self.rng.expovariate(1.0 / self.mean_interval),
            self._play,
        )

    def on_stop(self) -> None:
        if self._next_event is not None:
            self._next_event.cancel()

    def play_once(self, duration: float | None = None) -> None:
        """Open a single playback session immediately."""
        chosen = (
            duration
            if duration is not None
            else self.rng.uniform(self.min_duration, self.max_duration)
        )
        sock = self.node.tcp.socket()

        def on_established(s: TcpSocket) -> None:
            s.send(f"play {chosen:.3f}\r\n".encode("ascii"))

        def on_data(s: TcpSocket, payload: bytes, length: int, app_data: object) -> None:
            self.bytes_streamed += length
            if app_data == ("rtmp", "end-of-stream"):
                self.sessions_completed += 1

        def on_data_batch(s: TcpSocket, batch) -> None:
            self.bytes_streamed += int(batch.payload_len.sum())
            if batch.app_data is not None and ("rtmp", "end-of-stream") in batch.app_data:
                self.sessions_completed += 1

        sock.on_data = on_data
        sock.on_data_batch = on_data_batch
        sock.on_reset = lambda s: self._count_failure()
        sock.connect(self.server, self.port, on_established)

    def _count_failure(self) -> None:
        self.failed += 1

    def _play(self) -> None:
        if not self.running:
            return
        self.play_once()
        self._next_event = self.sim.schedule(
            self.rng.expovariate(1.0 / self.mean_interval), self._play
        )
