"""Benign UDP services: DNS lookups and NTP time sync.

IoT devices chatter constantly over UDP — name lookups before every
cloud call, periodic clock sync.  These small request/response exchanges
put benign UDP on the wire, so a UDP flood cannot be identified by the
protocol field alone (as on any real network).
"""

from __future__ import annotations

import random

from repro.containers.container import Process
from repro.sim.address import Ipv4Address

DNS_PORT = 53
NTP_PORT = 123


class DnsServer(Process):
    """Answers DNS queries with fixed-size responses."""

    name = "dns-server"

    def __init__(self, port: int = DNS_PORT, response_bytes: int = 120) -> None:
        super().__init__()
        self.port = port
        self.response_bytes = response_bytes
        self.queries_answered = 0
        self._sock = None

    def on_start(self) -> None:
        self._sock = self.node.udp.bind(self.port)
        self._sock.on_receive = self._answer

    def on_stop(self) -> None:
        if self._sock is not None:
            self._sock.close()

    def _answer(self, sock, payload, length, src, sport) -> None:
        self.queries_answered += 1
        sock.send_to(src, sport, length=self.response_bytes, app_data=("dns", "answer"))


class NtpServer(Process):
    """Answers NTP requests with 48-byte timestamps."""

    name = "ntp-server"

    def __init__(self, port: int = NTP_PORT) -> None:
        super().__init__()
        self.port = port
        self.requests_answered = 0
        self._sock = None

    def on_start(self) -> None:
        self._sock = self.node.udp.bind(self.port)
        self._sock.on_receive = self._answer

    def on_stop(self) -> None:
        if self._sock is not None:
            self._sock.close()

    def _answer(self, sock, payload, length, src, sport) -> None:
        self.requests_answered += 1
        sock.send_to(src, sport, length=48, app_data=("ntp", "reply"))


class UdpChatter(Process):
    """A device's background UDP behaviour: DNS queries and NTP syncs."""

    name = "udp-chatter"

    def __init__(
        self,
        server: Ipv4Address,
        mean_dns_interval: float = 2.0,
        mean_ntp_interval: float = 16.0,
        seed: int = 0,
        start_delay: float = 0.0,
    ) -> None:
        super().__init__()
        self.server = server
        self.mean_dns_interval = mean_dns_interval
        self.mean_ntp_interval = mean_ntp_interval
        self.rng = random.Random(seed)
        self.start_delay = start_delay
        self.queries_sent = 0
        self.responses_received = 0
        self._events = []
        self._sock = None

    def on_start(self) -> None:
        self._sock = self.node.udp.bind(0)
        self._sock.on_receive = self._on_response
        self._events = [
            self.sim.schedule(
                self.start_delay + self.rng.expovariate(1.0 / self.mean_dns_interval),
                self._dns_query,
            ),
            self.sim.schedule(
                self.start_delay + self.rng.expovariate(1.0 / self.mean_ntp_interval),
                self._ntp_sync,
            ),
        ]

    def on_stop(self) -> None:
        for event in self._events:
            event.cancel()
        if self._sock is not None:
            self._sock.close()

    def _on_response(self, sock, payload, length, src, sport) -> None:
        self.responses_received += 1

    def _dns_query(self) -> None:
        if not self.running:
            return
        self.queries_sent += 1
        name = f"device-{self.rng.randrange(64)}.iot.example"
        self._sock.send_to(
            self.server, DNS_PORT, length=30 + len(name), app_data=("dns", name)
        )
        self._events.append(
            self.sim.schedule(
                self.rng.expovariate(1.0 / self.mean_dns_interval), self._dns_query
            )
        )

    def _ntp_sync(self) -> None:
        if not self.running:
            return
        self.queries_sent += 1
        self._sock.send_to(self.server, NTP_PORT, length=48, app_data=("ntp", "req"))
        self._events.append(
            self.sim.schedule(
                self.rng.expovariate(1.0 / self.mean_ntp_interval), self._ntp_sync
            )
        )
