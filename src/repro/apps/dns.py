"""Benign UDP services: DNS lookups and NTP time sync.

IoT devices chatter constantly over UDP — name lookups before every
cloud call, periodic clock sync.  These small request/response exchanges
put benign UDP on the wire, so a UDP flood cannot be identified by the
protocol field alone (as on any real network).

The chatter generator runs on the anchored periodic kernel: one
drift-free tick per device (tick k fires at exactly ``t0 + k*tick``)
consumes every Poisson arrival that came due since the last tick and
emits them together — as one :class:`PacketBatch` train in batch mode,
or as back-to-back scalar datagrams otherwise.  Both modes draw from the
RNG in the identical order, so their emissions are bit-exact twins.
"""

from __future__ import annotations

import random

from repro.containers.container import Process
from repro.sim.address import Ipv4Address
from repro.sim.packet import PacketBatch

DNS_PORT = 53
NTP_PORT = 123


class DnsServer(Process):
    """Answers DNS queries with fixed-size responses."""

    name = "dns-server"

    def __init__(self, port: int = DNS_PORT, response_bytes: int = 120) -> None:
        super().__init__()
        self.port = port
        self.response_bytes = response_bytes
        self.queries_answered = 0
        self._sock = None

    def on_start(self) -> None:
        self._sock = self.node.udp.bind(self.port)
        self._sock.on_receive = self._answer
        self._sock.on_receive_batch = self._answer_batch

    def on_stop(self) -> None:
        if self._sock is not None:
            self._sock.close()

    def _answer(self, sock, payload, length, src, sport) -> None:
        self.queries_answered += 1
        sock.send_to(src, sport, length=self.response_bytes, app_data=("dns", "answer"))

    def _answer_batch(self, sock, batch) -> None:
        """Answer a query train with one response train (per-query
        content identical to the scalar twin's replies)."""
        n = len(batch)
        if n == 0:
            return
        self.queries_answered += n
        sock.send_to_batch(
            PacketBatch.udp_batch(
                n,
                src_ip=self.node.address.value,
                dst_ip=batch.src_ip,
                src_port=self.port,
                dst_port=batch.src_port,
                payload_len=self.response_bytes,
                app_data=(("dns", "answer"),) * n,
            )
        )


class NtpServer(Process):
    """Answers NTP requests with 48-byte timestamps."""

    name = "ntp-server"

    def __init__(self, port: int = NTP_PORT) -> None:
        super().__init__()
        self.port = port
        self.requests_answered = 0
        self._sock = None

    def on_start(self) -> None:
        self._sock = self.node.udp.bind(self.port)
        self._sock.on_receive = self._answer
        self._sock.on_receive_batch = self._answer_batch

    def on_stop(self) -> None:
        if self._sock is not None:
            self._sock.close()

    def _answer(self, sock, payload, length, src, sport) -> None:
        self.requests_answered += 1
        sock.send_to(src, sport, length=48, app_data=("ntp", "reply"))

    def _answer_batch(self, sock, batch) -> None:
        """Answer a request train with one 48-byte-reply train."""
        n = len(batch)
        if n == 0:
            return
        self.requests_answered += n
        sock.send_to_batch(
            PacketBatch.udp_batch(
                n,
                src_ip=self.node.address.value,
                dst_ip=batch.src_ip,
                src_port=self.port,
                dst_port=batch.src_port,
                payload_len=48,
                app_data=(("ntp", "reply"),) * n,
            )
        )


class UdpChatter(Process):
    """A device's background UDP behaviour: DNS queries and NTP syncs.

    Poisson arrival chains for both streams are maintained as absolute
    next-arrival times and consumed by one anchored periodic tick
    (``schedule_periodic``), so a long run never accumulates float
    drift and a dense device costs one event per tick, not one per
    datagram.  ``batch=True`` coalesces each tick's emissions into a
    single mixed DNS/NTP train.
    """

    name = "udp-chatter"

    def __init__(
        self,
        server: Ipv4Address,
        mean_dns_interval: float = 2.0,
        mean_ntp_interval: float = 16.0,
        seed: int = 0,
        start_delay: float = 0.0,
        tick: float | None = None,
        batch: bool = False,
    ) -> None:
        super().__init__()
        self.server = server
        self.mean_dns_interval = mean_dns_interval
        self.mean_ntp_interval = mean_ntp_interval
        self.rng = random.Random(seed)
        self.start_delay = start_delay
        self.tick = tick if tick is not None else min(
            mean_dns_interval, mean_ntp_interval
        )
        self.batch = batch
        self.queries_sent = 0
        self.responses_received = 0
        self._next_dns = 0.0
        self._next_ntp = 0.0
        self._ticker = None
        self._sock = None

    def on_start(self) -> None:
        self._sock = self.node.udp.bind(0)
        self._sock.on_receive = self._on_response
        self._sock.on_receive_batch = self._on_response_batch
        base = self.sim.now + self.start_delay
        self._next_dns = base + self.rng.expovariate(1.0 / self.mean_dns_interval)
        self._next_ntp = base + self.rng.expovariate(1.0 / self.mean_ntp_interval)
        # The bootstrap covers (base, base+tick]; the anchored ticker
        # takes over from base+tick with zero accumulated drift.
        self._boot = self.sim.schedule(self.start_delay, self._tick)
        self._ticker = self.sim.schedule_periodic(self.tick, self._tick, t0=base)

    def on_stop(self) -> None:
        if self._ticker is not None:
            self._ticker.cancel()
            self._ticker = None
        if self._boot is not None:
            self._boot.cancel()
            self._boot = None
        if self._sock is not None:
            self._sock.close()

    def _on_response(self, sock, payload, length, src, sport) -> None:
        self.responses_received += 1

    def _on_response_batch(self, sock, batch) -> None:
        self.responses_received += len(batch)

    def _tick(self) -> None:
        """Look ahead one tick window and book every datagram in it.

        Both Poisson chains are merged in chronological arrival order, so
        the RNG stream is consumed exactly as the old per-event chains
        consumed it, and scalar emissions keep their exact arrival
        instants (the tick only bounds the look-ahead).  In batch mode
        the window's datagrams leave as one train at the *last* arrival
        instant — the same train-end timing the channel gives TCP trains.
        """
        if not self.running:
            return
        horizon = self.sim.now + self.tick
        times: list[float] = []
        ports: list[int] = []
        lengths: list[int] = []
        tags: list[tuple] = []
        while True:
            t_dns, t_ntp = self._next_dns, self._next_ntp
            if t_dns > horizon and t_ntp > horizon:
                break
            if t_dns <= t_ntp:
                name = f"device-{self.rng.randrange(64)}.iot.example"
                times.append(t_dns)
                ports.append(DNS_PORT)
                lengths.append(30 + len(name))
                tags.append(("dns", name))
                self._next_dns = t_dns + self.rng.expovariate(
                    1.0 / self.mean_dns_interval
                )
            else:
                times.append(t_ntp)
                ports.append(NTP_PORT)
                lengths.append(48)
                tags.append(("ntp", "req"))
                self._next_ntp = t_ntp + self.rng.expovariate(
                    1.0 / self.mean_ntp_interval
                )
        if not times:
            return
        # Count at booking time: both modes consume identical arrivals,
        # so the counter is equal by construction even when the run cuts
        # off between a window's first arrival and its train emission.
        self.queries_sent += len(times)
        if self.batch and len(times) > 1:
            self.sim.schedule_abs(times[-1], self._emit_train, ports, lengths, tags)
            return
        for when, port, length, tag in zip(times, ports, lengths, tags):
            self.sim.schedule_abs(when, self._emit_one, port, length, tag)

    def _emit_one(self, port: int, length: int, tag: tuple) -> None:
        if not self.running or self._sock is None:
            return
        self._sock.send_to(self.server, port, length=length, app_data=tag)

    def _emit_train(self, ports: list[int], lengths: list[int], tags: list[tuple]) -> None:
        if not self.running or self._sock is None:
            return
        self._sock.send_to_batch(
            PacketBatch.udp_batch(
                len(ports),
                src_ip=self.node.address.value,
                dst_ip=self.server.value,
                src_port=self._sock.port,
                dst_port=ports,
                payload_len=lengths,
                app_data=tuple(tags),
            )
        )
