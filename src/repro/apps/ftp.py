"""FTP server and client (the TServer's customized FTP-Server analogue).

Implements the classic two-channel FTP shape: a control connection on
port 21 carrying USER/PASS/PORT/RETR/226 exchanges, and a separate
active-mode data connection from the server's port 20 to a client-chosen
data port for the file bytes.  The multi-connection structure matters to
the IDS features (short-lived control dialogs next to bulk data flows).
"""

from __future__ import annotations

import random

from repro.containers.container import Process
from repro.sim.address import Ipv4Address
from repro.sim.tcp import TcpSocket

FTP_CONTROL_PORT = 21
FTP_DATA_PORT = 20


class FtpServer(Process):
    """An authenticating FTP server with a seeded catalogue of files."""

    name = "ftp-server"

    def __init__(
        self,
        port: int = FTP_CONTROL_PORT,
        n_files: int = 12,
        min_file_bytes: int = 50_000,
        max_file_bytes: int = 400_000,
        users: dict[str, str] | None = None,
        seed: int = 3,
    ) -> None:
        super().__init__()
        self.port = port
        rng = random.Random(seed)
        self.files = {
            f"firmware-{i}.bin": rng.randint(min_file_bytes, max_file_bytes)
            for i in range(n_files)
        }
        self.users = users or {"iot": "iot123", "anonymous": ""}
        self.transfers_completed = 0
        self.auth_failures = 0
        self._listener = None

    def on_start(self) -> None:
        self._listener = self.node.tcp.listen(self.port, self._on_accept)

    def on_stop(self) -> None:
        if self._listener is not None:
            self._listener.close()

    def file_names(self) -> list[str]:
        return sorted(self.files)

    def _on_accept(self, sock: TcpSocket) -> None:
        session = {"user": None, "authed": False, "data_port": None}
        sock.on_data = lambda s, p, n, a: self._on_command(s, p, session)
        sock.on_data_batch = lambda s, batch: self._on_command_batch(s, batch, session)
        sock.send(b"220 ddoshield-ftp ready\r\n")

    def _on_command_batch(self, sock: TcpSocket, batch, session: dict) -> None:
        """Control dialogs are message-oriented: a batched delivery of
        pipelined commands replays the scalar twin row by row."""
        for packet in batch.packets():
            self._on_command(sock, packet.payload, session)

    def _on_command(self, sock: TcpSocket, payload: bytes, session: dict) -> None:
        line = payload.decode("ascii", errors="replace").strip()
        verb, _, argument = line.partition(" ")
        verb = verb.upper()
        if verb == "USER":
            session["user"] = argument
            sock.send(b"331 password required\r\n")
        elif verb == "PASS":
            expected = self.users.get(session["user"] or "")
            if expected is not None and argument == expected:
                session["authed"] = True
                sock.send(b"230 login ok\r\n")
            else:
                self.auth_failures += 1
                sock.send(b"530 login incorrect\r\n")
        elif verb == "PORT":
            session["data_port"] = int(argument)
            sock.send(b"200 port accepted\r\n")
        elif verb == "RETR":
            self._retrieve(sock, argument, session)
        elif verb == "QUIT":
            sock.send(b"221 goodbye\r\n")
            sock.close()
        else:
            sock.send(b"502 command not implemented\r\n")

    def _retrieve(self, control: TcpSocket, filename: str, session: dict) -> None:
        if not session["authed"]:
            control.send(b"530 not logged in\r\n")
            return
        size = self.files.get(filename)
        if size is None:
            control.send(b"550 no such file\r\n")
            return
        if session["data_port"] is None:
            control.send(b"425 use PORT first\r\n")
            return
        control.send(b"150 opening data connection\r\n")
        assert control.remote_address is not None
        data_sock = self.node.tcp.socket()

        def on_established(s: TcpSocket) -> None:
            # Queue the whole file and close; TCP flushes before the FIN,
            # so the client's data-channel EOF marks transfer completion.
            s.send(length=size, app_data=("ftp-data", filename))
            s.close()
            self.transfers_completed += 1
            control.send(b"226 transfer complete\r\n")

        data_sock.connect(control.remote_address, session["data_port"], on_established)


class FtpClient(Process):
    """Logs in, downloads random files at exponential intervals."""

    name = "ftp-client"

    def __init__(
        self,
        server: Ipv4Address,
        files: list[str],
        port: int = FTP_CONTROL_PORT,
        user: str = "iot",
        password: str = "iot123",
        mean_interval: float = 20.0,
        seed: int = 4,
        start_delay: float = 0.0,
    ) -> None:
        super().__init__()
        self.server = server
        self.port = port
        self.files = files
        self.user = user
        self.password = password
        self.mean_interval = mean_interval
        self.rng = random.Random(seed)
        self.start_delay = start_delay
        self.downloads_completed = 0
        self.bytes_downloaded = 0
        self.failed = 0
        self._next_event = None

    def on_start(self) -> None:
        self._next_event = self.sim.schedule(
            self.start_delay + self.rng.expovariate(1.0 / self.mean_interval),
            self._download,
        )

    def on_stop(self) -> None:
        if self._next_event is not None:
            self._next_event.cancel()

    def download_once(self, filename: str | None = None) -> None:
        """Run one full control+data FTP session immediately."""
        chosen = filename if filename is not None else self.rng.choice(self.files)
        data_listener_port = self.node.tcp.allocate_port()
        received = {"bytes": 0, "eof": False}
        control = self.node.tcp.socket()

        def on_data_conn(data_sock: TcpSocket) -> None:
            def on_data(s: TcpSocket, payload: bytes, length: int, app_data: object) -> None:
                received["bytes"] += length
                self.bytes_downloaded += length

            def on_data_batch(s: TcpSocket, batch) -> None:
                total = int(batch.payload_len.sum())
                received["bytes"] += total
                self.bytes_downloaded += total

            def on_data_eof(s: TcpSocket) -> None:
                # Server FIN after in-order delivery = complete file.
                if not received["eof"]:
                    received["eof"] = True
                    self.downloads_completed += 1
                    control.send(b"QUIT\r\n")

            data_sock.on_data = on_data
            data_sock.on_data_batch = on_data_batch
            data_sock.on_close = on_data_eof

        data_listener = self.node.tcp.listen(data_listener_port, on_data_conn)

        def on_control_data(sock: TcpSocket, payload: bytes, length: int, app_data: object) -> None:
            message = payload.decode("ascii", errors="replace")
            code = message[:3]
            if code == "220":
                sock.send(f"USER {self.user}\r\n".encode())
            elif code == "331":
                sock.send(f"PASS {self.password}\r\n".encode())
            elif code == "230":
                sock.send(f"PORT {data_listener_port}\r\n".encode())
            elif code == "200":
                sock.send(f"RETR {chosen}\r\n".encode())
            elif code == "221":
                sock.close()
                data_listener.close()
            elif code in ("530", "550", "425", "502"):
                self.failed += 1
                sock.close()
                data_listener.close()

        control.on_data = on_control_data
        control.on_reset = lambda s: (data_listener.close(), self._count_failure())
        control.connect(self.server, self.port)

    def _count_failure(self) -> None:
        self.failed += 1

    def _download(self) -> None:
        if not self.running:
            return
        self.download_once()
        self._next_event = self.sim.schedule(
            self.rng.expovariate(1.0 / self.mean_interval), self._download
        )
