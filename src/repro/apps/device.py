"""IoT device behaviour profiles.

Each Dev container runs a :class:`DeviceProfile`: a weighted mix of the
three benign clients (HTTP, FTP, RTMP) aimed at the TServer, plus the
vulnerable telnet service the Mirai scanner exploits (installed
separately by the testbed builder).  The mix and pacing are seeded per
device so the fleet's aggregate traffic is diverse but reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.apps.ftp import FtpClient
from repro.apps.http import HttpClient
from repro.apps.rtmp import RtmpClient
from repro.containers.container import Process
from repro.sim.address import Ipv4Address


@dataclass(frozen=True)
class TrafficMix:
    """Relative weights and pacing for a device's benign sessions."""

    http_weight: float = 0.6
    ftp_weight: float = 0.15
    rtmp_weight: float = 0.25
    mean_session_interval: float = 8.0

    def __post_init__(self) -> None:
        total = self.http_weight + self.ftp_weight + self.rtmp_weight
        if total <= 0:
            raise ValueError("traffic mix weights must sum to a positive value")


class DeviceProfile(Process):
    """Drives a device's benign sessions against the TServer."""

    name = "device-profile"

    def __init__(
        self,
        tserver: Ipv4Address,
        http_pages: list[str],
        ftp_files: list[str],
        mix: TrafficMix | None = None,
        seed: int = 0,
        start_delay: float = 0.0,
        rtmp_duration: tuple[float, float] = (4.0, 10.0),
    ) -> None:
        super().__init__()
        self.tserver = tserver
        self.mix = mix or TrafficMix()
        self.rng = random.Random(seed)
        self.start_delay = start_delay
        self.http = HttpClient(tserver, http_pages, mean_interval=1e9, seed=seed * 3 + 1)
        self.ftp = FtpClient(tserver, ftp_files, mean_interval=1e9, seed=seed * 3 + 2)
        self.rtmp = RtmpClient(
            tserver,
            mean_interval=1e9,
            min_duration=rtmp_duration[0],
            max_duration=rtmp_duration[1],
            seed=seed * 3 + 3,
        )
        self.sessions_started = 0
        self._next_event = None

    def on_start(self) -> None:
        # Sub-clients are driven by this profile, not their own timers:
        # their huge mean_interval means they never self-schedule.
        for client in (self.http, self.ftp, self.rtmp):
            client.container = self.container
            client.running = True
        self._next_event = self.sim.schedule(
            self.start_delay + self.rng.expovariate(1.0 / self.mix.mean_session_interval),
            self._session,
        )

    def on_stop(self) -> None:
        if self._next_event is not None:
            self._next_event.cancel()
        for client in (self.http, self.ftp, self.rtmp):
            client.running = False

    def _session(self) -> None:
        if not self.running:
            return
        self.sessions_started += 1
        weights = (self.mix.http_weight, self.mix.ftp_weight, self.mix.rtmp_weight)
        kind = self.rng.choices(("http", "ftp", "rtmp"), weights=weights)[0]
        if kind == "http":
            self.http.fetch_once()
        elif kind == "ftp":
            self.ftp.download_once()
        else:
            self.rtmp.play_once()
        self._next_event = self.sim.schedule(
            self.rng.expovariate(1.0 / self.mix.mean_session_interval), self._session
        )
