"""IoT device behaviour profiles.

Each Dev container runs a :class:`DeviceProfile`: a weighted mix of the
three benign clients (HTTP, FTP, RTMP) aimed at the TServer, plus the
vulnerable telnet service the Mirai scanner exploits (installed
separately by the testbed builder).  The mix and pacing are seeded per
device so the fleet's aggregate traffic is diverse but reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.apps.ftp import FtpClient
from repro.apps.http import HttpClient
from repro.apps.rtmp import RtmpClient
from repro.containers.container import Process
from repro.sim.address import Ipv4Address


@dataclass(frozen=True)
class TrafficMix:
    """Relative weights and pacing for a device's benign sessions."""

    http_weight: float = 0.6
    ftp_weight: float = 0.15
    rtmp_weight: float = 0.25
    mean_session_interval: float = 8.0

    def __post_init__(self) -> None:
        total = self.http_weight + self.ftp_weight + self.rtmp_weight
        if total <= 0:
            raise ValueError("traffic mix weights must sum to a positive value")


class DeviceProfile(Process):
    """Drives a device's benign sessions against the TServer.

    Session launches follow a Poisson arrival chain held as absolute
    next-arrival times and consumed by one anchored periodic tick
    (``schedule_periodic``, tick k at exactly ``t0 + k*tick``): long
    runs stay drift-free, and each tick books the coming window's
    launches at their exact arrival instants — timing identical to the
    old self-rescheduling chain, but drawn ahead in arrival order.
    """

    name = "device-profile"

    def __init__(
        self,
        tserver: Ipv4Address,
        http_pages: list[str],
        ftp_files: list[str],
        mix: TrafficMix | None = None,
        seed: int = 0,
        start_delay: float = 0.0,
        rtmp_duration: tuple[float, float] = (4.0, 10.0),
        tick: float | None = None,
    ) -> None:
        super().__init__()
        self.tserver = tserver
        self.mix = mix or TrafficMix()
        self.rng = random.Random(seed)
        self.start_delay = start_delay
        self.tick = tick if tick is not None else self.mix.mean_session_interval / 2
        self.http = HttpClient(tserver, http_pages, mean_interval=1e9, seed=seed * 3 + 1)
        self.ftp = FtpClient(tserver, ftp_files, mean_interval=1e9, seed=seed * 3 + 2)
        self.rtmp = RtmpClient(
            tserver,
            mean_interval=1e9,
            min_duration=rtmp_duration[0],
            max_duration=rtmp_duration[1],
            seed=seed * 3 + 3,
        )
        self.sessions_started = 0
        self._next_session = 0.0
        self._ticker = None
        self._boot = None

    def on_start(self) -> None:
        # Sub-clients are driven by this profile, not their own timers:
        # their huge mean_interval means they never self-schedule.
        for client in (self.http, self.ftp, self.rtmp):
            client.container = self.container
            client.running = True
        base = self.sim.now + self.start_delay
        self._next_session = base + self.rng.expovariate(
            1.0 / self.mix.mean_session_interval
        )
        # The bootstrap covers (base, base+tick]; the anchored ticker
        # takes over from base+tick with zero accumulated drift.
        self._boot = self.sim.schedule(self.start_delay, self._tick)
        self._ticker = self.sim.schedule_periodic(self.tick, self._tick, t0=base)

    def on_stop(self) -> None:
        if self._ticker is not None:
            self._ticker.cancel()
            self._ticker = None
        if self._boot is not None:
            self._boot.cancel()
            self._boot = None
        for client in (self.http, self.ftp, self.rtmp):
            client.running = False

    def _tick(self) -> None:
        """Look ahead one tick window and book every session in it.

        Launches are scheduled at their exact Poisson arrival instants,
        so traffic timing is independent of the tick size — the tick
        only bounds how far ahead arrivals are drawn.  Draws stay in
        arrival order (kind, then gap), the same stream the
        self-rescheduling implementation consumed.
        """
        if not self.running:
            return
        horizon = self.sim.now + self.tick
        weights = (self.mix.http_weight, self.mix.ftp_weight, self.mix.rtmp_weight)
        while self._next_session <= horizon:
            kind = self.rng.choices(("http", "ftp", "rtmp"), weights=weights)[0]
            self.sim.schedule_abs(self._next_session, self._launch_session, kind)
            self._next_session += self.rng.expovariate(
                1.0 / self.mix.mean_session_interval
            )

    def _launch_session(self, kind: str) -> None:
        if not self.running:
            return
        self.sessions_started += 1
        if kind == "http":
            self.http.fetch_once()
        elif kind == "ftp":
            self.ftp.download_once()
        else:
            self.rtmp.play_once()
