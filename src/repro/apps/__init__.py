"""Benign traffic applications (the TServer's Apache / Nginx-RTMP / FTP).

The paper's TServer hosts three real servers that generate the benign
side of the dataset: HTTP traffic (Apache), video streaming (Nginx RTMP),
and file transfer (custom FTP server).  Device containers run the
matching clients.  Every app here is a
:class:`~repro.containers.container.Process` speaking through the
simulated TCP stack, so benign flows have genuine handshakes, segment
sizes, and teardowns for the IDS to learn from.
"""

from repro.apps.device import DeviceProfile, TrafficMix
from repro.apps.dns import DnsServer, NtpServer, UdpChatter
from repro.apps.ftp import FtpClient, FtpServer
from repro.apps.http import HttpClient, HttpServer
from repro.apps.rtmp import RtmpClient, RtmpServer

__all__ = [
    "DeviceProfile",
    "DnsServer",
    "FtpClient",
    "FtpServer",
    "HttpClient",
    "HttpServer",
    "NtpServer",
    "RtmpClient",
    "RtmpServer",
    "TrafficMix",
    "UdpChatter",
]
