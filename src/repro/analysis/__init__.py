"""Correctness tooling for the testbed: determinism linter + sanitizers.

The paper's evaluation (per-second accuracy timelines, resource tables)
is only meaningful when the same seed reproduces the same packet
schedule.  This subpackage defends that property on two fronts:

* **static** — :mod:`repro.analysis.rules` / :mod:`repro.analysis.walker`
  implement an AST determinism linter (``ddoshield lint``) that flags
  unseeded global RNG use, wall-clock reads, unordered ``set`` iteration,
  float equality against simulation time, mutable default arguments and
  ``id()``-based tie-breaking, with ``# repro: lint-ok[rule-id]``
  suppressions and a committed baseline (:mod:`repro.analysis.baseline`);
* **dynamic** — :mod:`repro.analysis.sanitizers` provides opt-in runtime
  invariant checkers (``Simulator(sanitize=True)`` / ``REPRO_SANITIZE=1``)
  for event-time monotonicity, queue/channel packet conservation,
  socket/port leaks at teardown, and resource-accounting consistency.
"""

from repro.analysis.baseline import Baseline, diff_findings
from repro.analysis.report import Finding, LintReport, format_json, format_text
from repro.analysis.rules import RULES, Rule, iter_rules, rule
from repro.analysis.sanitizers import (
    Sanitizer,
    SanitizerError,
    Violation,
    sanitize_mode_from_env,
)
from repro.analysis.walker import LintContext, lint_paths, lint_source

__all__ = [
    "Baseline",
    "Finding",
    "LintContext",
    "LintReport",
    "RULES",
    "Rule",
    "Sanitizer",
    "SanitizerError",
    "Violation",
    "diff_findings",
    "format_json",
    "format_text",
    "iter_rules",
    "lint_paths",
    "lint_source",
    "rule",
    "sanitize_mode_from_env",
]
