"""Correctness tooling for the testbed: determinism linter + sanitizers.

The paper's evaluation (per-second accuracy timelines, resource tables)
is only meaningful when the same seed reproduces the same packet
schedule.  This subpackage defends that property on two fronts:

* **static** — :mod:`repro.analysis.rules` / :mod:`repro.analysis.walker`
  implement an AST determinism linter (``ddoshield lint``) that flags
  unseeded global RNG use, wall-clock reads, unordered ``set`` iteration,
  float equality against simulation time, mutable default arguments and
  ``id()``-based tie-breaking, with ``# repro: lint-ok[rule-id]``
  suppressions and a committed baseline (:mod:`repro.analysis.baseline`);
* **parity** — :mod:`repro.analysis.parity` / :mod:`repro.analysis.effects`
  implement the dual-path parity checker (``ddoshield check-parity``):
  AST effect summaries compare each scalar method against its ``_batch``
  twin (BAT001–BAT004) and an event-commutativity analyzer flags
  same-bucket handlers whose state writes do not commute (ORD002);
* **dynamic** — :mod:`repro.analysis.sanitizers` provides opt-in runtime
  invariant checkers (``Simulator(sanitize=True)`` / ``REPRO_SANITIZE=1``)
  for event-time monotonicity, queue/channel packet conservation,
  socket/port leaks at teardown, and resource-accounting consistency,
  plus the bucket-shuffle race detector seed (``REPRO_SHUFFLE`` /
  ``Simulator(shuffle_buckets=…)``) that dynamically stresses what
  ORD002 reasons about statically.
"""

from repro.analysis.baseline import Baseline, diff_findings
from repro.analysis.effects import (
    ClassEffects,
    EffectSummary,
    collect_class_effects,
)
from repro.analysis.parity import (
    DEFAULT_PARITY_PATHS,
    PARITY_RULE_IDS,
    check_parity_paths,
    discover_pairs,
)
from repro.analysis.report import Finding, LintReport, format_json, format_text
from repro.analysis.rules import RULES, Rule, iter_rules, rule
from repro.analysis.sanitizers import (
    Sanitizer,
    SanitizerError,
    Violation,
    sanitize_mode_from_env,
    shuffle_seed_from_env,
)
from repro.analysis.walker import (
    PARSE_RULE_ID,
    LintContext,
    lint_paths,
    lint_source,
    parse_failure_finding,
)

__all__ = [
    "Baseline",
    "ClassEffects",
    "DEFAULT_PARITY_PATHS",
    "EffectSummary",
    "Finding",
    "LintContext",
    "LintReport",
    "PARITY_RULE_IDS",
    "PARSE_RULE_ID",
    "RULES",
    "Rule",
    "Sanitizer",
    "SanitizerError",
    "Violation",
    "check_parity_paths",
    "collect_class_effects",
    "diff_findings",
    "discover_pairs",
    "format_json",
    "format_text",
    "iter_rules",
    "lint_paths",
    "lint_source",
    "parse_failure_finding",
    "rule",
    "sanitize_mode_from_env",
    "shuffle_seed_from_env",
]
