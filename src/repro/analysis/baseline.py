"""Committed lint baseline: only *new* findings fail a run.

The baseline (``analysis/baseline.json``) records the fingerprint of
every accepted finding plus an optional justification.  Fingerprints
hash the rule, file and source snippet — not the line number — so
unrelated edits do not invalidate entries; entries whose code was fixed
become *stale* and are pruned on ``--update-baseline``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.report import Finding, LintReport, fingerprint_all

BASELINE_VERSION = 1


@dataclass
class Baseline:
    """A set of accepted findings keyed by fingerprint."""

    entries: dict[str, dict] = field(default_factory=dict)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        file = Path(path)
        if not file.exists():
            return cls()
        payload = json.loads(file.read_text(encoding="utf-8"))
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} in {file} "
                f"(expected {BASELINE_VERSION})"
            )
        entries = {item["fingerprint"]: item for item in payload.get("findings", [])}
        return cls(entries=entries)

    def save(self, path: str | Path) -> Path:
        file = Path(path)
        file.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": BASELINE_VERSION,
            "findings": [
                self.entries[key] for key in sorted(self.entries)
            ],
        }
        file.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return file

    @classmethod
    def from_findings(
        cls, findings: list[Finding], justifications: dict[str, str] | None = None
    ) -> "Baseline":
        """Build a baseline accepting every current finding.

        ``justifications`` maps fingerprints to human explanations;
        existing justifications are preserved by the CLI when updating.
        """
        justifications = justifications or {}
        entries: dict[str, dict] = {}
        for fingerprint, finding in fingerprint_all(findings).items():
            entries[fingerprint] = {
                "fingerprint": fingerprint,
                "rule_id": finding.rule_id,
                "path": finding.path,
                "snippet": finding.snippet,
                "justification": justifications.get(fingerprint, ""),
            }
        return cls(entries=entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.entries

    def __len__(self) -> int:
        return len(self.entries)


def diff_findings(
    findings: list[Finding],
    baseline: Baseline,
    suppressed: int = 0,
    files_checked: int = 0,
) -> LintReport:
    """Split findings into new vs baselined, and spot stale entries."""
    fingerprinted = fingerprint_all(findings)
    new: list[Finding] = []
    known: list[Finding] = []
    for fingerprint, finding in fingerprinted.items():
        (known if fingerprint in baseline else new).append(finding)
    stale = sorted(set(baseline.entries) - set(fingerprinted))
    return LintReport(
        findings=list(findings),
        new=sorted(new, key=lambda f: (f.path, f.line, f.col)),
        baselined=sorted(known, key=lambda f: (f.path, f.line, f.col)),
        suppressed=suppressed,
        stale_fingerprints=stale,
        files_checked=files_checked,
    )
