"""Runtime simulation sanitizers (TSan/ASan-style, for the event kernel).

Opt-in invariant checkers enabled with ``Simulator(sanitize=True)`` or
``REPRO_SANITIZE=1``.  Components self-register as they are built (net
device queues, channels, TCP stacks, resource accountants) and the
simulator consults the sanitizer:

* per executed event — **event-time monotonicity** (no event may run
  before current virtual time);
* at every ``run()`` drain — **packet conservation** per queue
  (``enqueued == dequeued + flushed + len(queue)``) and per channel
  (``dequeued == delivered + impaired + in-flight``), plus
  **resource-accounting consistency** (ledger matches live allocations);
* at :meth:`~repro.sim.core.Simulator.finalize` — **socket/port leak
  detection** (no CLOSED-but-registered sockets, no ephemeral port held
  without an owner).

Each violation raises :class:`SanitizerError` with a context snapshot in
fatal mode (the default), or is collected on ``Sanitizer.violations``
with ``Simulator(sanitize="collect")`` / ``REPRO_SANITIZE=collect``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.containers.resources import ResourceAccountant
    from repro.sim.channel import CsmaChannel
    from repro.sim.queue import DropTailQueue
    from repro.sim.tcp import TcpStack

#: Truthy spellings accepted by the REPRO_SANITIZE environment variable.
_ENV_TRUE = frozenset({"1", "true", "yes", "on"})
_ENV_FALSE = frozenset({"", "0", "false", "no", "off"})


def shuffle_seed_from_env(env: dict[str, str] | None = None) -> int | None:
    """Resolve ``REPRO_SHUFFLE`` to a bucket-shuffle seed (None = off).

    The seed drives :class:`~repro.sim.core.Simulator`'s deterministic
    permutation of equal-``(time, priority)`` event buckets — the
    runtime race detector for handlers ORD002 reasons about statically.
    """
    raw = (env if env is not None else os.environ).get("REPRO_SHUFFLE", "")
    value = raw.strip()
    if value == "" or value.lower() in ("0", "off", "false", "no"):
        return None
    try:
        return int(value, 0)
    except ValueError:
        raise ValueError(
            f"REPRO_SHUFFLE={raw!r} not understood (integer seed, or empty/0 "
            "to disable)"
        ) from None


def sanitize_mode_from_env(env: dict[str, str] | None = None) -> bool | str:
    """Resolve ``REPRO_SANITIZE`` to False / True / ``"collect"``."""
    raw = (env if env is not None else os.environ).get("REPRO_SANITIZE", "")
    value = raw.strip().lower()
    if value in _ENV_FALSE:
        return False
    if value in _ENV_TRUE:
        return True
    if value == "collect":
        return "collect"
    raise ValueError(
        f"REPRO_SANITIZE={raw!r} not understood (use 1/0 or 'collect')"
    )


class SanitizerError(RuntimeError):
    """A simulation invariant was violated (sanitizers enabled, fatal mode)."""

    def __init__(self, kind: str, message: str, context: dict[str, Any]):
        self.kind = kind
        self.context = dict(context)
        detail = ", ".join(f"{k}={v!r}" for k, v in sorted(self.context.items()))
        super().__init__(f"[{kind}] {message}" + (f" ({detail})" if detail else ""))


@dataclass(frozen=True)
class Violation:
    """One recorded invariant violation (non-fatal mode)."""

    kind: str
    message: str
    time: float
    context: tuple[tuple[str, Any], ...]

    def describe(self) -> str:
        detail = ", ".join(f"{k}={v!r}" for k, v in self.context)
        return f"t={self.time:.6f} [{self.kind}] {self.message}" + (
            f" ({detail})" if detail else ""
        )


@dataclass
class Sanitizer:
    """Invariant checker shared by one simulator and its components."""

    fatal: bool = True
    violations: list[Violation] = field(default_factory=list)
    _queues: list[tuple[str, "DropTailQueue"]] = field(default_factory=list)
    _channels: list[tuple[str, "CsmaChannel"]] = field(default_factory=list)
    _tcp_stacks: list["TcpStack"] = field(default_factory=list)
    _accountants: list[tuple[str, "ResourceAccountant"]] = field(default_factory=list)
    _simulators: list[tuple[str, Any]] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Registration (called by components as the testbed is assembled)

    def register_simulator(self, label: str, sim: Any) -> None:
        self._simulators.append((label, sim))

    def register_queue(self, label: str, queue: "DropTailQueue") -> None:
        self._queues.append((label, queue))

    def register_channel(self, label: str, channel: "CsmaChannel") -> None:
        self._channels.append((label, channel))

    def register_tcp_stack(self, stack: "TcpStack") -> None:
        self._tcp_stacks.append(stack)

    def register_accountant(self, label: str, accountant: "ResourceAccountant") -> None:
        self._accountants.append((label, accountant))

    # ------------------------------------------------------------------
    # Violation plumbing

    def violation(
        self, kind: str, message: str, time: float = 0.0, **context: Any
    ) -> None:
        """Raise (fatal mode) or record one violation."""
        if self.fatal:
            error = SanitizerError(kind, message, context)
            # When an obs scope is live, ship the flight-recorder ring
            # with the error so the fatal violation carries a postmortem
            # of the kernel's last moments, not just an invariant name.
            from repro import obs

            ctx = obs.current()
            if ctx.enabled and ctx.flight is not None:
                error.flight_dump = ctx.flight.dump(registry=ctx.registry)
            raise error
        self.violations.append(
            Violation(
                kind=kind,
                message=message,
                time=time,
                context=tuple(sorted(context.items())),
            )
        )

    def report(self) -> str:
        """Human-readable summary of collected violations."""
        if not self.violations:
            return "sanitizers: clean (no violations)"
        lines = [f"sanitizers: {len(self.violations)} violation(s)"]
        lines.extend(f"  {v.describe()}" for v in self.violations)
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Checks

    def check_event(self, event: Any, now: float) -> None:
        """Event-time monotonicity: nothing executes before current time."""
        if event.time < now:
            self.violation(
                "event-monotonicity",
                "event scheduled to execute before current simulation time",
                time=now,
                event_time=event.time,
                now=now,
                callback=getattr(event.callback, "__qualname__", repr(event.callback)),
            )

    def check_conservation(self, now: float) -> None:
        """Packet conservation per queue/channel + resource consistency."""
        for label, sim in self._simulators:
            # Kernel cancel-ledger exactness: the lazy-compaction counter
            # must equal the number of cancelled events actually sitting in
            # the heap, or COMPACT_FRACTION fires spurious sweeps (drifted
            # high) / never fires (drifted low).
            actual = sum(1 for ev in sim._heap if ev.cancelled)
            if actual != sim._cancelled_in_heap:
                self.violation(
                    "kernel-ledger",
                    f"simulator {label} cancel ledger drifted from the heap",
                    time=now,
                    simulator=label,
                    ledger=sim._cancelled_in_heap,
                    cancelled_in_heap=actual,
                    heap_depth=len(sim._heap),
                )
        for label, queue in self._queues:
            problem = queue.conservation_error()
            if problem is not None:
                self.violation(
                    "queue-conservation",
                    f"queue {label} leaked packets: {problem}",
                    time=now,
                    queue=label,
                    enqueued=queue.enqueued,
                    dequeued=queue.dequeued,
                    flushed=queue.flushed,
                    backlog=len(queue),
                )
        for label, channel in self._channels:
            in_flight = getattr(channel, "frames_in_flight", 0)
            dequeued = getattr(channel, "frames_dequeued", None)
            if dequeued is None:
                continue
            filtered = getattr(channel, "frames_filtered", 0)
            accounted = (
                channel.frames_delivered + channel.frames_impaired + filtered + in_flight
            )
            if dequeued != accounted:
                self.violation(
                    "channel-conservation",
                    f"channel {label} lost frames: dequeued != "
                    "delivered + impaired + filtered + in-flight",
                    time=now,
                    channel=label,
                    dequeued=dequeued,
                    delivered=channel.frames_delivered,
                    impaired=channel.frames_impaired,
                    filtered=filtered,
                    in_flight=in_flight,
                )
            if in_flight < 0:
                self.violation(
                    "channel-conservation",
                    f"channel {label} delivered more frames than it transmitted",
                    time=now,
                    channel=label,
                    in_flight=in_flight,
                )
        for label, accountant in self._accountants:
            for problem in accountant.consistency_errors():
                self.violation(
                    "resource-accounting",
                    f"container {label}: {problem}",
                    time=now,
                    container=label,
                )

    def check_teardown(self, now: float) -> None:
        """Socket/port leak detection at simulator teardown."""
        from repro.sim.tcp import EPHEMERAL_BASE, TcpState

        for stack in self._tcp_stacks:
            node_name = stack.node.name
            for key, sock in list(stack.sockets.items()):
                if sock.state is TcpState.CLOSED:
                    self.violation(
                        "socket-leak",
                        f"node {node_name} holds a CLOSED socket that was "
                        "never deregistered",
                        time=now,
                        node=node_name,
                        local_port=sock.local_port,
                        remote_port=sock.remote_port,
                    )
            owned = {
                sock.local_port
                for sock in stack.sockets.values()
            } | set(stack.listeners)
            for port in sorted(stack._ports_in_use):
                if port >= EPHEMERAL_BASE and port not in owned:
                    self.violation(
                        "port-leak",
                        f"node {node_name} holds ephemeral port {port} with "
                        "no owning socket",
                        time=now,
                        node=node_name,
                        port=port,
                    )
            for sock in stack.sockets.values():
                if (
                    sock.local_port >= EPHEMERAL_BASE
                    and sock.local_port not in stack._ports_in_use
                ):
                    self.violation(
                        "port-leak",
                        f"node {node_name} socket port {sock.local_port} was "
                        "released while the socket is still registered",
                        time=now,
                        node=node_name,
                        port=sock.local_port,
                    )

    def finalize(self, now: float) -> list[Violation]:
        """Run every teardown check; returns collected violations."""
        self.check_conservation(now)
        self.check_teardown(now)
        return list(self.violations)


def make_sanitizer(sanitize: bool | str | None) -> Sanitizer | None:
    """Resolve a ``Simulator(sanitize=…)`` argument to a sanitizer.

    ``None`` defers to ``REPRO_SANITIZE``; ``True`` is fatal mode;
    ``"collect"`` records violations without raising; ``False`` disables.
    """
    mode = sanitize_mode_from_env() if sanitize is None else sanitize
    if mode is False:
        return None
    if mode is True:
        return Sanitizer(fatal=True)
    if mode == "collect":
        return Sanitizer(fatal=False)
    raise ValueError(f"sanitize={sanitize!r} not understood (bool or 'collect')")
