"""Determinism lint rules and their registry.

Each rule is a function registered with :func:`rule` that walks a parsed
module (via the :class:`~repro.analysis.walker.LintContext` helpers) and
yields ``(node, message)`` pairs; the walker turns those into
:class:`~repro.analysis.report.Finding` objects, applying inline
``# repro: lint-ok[rule-id]`` suppressions.

The registry is pluggable: downstream code (or tests) can register extra
rules with the same decorator; ``ddoshield lint`` picks them up as long
as the module defining them is imported first.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

if TYPE_CHECKING:
    from repro.analysis.walker import LintContext

#: A rule yields (offending node, message) pairs for one parsed module.
RuleFn = Callable[["LintContext"], Iterator[tuple[ast.AST, str]]]


@dataclass(frozen=True)
class Rule:
    """Registry entry: identity, severity, fix hint and the check itself.

    ``category`` partitions the registry between the determinism linter
    (``ddoshield lint``) and the batch-parity checker (``ddoshield
    check-parity``); each command runs only its own category so the two
    analyses keep independent baselines.
    """

    rule_id: str
    severity: str
    hint: str
    fn: RuleFn
    category: str = "determinism"


RULES: dict[str, Rule] = {}


def rule(
    rule_id: str, severity: str, hint: str, category: str = "determinism"
) -> Callable[[RuleFn], RuleFn]:
    """Register a lint rule under ``rule_id`` (e.g. ``RNG001``)."""

    def decorator(fn: RuleFn) -> RuleFn:
        if rule_id in RULES:
            raise ValueError(f"duplicate lint rule id {rule_id!r}")
        RULES[rule_id] = Rule(
            rule_id=rule_id, severity=severity, hint=hint, fn=fn, category=category
        )
        return fn

    return decorator


def iter_rules(
    only: Iterable[str] | None = None, category: str | None = None
) -> list[Rule]:
    """Registered rules, restricted to ``only`` ids and/or a ``category``."""
    if only is None:
        selected = [RULES[key] for key in sorted(RULES)]
    else:
        unknown = set(only) - set(RULES)
        if unknown:
            raise KeyError(f"unknown lint rule id(s): {sorted(unknown)}")
        selected = [RULES[key] for key in sorted(only)]
    if category is not None:
        selected = [entry for entry in selected if entry.category == category]
    return selected


# ----------------------------------------------------------------------
# Shared AST helpers

#: ``random`` module functions that consume the hidden global RNG state.
GLOBAL_RANDOM_FNS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gauss",
        "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
        "randint", "random", "randrange", "sample", "seed", "shuffle",
        "triangular", "uniform", "vonmisesvariate", "weibullvariate",
    }
)

#: Legacy ``numpy.random`` module-level functions (global RandomState).
GLOBAL_NP_RANDOM_FNS = frozenset(
    {
        "beta", "binomial", "bytes", "chisquare", "choice", "exponential",
        "gamma", "normal", "permutation", "poisson", "rand", "randint",
        "randn", "random", "random_sample", "ranf", "sample", "seed",
        "shuffle", "standard_normal", "uniform",
    }
)

#: Wall-clock reads: (module attribute path, call name).
WALL_CLOCK_TIME_FNS = frozenset(
    {
        "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns",
        "time", "time_ns",
    }
)
WALL_CLOCK_DATETIME_FNS = frozenset({"now", "today", "utcnow"})

#: Terminal identifiers that mark an expression as simulation-time-like.
TIME_LIKE_NAMES = frozenset({"now", "time", "timestamp"})
TIME_LIKE_SUFFIXES = ("_time", "_timestamp", "_deadline", "_at")


def _terminal_name(node: ast.AST) -> str | None:
    """The last identifier of a Name/Attribute chain (``a.b.now`` → ``now``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _dotted(node: ast.AST) -> str | None:
    """Render a Name/Attribute chain as ``a.b.c`` (None for anything else)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_time_like(node: ast.AST) -> bool:
    name = _terminal_name(node)
    if name is None:
        return False
    lowered = name.lower()
    return lowered in TIME_LIKE_NAMES or lowered.endswith(TIME_LIKE_SUFFIXES)


# ----------------------------------------------------------------------
# Rules


@rule(
    "RNG001",
    "error",
    "thread a seeded random.Random instance (e.g. self.rng) instead of the "
    "process-global RNG; seeds must flow from the Scenario",
)
def unseeded_global_random(ctx: "LintContext") -> Iterator[tuple[ast.AST, str]]:
    """Calls into the ``random`` module's hidden global generator."""
    random_aliases = ctx.module_aliases("random")
    from_imports = ctx.from_imports("random")
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in random_aliases
            and func.attr in GLOBAL_RANDOM_FNS
        ):
            yield node, f"call to global-RNG random.{func.attr}()"
        elif (
            isinstance(func, ast.Name)
            and from_imports.get(func.id) in GLOBAL_RANDOM_FNS
        ):
            yield node, (
                f"call to global-RNG random.{from_imports[func.id]}() "
                f"(imported as {func.id})"
            )


@rule(
    "RNG002",
    "error",
    "use a seeded np.random.default_rng(seed) Generator threaded through the "
    "call path instead of numpy's legacy global RandomState",
)
def unseeded_numpy_random(ctx: "LintContext") -> Iterator[tuple[ast.AST, str]]:
    """Calls into ``numpy.random``'s legacy module-level RandomState."""
    numpy_aliases = ctx.module_aliases("numpy")
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in GLOBAL_NP_RANDOM_FNS:
            continue
        base = func.value
        if (
            isinstance(base, ast.Attribute)
            and base.attr == "random"
            and isinstance(base.value, ast.Name)
            and base.value.id in numpy_aliases
        ):
            yield node, f"call to legacy global np.random.{func.attr}()"


@rule(
    "TIME001",
    "error",
    "simulation code must consume virtual time (sim.now); wall-clock reads "
    "belong only in benchmarks and CLI entry points",
)
def wall_clock_read(ctx: "LintContext") -> Iterator[tuple[ast.AST, str]]:
    """``time.time()``-style wall-clock reads outside the allowlist."""
    if ctx.wall_clock_allowed:
        return
    time_aliases = ctx.module_aliases("time")
    time_from = ctx.from_imports("time")
    datetime_from = ctx.from_imports("datetime")
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base, attr = func.value.id, func.attr
            if base in time_aliases and attr in WALL_CLOCK_TIME_FNS:
                yield node, f"wall-clock read time.{attr}()"
            elif (
                datetime_from.get(base) in ("datetime", "date")
                and attr in WALL_CLOCK_DATETIME_FNS
            ):
                yield node, f"wall-clock read {datetime_from[base]}.{attr}()"
        elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Attribute):
            dotted = _dotted(func)
            if dotted and dotted.startswith("datetime.") and func.attr in WALL_CLOCK_DATETIME_FNS:
                yield node, f"wall-clock read {dotted}()"
        elif isinstance(func, ast.Name):
            if time_from.get(func.id) in WALL_CLOCK_TIME_FNS:
                yield node, (
                    f"wall-clock read time.{time_from[func.id]}() "
                    f"(imported as {func.id})"
                )


@rule(
    "ORD001",
    "error",
    "set iteration order is not reproducible across processes; iterate "
    "sorted(the_set) (and replace set.pop() with an ordered pop)",
)
def unordered_set_iteration(ctx: "LintContext") -> Iterator[tuple[ast.AST, str]]:
    """Iteration over a ``set`` (or ``set.pop()``) without ``sorted``."""

    def is_set_expr(node: ast.AST) -> str | None:
        """Describe why ``node`` is set-typed, or None."""
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return f"a {node.func.id}(...) call"
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in ("union", "intersection", "difference",
                                  "symmetric_difference") and is_set_expr(node.func.value):
                return f"a set.{node.func.attr}(...) result"
        name = _dotted(node)
        if name is not None and name in ctx.set_typed_names:
            return f"{name!r}, inferred as a set"
        return None

    for node in ast.walk(ctx.tree):
        iterables: list[ast.AST] = []
        if isinstance(node, ast.For):
            iterables.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iterables.extend(gen.iter for gen in node.generators)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "pop"
            and not node.args
            and not node.keywords
            and is_set_expr(node.func.value)
        ):
            why = is_set_expr(node.func.value)
            yield node, f"set.pop() removes an arbitrary element ({why})"
            continue
        for iterable in iterables:
            why = is_set_expr(iterable)
            if why is not None:
                yield iterable, f"iteration over unordered set ({why})"


@rule(
    "FLT001",
    "error",
    "float equality against simulation time is brittle (accumulated float "
    "error); compare window indices or use an explicit tolerance",
)
def float_time_equality(ctx: "LintContext") -> Iterator[tuple[ast.AST, str]]:
    """``==`` / ``!=`` where either operand looks like simulation time."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            # Comparisons against None/sentinels are identity checks, and
            # int-literal comparisons (e.g. ``seq == 0``) are exact.
            if any(
                isinstance(side, ast.Constant)
                and (side.value is None or isinstance(side.value, (int, str, bool))
                     and not isinstance(side.value, float))
                for side in (left, right)
            ):
                continue
            if _is_time_like(left) or _is_time_like(right):
                kind = "==" if isinstance(op, ast.Eq) else "!="
                yield node, f"float {kind} comparison against simulation time"
                break


@rule(
    "MUT001",
    "error",
    "mutable default arguments alias state across calls (and across "
    "scenarios); default to None and construct inside the function",
)
def mutable_default_argument(ctx: "LintContext") -> Iterator[tuple[ast.AST, str]]:
    """``def f(x=[])``-style defaults."""
    mutable_ctors = {"list", "dict", "set", "bytearray", "deque", "defaultdict"}
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if isinstance(default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                                    ast.DictComp, ast.SetComp)):
                yield default, f"mutable default argument in {node.name}()"
            elif (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in mutable_ctors
            ):
                yield default, (
                    f"mutable default argument {default.func.id}() in {node.name}()"
                )


@rule(
    "ID001",
    "warning",
    "id() values differ between runs; break ties with a stable field "
    "(sequence number, name) instead",
)
def id_based_tiebreak(ctx: "LintContext") -> Iterator[tuple[ast.AST, str]]:
    """``id()`` used for ordering: in sort keys or comparisons."""
    for node in ast.walk(ctx.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
            and len(node.args) == 1
        ):
            continue
        ancestor = ctx.parents.get(node)
        while ancestor is not None:
            if isinstance(ancestor, ast.Compare):
                yield node, "id() used in a comparison (nondeterministic order)"
                break
            if (
                isinstance(ancestor, ast.Call)
                and isinstance(ancestor.func, ast.Name)
                and ancestor.func.id in ("sorted", "min", "max")
            ):
                yield node, f"id() used inside {ancestor.func.id}() (nondeterministic order)"
                break
            ancestor = ctx.parents.get(ancestor)
