"""Batch/scalar parity checker + event-commutativity analyzer.

PR 7 split every hot-path component into a scalar (``Packet``) and a
vectorized (``PacketBatch``) implementation.  The paper's Table I/II
reproducibility rests on the two paths staying *bit-identical*; this
module machine-checks the contract statically (``ddoshield
check-parity``):

``BAT001`` (error)
    The two twins of a dual-path pair perform different state
    transitions — one writes an instance attribute / bumps a counter
    the other never touches (transitively through sibling methods).
``BAT002`` (warning)
    A batch method loops calling its scalar twin per element instead of
    vectorizing — correct, but it silently gives back the batch win.
``BAT003`` (warning)
    A class reachable from the flood path defines a scalar contract
    method (``receive``/``enqueue``/``observe``/``should_drop``/
    ``allow``) with no batch twin, so trains must be materialised to
    traverse it.
``BAT004`` (warning)
    A ``*_batch`` method mutates instance state without an empty-batch
    early return; every batch method must accept ``len(batch) == 0`` as
    a structural no-op.
``ORD002`` (warning)
    An event handler order-sensitively assigns instance state that
    bucket-mate handlers also touch, so equal-``(time, priority)``
    events do not commute.  The runtime counterpart is the bucket
    shuffle sanitizer (``Simulator(shuffle_buckets=seed)`` /
    ``REPRO_SHUFFLE=<seed>``) which deterministically permutes
    same-bucket dispatch so any such race changes observable results.

All five feed the shared rule registry (category ``"parity"``), the
fingerprint baseline (``analysis/parity_baseline.json``) and inline
``# repro: lint-ok[...]`` suppressions.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, Sequence

from repro.analysis.effects import (
    MUTATOR_METHODS,
    ClassEffects,
    FunctionNode,
    collect_class_effects,
    self_path,
)
from repro.analysis.report import Finding
from repro.analysis.rules import _terminal_name, iter_rules, rule
from repro.analysis.walker import (
    LintContext,
    build_context,
    iter_python_files,
    parse_failure_finding,
    run_rules,
)

#: Batch-method naming contracts: (scalar candidates, batch name).  A
#: class defining both sides forms a dual-path pair.  ``__call__`` is an
#: accepted scalar spelling of ``observe`` (probe taps are callables).
PAIR_CONTRACTS: tuple[tuple[tuple[str, ...], str], ...] = (
    (("receive",), "receive_batch"),
    (("observe", "__call__"), "observe_batch"),
    (("enqueue",), "enqueue_batch"),
    (("should_drop",), "should_drop_batch"),
    (("allow",), "take"),
)

#: Scalar contract methods BAT003 looks for on flood-reachable classes.
#: ``__call__`` is deliberately absent — every callable would match.
SCALAR_CONTRACTS: dict[str, str] = {
    "receive": "receive_batch",
    "observe": "observe_batch",
    "enqueue": "enqueue_batch",
    "should_drop": "should_drop_batch",
    "allow": "take",
}

#: First-parameter names that mark a ``*_batch`` method as taking a
#: packet train (vs e.g. ``schedule_batch(delays, …)``).
BATCH_PARAM_NAMES = frozenset({"batch", "train"})

#: Scheduling entry points whose second argument is an event callback.
SCHEDULE_FNS = frozenset(
    {"schedule", "schedule_abs", "schedule_batch", "schedule_batch_abs",
     "schedule_periodic"}
)

#: Rule ids owned by this module (the ``check-parity`` command).
PARITY_RULE_IDS = frozenset({"BAT001", "BAT002", "BAT003", "BAT004", "ORD002"})

#: Default scan roots: the dual-path surface named by the architecture.
DEFAULT_PARITY_PATHS: tuple[str, ...] = (
    "src/repro/sim",
    "src/repro/ids",
    "src/repro/testbed",
    "src/repro/botnet",
    "src/repro/apps",
)


def discover_pairs(
    info: ClassEffects,
) -> list[tuple[str, str]]:
    """(scalar, batch) method-name pairs defined by one class.

    Contract pairs come first; any further ``X``/``X_batch`` twins
    (``send_segment``/``send_segment_batch``…) are discovered
    generically so new dual-path methods are covered without touching
    the contract table.
    """
    pairs: list[tuple[str, str]] = []
    seen_batch: set[str] = set()
    for scalar_names, batch_name in PAIR_CONTRACTS:
        if batch_name not in info.methods:
            continue
        for scalar in scalar_names:
            if scalar in info.methods:
                pairs.append((scalar, batch_name))
                seen_batch.add(batch_name)
                break
    for name in sorted(info.methods):
        if not name.endswith("_batch") or name in seen_batch:
            continue
        scalar = name[: -len("_batch")]
        if scalar and scalar in info.methods:
            pairs.append((scalar, name))
    return pairs


def _batch_param(func: FunctionNode) -> str | None:
    """The packet-train parameter of a batch method, or None."""
    args = func.args.posonlyargs + func.args.args
    if len(args) < 2:
        return None
    name = args[1].arg
    return name if name in BATCH_PARAM_NAMES else None


def scalar_twin_of(info: ClassEffects, batch_name: str) -> str | None:
    """The scalar method ``batch_name`` is twinned with, if defined."""
    for scalar_names, contract_batch in PAIR_CONTRACTS:
        if contract_batch == batch_name:
            for scalar in scalar_names:
                if scalar in info.methods:
                    return scalar
    if batch_name.endswith("_batch"):
        scalar = batch_name[: -len("_batch")]
        if scalar and scalar in info.methods:
            return scalar
    return None


# ----------------------------------------------------------------------
# BAT001 — effect-set divergence between twins


@rule(
    "BAT001",
    "error",
    "the scalar and batch twins must perform the same state transitions; "
    "port the missing update (or remove the extra one) so a train of n "
    "packets leaves the instance exactly as n scalar calls would",
    category="parity",
)
def batch_effect_divergence(ctx: "LintContext") -> Iterator[tuple[ast.AST, str]]:
    """Dual-path pairs whose transitive write sets differ."""
    for info in collect_class_effects(ctx.tree):
        for scalar, batch in discover_pairs(info):
            scalar_writes = info.closure(scalar).writes
            batch_writes = info.closure(batch).writes
            missing = sorted(scalar_writes - batch_writes)
            extra = sorted(batch_writes - scalar_writes)
            if not missing and not extra:
                continue
            detail = []
            if missing:
                detail.append(
                    f"{scalar}() writes {missing} but {batch}() never does"
                )
            if extra:
                detail.append(
                    f"{batch}() writes {extra} but {scalar}() never does"
                )
            yield info.methods[batch], (
                f"effect divergence in {info.name}.{scalar}/{batch}: "
                + "; ".join(detail)
            )


# ----------------------------------------------------------------------
# BAT002 — batch method degrades to a scalar loop


@rule(
    "BAT002",
    "warning",
    "looping the scalar twin re-materialises every packet and forfeits "
    "the vectorized path; operate on the batch columns directly (a "
    "deliberate fallback branch can be baselined with a justification)",
    category="parity",
)
def batch_scalar_loop(ctx: "LintContext") -> Iterator[tuple[ast.AST, str]]:
    """``for …: self.<scalar_twin>(…)`` inside a batch method."""
    for info in collect_class_effects(ctx.tree):
        for batch_name, func in sorted(info.methods.items()):
            if not batch_name.endswith("_batch") and batch_name != "take":
                continue
            scalar = scalar_twin_of(info, batch_name)
            if scalar is None or scalar == batch_name:
                continue
            for node in ast.walk(func):
                if not isinstance(node, (ast.For, ast.While)):
                    continue
                for inner in ast.walk(node):
                    if (
                        isinstance(inner, ast.Call)
                        and self_path(inner.func) == scalar
                    ):
                        yield inner, (
                            f"{info.name}.{batch_name}() loops calling the "
                            f"scalar twin {scalar}() per element"
                        )
                        break
                else:
                    continue
                break


# ----------------------------------------------------------------------
# BAT004 — missing empty-batch early return


def _mentions_emptiness(test: ast.AST, param: str, len_aliases: set[str]) -> bool:
    for node in ast.walk(test):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "len"
            and len(node.args) == 1
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id == param
        ):
            return True
        if isinstance(node, ast.Name) and node.id in len_aliases:
            return True
        if (
            isinstance(node, ast.UnaryOp)
            and isinstance(node.op, ast.Not)
            and isinstance(node.operand, ast.Name)
            and node.operand.id == param
        ):
            return True
    return False


@rule(
    "BAT004",
    "warning",
    "a batch method must treat an empty train as a structural no-op; "
    "add `if len(batch) == 0: return` (or equivalent) before touching "
    "instance state",
    category="parity",
)
def missing_empty_batch_guard(ctx: "LintContext") -> Iterator[tuple[ast.AST, str]]:
    """``*_batch(self, batch, …)`` methods that mutate state unguarded."""
    for info in collect_class_effects(ctx.tree):
        for name, func in sorted(info.methods.items()):
            if not name.endswith("_batch"):
                continue
            param = _batch_param(func)
            if param is None:
                continue
            summary = info.direct[name]
            if not summary.writes:
                continue
            len_aliases: set[str] = set()
            guard_line: int | None = None
            for node in ast.walk(func):
                if isinstance(node, ast.Assign) and (
                    isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Name)
                    and node.value.func.id == "len"
                    and len(node.value.args) == 1
                    and isinstance(node.value.args[0], ast.Name)
                    and node.value.args[0].id == param
                ):
                    len_aliases.update(
                        t.id for t in node.targets if isinstance(t, ast.Name)
                    )
                elif isinstance(node, ast.If) and _mentions_emptiness(
                    node.test, param, len_aliases
                ):
                    if any(isinstance(s, ast.Return) for s in ast.walk(node)):
                        guard_line = (
                            node.lineno
                            if guard_line is None
                            else min(guard_line, node.lineno)
                        )
            write_lines: list[int] = []
            for node in ast.walk(func):
                targets: list[ast.AST] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                elif isinstance(node, ast.Delete):
                    targets = list(node.targets)
                elif isinstance(node, ast.Call):
                    path = self_path(node.func)
                    if path is not None and "." in path:
                        method = path.rpartition(".")[2]
                        if method in MUTATOR_METHODS:
                            write_lines.append(node.lineno)
                    continue
                for target in targets:
                    if self_path(target) is not None:
                        write_lines.append(node.lineno)
            if not write_lines:
                continue
            if guard_line is None or guard_line > min(write_lines):
                yield func, (
                    f"{info.name}.{name}() mutates instance state with no "
                    f"empty-batch early return on {param!r}"
                )


# ----------------------------------------------------------------------
# ORD002 — non-commuting event handlers


@rule(
    "ORD002",
    "warning",
    "equal-(time, priority) events execute in schedule order; a handler "
    "that order-sensitively assigns state shared with bucket mates makes "
    "results depend on that order — make the update commutative, split "
    "priorities, or verify with Simulator(shuffle_buckets=seed)",
    category="parity",
)
def bucket_commutativity(ctx: "LintContext") -> Iterator[tuple[ast.AST, str]]:
    """Event handlers whose plain assigns race with bucket-mate accesses."""
    infos = {info.node: info for info in collect_class_effects(ctx.tree)}
    handlers: dict[ast.ClassDef, set[str]] = {}
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        if _terminal_name(node.func) not in SCHEDULE_FNS:
            continue
        callback: ast.AST | None = None
        for keyword in node.keywords:
            if keyword.arg == "callback":
                callback = keyword.value
        if callback is None and len(node.args) >= 2:
            callback = node.args[1]
        if callback is None:
            continue
        path = self_path(callback)
        if path is None or "." in path:
            continue
        ancestor = ctx.parents.get(node)
        while ancestor is not None and not isinstance(ancestor, ast.ClassDef):
            ancestor = ctx.parents.get(ancestor)
        if ancestor is not None:
            handlers.setdefault(ancestor, set()).add(path)
    for cls_node, names in sorted(
        handlers.items(), key=lambda item: item[0].lineno
    ):
        info = infos.get(cls_node)
        if info is None:
            continue
        present = [name for name in sorted(names) if name in info.methods]
        for handler in present:
            closure = info.closure(handler)
            conflicts: dict[str, str] = {}
            for attr in sorted(closure.assigns):
                if attr in closure.reads:
                    conflicts[attr] = handler
                    continue
                for other in present:
                    if other == handler:
                        continue
                    other_closure = info.closure(other)
                    if attr in other_closure.reads or attr in other_closure.writes:
                        conflicts[attr] = other
                        break
            if conflicts:
                detail = ", ".join(
                    f"self.{attr} (shared with {other}())"
                    for attr, other in conflicts.items()
                )
                yield info.methods[handler], (
                    f"event handler {info.name}.{handler}() order-sensitively "
                    f"assigns {detail}; equal-(time, priority) bucket mates "
                    "do not commute"
                )


# ----------------------------------------------------------------------
# BAT003 — scalar-only classes reachable from the flood path
# (cross-module: runs over all scanned files, not per module)


def _referenced_names(cls_node: ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(cls_node):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            # Quoted forward references ("CsmaChannel | None") are string
            # constants; parse them as expressions to recover the names.
            value = node.value.strip()
            if value and len(value) < 200:
                try:
                    parsed = ast.parse(value, mode="eval")
                except SyntaxError:
                    continue
                names.update(
                    inner.id
                    for inner in ast.walk(parsed)
                    if isinstance(inner, ast.Name)
                )
    names.discard(cls_node.name)
    return names


def _flood_reachability(
    contexts: Sequence[LintContext],
) -> tuple[list[Finding], int]:
    """The cross-module BAT003 pass over every scanned class."""
    rule_entry = iter_rules(only=["BAT003"])[0]
    classes: dict[str, tuple[LintContext, ast.ClassDef, ClassEffects]] = {}
    refs: dict[str, set[str]] = {}
    roots: set[str] = set()
    for ctx in contexts:
        for info in collect_class_effects(ctx.tree):
            if info.name in classes:
                continue  # first definition wins; names are unique in practice
            classes[info.name] = (ctx, info.node, info)
            refs[info.name] = _referenced_names(info.node)
            if any(m.endswith("_batch") for m in info.methods):
                roots.add(info.name)
    reachable: set[str] = set()
    referrer: dict[str, str] = {}
    frontier = sorted(roots)
    while frontier:
        name = frontier.pop()
        if name in reachable:
            continue
        reachable.add(name)
        for target in sorted(refs.get(name, ())):
            if target in classes and target not in reachable:
                referrer.setdefault(target, name)
                frontier.append(target)
    findings: list[Finding] = []
    suppressed = 0
    for name in sorted(reachable):
        ctx, cls_node, info = classes[name]
        for scalar, batch in sorted(SCALAR_CONTRACTS.items()):
            if scalar not in info.methods or batch in info.methods:
                continue
            line = info.methods[scalar].lineno
            if ctx.is_suppressed("BAT003", line):
                suppressed += 1
                continue
            via = referrer.get(name)
            origin = f" (referenced by {via})" if via else ""
            findings.append(
                Finding(
                    rule_id="BAT003",
                    severity=rule_entry.severity,
                    path=ctx.path,
                    line=line,
                    col=info.methods[scalar].col_offset + 1,
                    message=(
                        f"class {name} is reachable from the batch flood "
                        f"path{origin} but defines {scalar}() with no "
                        f"{batch}() twin"
                    ),
                    hint=rule_entry.hint,
                    snippet=ctx.snippet(line),
                )
            )
    return findings, suppressed


# ----------------------------------------------------------------------
# Entry point


def check_parity_paths(
    paths: Sequence[str | Path] | None = None,
    root: str | Path | None = None,
) -> tuple[list[Finding], int, int]:
    """Run the parity rules; returns (findings, suppressed, files checked).

    Per-module rules (BAT001/BAT002/BAT004/ORD002) run through the same
    walker as the determinism linter; the cross-module flood-reachability
    pass (BAT003) runs over all scanned files at once.  Unparseable
    files yield ``PARSE001`` error findings, like ``ddoshield lint``.
    """
    root_path = Path(root) if root is not None else Path.cwd()
    scan = list(paths) if paths else list(DEFAULT_PARITY_PATHS)
    per_module = [
        entry
        for entry in iter_rules(category="parity")
        if entry.rule_id != "BAT003"
    ]
    findings: list[Finding] = []
    suppressed = 0
    files_checked = 0
    contexts: list[LintContext] = []
    for file in iter_python_files(scan, root_path):
        try:
            rel = file.resolve().relative_to(root_path.resolve())
            shown = rel.as_posix()
        except ValueError:
            shown = file.as_posix()
        try:
            ctx = build_context(file.read_text(encoding="utf-8"), path=shown)
        except SyntaxError as exc:
            findings.append(parse_failure_finding(shown, exc))
            files_checked += 1
            continue
        contexts.append(ctx)
        file_findings, file_suppressed = run_rules(ctx, per_module)
        findings.extend(file_findings)
        suppressed += file_suppressed
        files_checked += 1
    cross_findings, cross_suppressed = _flood_reachability(contexts)
    findings.extend(cross_findings)
    suppressed += cross_suppressed
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings, suppressed, files_checked


# BAT003's registry entry exists for metadata (severity, hint, docs);
# the per-module walker never produces it — _flood_reachability does.
@rule(
    "BAT003",
    "warning",
    "trains reaching this class must be materialised packet by packet; "
    "add the batch twin, or baseline with a justification if the scalar "
    "fallback is deliberate (e.g. an interface default)",
    category="parity",
)
def _flood_scalar_only_placeholder(
    ctx: "LintContext",
) -> Iterator[tuple[ast.AST, str]]:
    return iter(())
