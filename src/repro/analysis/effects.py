"""Per-method effect summaries for the batch/scalar parity checker.

A dual-path class (PR 7's scalar ``Packet`` vs vectorized ``PacketBatch``
split) stays trustworthy only while both twins of each method perform
the *same* state transitions.  This module extracts a conservative,
purely syntactic summary of what one method does to its instance:

* ``writes``   — dotted ``self`` attribute paths assigned, aug-assigned,
  ``del``-ed or mutated in place (``self.items.append(...)``);
* ``counters`` — the subset of writes that are ``+=`` / ``-=`` bumps
  (commutative accumulations);
* ``assigns``  — the subset written by plain (order-sensitive)
  assignment or a non-additive aug-assign;
* ``reads``    — ``self`` attribute paths loaded;
* ``calls``    — dotted call paths rooted at ``self`` (``tcp.receive``,
  ``_forward``); single-segment entries that name a sibling method are
  expanded transitively by :func:`class_effects`.

Subscripts are collapsed (``self.blocked_until[src]`` reads/writes
``blocked_until``) and local variables are ignored — the summary is a
set-level contract, not a dataflow analysis.  That is exactly the
granularity the parity rules need: "the scalar twin bumps ``dropped``
and the batch twin never touches it" is a real drift regardless of how
the value flows.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: In-place mutators: a call ``self.x.<name>(...)`` counts as a write of
#: ``x``.  Covers list/set/dict/deque mutation used on the hot paths.
MUTATOR_METHODS = frozenset(
    {
        "append", "appendleft", "add", "clear", "discard", "extend",
        "extendleft", "insert", "pop", "popleft", "remove", "setdefault",
        "sort", "update",
    }
)

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


@dataclass(frozen=True)
class EffectSummary:
    """What one method does to ``self`` (see module docstring)."""

    writes: frozenset[str] = frozenset()
    counters: frozenset[str] = frozenset()
    assigns: frozenset[str] = frozenset()
    reads: frozenset[str] = frozenset()
    calls: frozenset[str] = frozenset()

    def merge(self, other: "EffectSummary") -> "EffectSummary":
        return EffectSummary(
            writes=self.writes | other.writes,
            counters=self.counters | other.counters,
            assigns=self.assigns | other.assigns,
            reads=self.reads | other.reads,
            calls=self.calls | other.calls,
        )


def self_path(node: ast.AST, self_name: str = "self") -> str | None:
    """Dotted path of an attribute chain rooted at ``self``, or None.

    ``self.tcp.receive`` → ``"tcp.receive"``; subscripts collapse onto
    their base (``self.blocked_until[src]`` → ``"blocked_until"``).
    """
    parts: list[str] = []
    while True:
        if isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        else:
            break
    if not (isinstance(node, ast.Name) and node.id == self_name and parts):
        return None
    return ".".join(reversed(parts))


def _first_arg_name(func: FunctionNode) -> str:
    args = func.args.posonlyargs + func.args.args
    return args[0].arg if args else "self"


def summarize_method(func: FunctionNode) -> EffectSummary:
    """Extract the direct (non-transitive) effect summary of one method."""
    self_name = _first_arg_name(func)
    writes: set[str] = set()
    counters: set[str] = set()
    assigns: set[str] = set()
    reads: set[str] = set()
    calls: set[str] = set()

    def record_write(target: ast.AST, commutative: bool) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                record_write(element, commutative)
            return
        if isinstance(target, ast.Starred):
            record_write(target.value, commutative)
            return
        path = self_path(target, self_name)
        if path is None:
            return
        writes.add(path)
        (counters if commutative else assigns).add(path)

    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                record_write(target, commutative=False)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            record_write(node.target, commutative=False)
        elif isinstance(node, ast.AugAssign):
            record_write(
                node.target, commutative=isinstance(node.op, (ast.Add, ast.Sub))
            )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                record_write(target, commutative=True)
        elif isinstance(node, ast.Call):
            path = self_path(node.func, self_name)
            if path is None:
                continue
            calls.add(path)
            head, _, method = path.rpartition(".")
            if head and method in MUTATOR_METHODS:
                # self.items.append(...) mutates self.items in place.
                writes.add(head)
                counters.add(head)
        elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            path = self_path(node, self_name)
            if path is not None:
                reads.add(path)

    return EffectSummary(
        writes=frozenset(writes),
        counters=frozenset(counters),
        assigns=frozenset(assigns),
        reads=frozenset(reads),
        calls=frozenset(calls),
    )


@dataclass
class ClassEffects:
    """All methods of one class plus their direct and transitive effects."""

    name: str
    node: ast.ClassDef
    methods: dict[str, FunctionNode] = field(default_factory=dict)
    direct: dict[str, EffectSummary] = field(default_factory=dict)
    _closures: dict[str, EffectSummary] = field(default_factory=dict)

    def closure(self, method: str) -> EffectSummary:
        """Effects of ``method`` including sibling methods it calls.

        Single-segment call paths that name another method of the same
        class are expanded to a fixpoint (cycles are fine); collaborator
        calls (``tcp.receive``) stay in ``calls`` unexpanded.
        """
        cached = self._closures.get(method)
        if cached is not None:
            return cached
        merged = EffectSummary()
        visited: set[str] = set()
        frontier = [method]
        while frontier:
            name = frontier.pop()
            if name in visited or name not in self.direct:
                continue
            visited.add(name)
            summary = self.direct[name]
            merged = merged.merge(summary)
            frontier.extend(
                callee
                for callee in summary.calls
                if "." not in callee and callee in self.methods
            )
        # Expanded sibling calls are internal plumbing, not part of the
        # observable contract — keep only collaborator calls.
        merged = EffectSummary(
            writes=merged.writes,
            counters=merged.counters,
            assigns=merged.assigns,
            reads=merged.reads,
            calls=frozenset(
                c for c in merged.calls if "." in c or c not in self.methods
            ),
        )
        self._closures[method] = merged
        return merged


def collect_class_effects(tree: ast.Module) -> list[ClassEffects]:
    """Effect summaries for every class in a parsed module (top level or
    nested — ``ast.walk`` finds them all; methods are the direct
    function children of the class body)."""
    result: list[ClassEffects] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        info = ClassEffects(name=node.name, node=node)
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[child.name] = child
                info.direct[child.name] = summarize_method(child)
        result.append(info)
    return result


def normalize_batch_calls(calls: frozenset[str]) -> frozenset[str]:
    """Strip the ``_batch`` suffix from call-path terminals.

    ``node.send_ipv4_batch`` and ``node.send_ipv4`` are the same
    collaborator contract on the two paths; normalising lets the parity
    rule compare call sets across twins.
    """
    normalized = set()
    for path in sorted(calls):
        head, _, terminal = path.rpartition(".")
        if terminal.endswith("_batch"):
            terminal = terminal[: -len("_batch")]
        normalized.add(f"{head}.{terminal}" if head else terminal)
    return frozenset(normalized)
