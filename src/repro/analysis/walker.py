"""AST walking infrastructure for the determinism linter.

:func:`lint_paths` discovers ``*.py`` files, parses each once, builds a
:class:`LintContext` (import aliases, set-typed names, parent links,
inline suppressions) and runs every registered rule over it.

Suppressions are source comments of the form::

    some_hazard()  # repro: lint-ok[RNG001] -- justification

``lint-ok[*]`` silences every rule on that line.  Suppressed findings
are counted but never fail a run.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.report import Finding
from repro.analysis.rules import Rule, iter_rules

#: Files where wall-clock reads are legitimate (benchmark timing, CLI UX).
DEFAULT_WALL_CLOCK_ALLOWLIST: tuple[str, ...] = (
    "*/bench.py",
    "*/cli.py",
    "bench.py",
    "cli.py",
)

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*lint-ok\[([^\]]*)\]")

#: Pseudo-rule id for files the parser rejects.  Unparseable files used
#: to be skipped silently; now they surface as error findings so a lint
#: run over a broken tree exits nonzero instead of vacuously passing.
PARSE_RULE_ID = "PARSE001"
PARSE_RULE_HINT = (
    "the file failed to parse, so no rule could check it; fix the syntax "
    "error (unparseable files fail the run rather than being skipped)"
)


def parse_failure_finding(path: str, exc: SyntaxError) -> Finding:
    """Turn a ``SyntaxError`` into an error :class:`Finding` for ``path``."""
    return Finding(
        rule_id=PARSE_RULE_ID,
        severity="error",
        path=path,
        line=exc.lineno or 1,
        col=exc.offset or 1,
        message=f"file does not parse: {exc.msg}",
        hint=PARSE_RULE_HINT,
        snippet=(exc.text or "").strip(),
    )


@dataclass
class LintContext:
    """Everything a rule needs to inspect one parsed module."""

    path: str  # repo-relative, POSIX separators
    tree: ast.Module
    source_lines: list[str]
    wall_clock_allowed: bool = False
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)
    set_typed_names: set[str] = field(default_factory=set)
    _module_aliases: dict[str, set[str]] = field(default_factory=dict)
    _from_imports: dict[str, dict[str, str]] = field(default_factory=dict)
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._index_imports()
        self._link_parents()
        self._infer_set_names()
        self._collect_suppressions()

    # ------------------------------------------------------------------
    # Rule helpers

    def module_aliases(self, module: str) -> set[str]:
        """Local names bound to ``module`` (``import numpy as np`` → np)."""
        return self._module_aliases.get(module, set())

    def from_imports(self, module: str) -> dict[str, str]:
        """Local name → original name for ``from module import …``."""
        return self._from_imports.get(module, {})

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.source_lines):
            return self.source_lines[line - 1].strip()
        return ""

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        ids = self.suppressions.get(line)
        return ids is not None and (rule_id in ids or "*" in ids)

    # ------------------------------------------------------------------
    # Construction passes

    def _index_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self._module_aliases.setdefault(alias.name, set()).add(
                        alias.asname or alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                table = self._from_imports.setdefault(node.module, {})
                for alias in node.names:
                    table[alias.asname or alias.name] = alias.name

    def _link_parents(self) -> None:
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent

    def _infer_set_names(self) -> None:
        """Names/attributes statically known to hold a ``set``.

        Inference is intentionally shallow (one module at a time): it
        catches ``x = set()`` / ``self.peers: set[int] = …`` — the
        patterns event-scheduling code actually uses — without a type
        checker.
        """

        def is_set_annotation(node: ast.AST | None) -> bool:
            if node is None:
                return False
            if isinstance(node, ast.Subscript):
                node = node.value
            name = node.attr if isinstance(node, ast.Attribute) else (
                node.id if isinstance(node, ast.Name) else None
            )
            return name in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet",
                            "MutableSet")

        def is_set_value(node: ast.AST | None) -> bool:
            if isinstance(node, (ast.Set, ast.SetComp)):
                return True
            return (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset")
            )

        def dotted(node: ast.AST) -> str | None:
            parts: list[str] = []
            while isinstance(node, ast.Attribute):
                parts.append(node.attr)
                node = node.value
            if not isinstance(node, ast.Name):
                return None
            parts.append(node.id)
            return ".".join(reversed(parts))

        for node in ast.walk(self.tree):
            targets: list[ast.AST] = []
            if isinstance(node, ast.AnnAssign) and is_set_annotation(node.annotation):
                targets.append(node.target)
            elif isinstance(node, ast.Assign) and is_set_value(node.value):
                targets.extend(node.targets)
            elif isinstance(node, ast.AnnAssign) and is_set_value(node.value):
                targets.append(node.target)
            for target in targets:
                name = dotted(target)
                if name is not None:
                    self.set_typed_names.add(name)

    def _collect_suppressions(self) -> None:
        for lineno, line in enumerate(self.source_lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
            if ids:
                self.suppressions.setdefault(lineno, set()).update(ids)


# ----------------------------------------------------------------------
# Entry points


def build_context(
    source: str,
    path: str = "<string>",
    wall_clock_allowlist: Iterable[str] = DEFAULT_WALL_CLOCK_ALLOWLIST,
) -> LintContext:
    """Parse one module and assemble its :class:`LintContext`.

    Raises :class:`SyntaxError` for unparseable source — callers decide
    whether that is fatal (:func:`lint_source`) or a reportable finding
    (:func:`lint_paths`, via :func:`parse_failure_finding`).
    """
    tree = ast.parse(source, filename=path)
    posix_path = path.replace("\\", "/")
    return LintContext(
        path=posix_path,
        tree=tree,
        source_lines=source.splitlines(),
        wall_clock_allowed=any(
            fnmatch(posix_path, pattern) for pattern in wall_clock_allowlist
        ),
    )


def run_rules(
    ctx: LintContext, rules: Sequence[Rule]
) -> tuple[list[Finding], int]:
    """Run ``rules`` over one prepared context; returns (findings, suppressed)."""
    findings: list[Finding] = []
    suppressed = 0
    for entry in rules:
        for node, message in entry.fn(ctx):
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
            if ctx.is_suppressed(entry.rule_id, line):
                suppressed += 1
                continue
            findings.append(
                Finding(
                    rule_id=entry.rule_id,
                    severity=entry.severity,
                    path=ctx.path,
                    line=line,
                    col=col + 1,
                    message=message,
                    hint=entry.hint,
                    snippet=ctx.snippet(line),
                )
            )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings, suppressed


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Sequence[Rule] | None = None,
    wall_clock_allowlist: Iterable[str] = DEFAULT_WALL_CLOCK_ALLOWLIST,
) -> tuple[list[Finding], int]:
    """Lint one module's source; returns (findings, suppressed count).

    With ``rules=None`` only the determinism category runs — the parity
    rules (``BAT*``/``ORD002``) have their own entry point in
    :mod:`repro.analysis.parity` and their own baseline.
    """
    ctx = build_context(source, path, wall_clock_allowlist)
    selected = rules if rules is not None else iter_rules(category="determinism")
    return run_rules(ctx, selected)


def iter_python_files(paths: Sequence[str | Path], root: Path) -> Iterator[Path]:
    """Yield every ``*.py`` under ``paths`` (files or directories), sorted."""
    seen: set[Path] = set()
    for raw in paths:
        candidate = Path(raw)
        if not candidate.is_absolute():
            candidate = root / candidate
        if candidate.is_dir():
            files: Iterable[Path] = sorted(candidate.rglob("*.py"))
        elif candidate.suffix == ".py":
            files = [candidate]
        else:
            continue
        for file in files:
            resolved = file.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield file


def lint_paths(
    paths: Sequence[str | Path],
    root: str | Path | None = None,
    rules: Sequence[Rule] | None = None,
    wall_clock_allowlist: Iterable[str] = DEFAULT_WALL_CLOCK_ALLOWLIST,
) -> tuple[list[Finding], int, int]:
    """Lint files/directories; returns (findings, suppressed, files checked).

    Finding paths are reported relative to ``root`` (default: the current
    working directory) with POSIX separators, so baselines are portable.
    Files the parser rejects are *not* skipped: each yields a
    ``PARSE001`` error finding, so a broken file fails the run.
    """
    root_path = Path(root) if root is not None else Path.cwd()
    findings: list[Finding] = []
    suppressed = 0
    files_checked = 0
    for file in iter_python_files(paths, root_path):
        try:
            rel = file.resolve().relative_to(root_path.resolve())
            shown = rel.as_posix()
        except ValueError:
            shown = file.as_posix()
        try:
            file_findings, file_suppressed = lint_source(
                file.read_text(encoding="utf-8"),
                path=shown,
                rules=rules,
                wall_clock_allowlist=wall_clock_allowlist,
            )
        except SyntaxError as exc:
            findings.append(parse_failure_finding(shown, exc))
            files_checked += 1
            continue
        findings.extend(file_findings)
        suppressed += file_suppressed
        files_checked += 1
    return findings, suppressed, files_checked
