"""Lint findings and their text / JSON renderings.

A :class:`Finding` is one determinism hazard at a file:line.  Its
:meth:`~Finding.fingerprint` deliberately hashes the *source snippet*
rather than the line number, so unrelated edits above a baselined
finding do not churn the baseline.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field


@dataclass(frozen=True)
class Finding:
    """One determinism hazard located by a lint rule."""

    rule_id: str
    severity: str  # "error" | "warning"
    path: str  # repo-relative, POSIX separators
    line: int
    col: int
    message: str
    hint: str
    snippet: str  # the stripped source line the finding sits on

    def fingerprint(self) -> str:
        """Stable identity for baselining: rule + file + code, not line.

        Two findings of the same rule on identical source lines in one
        file share a prefix; callers disambiguate with an occurrence
        index (see :func:`fingerprint_all`).
        """
        digest = hashlib.sha1(
            f"{self.rule_id}|{self.path}|{self.snippet}".encode()
        ).hexdigest()
        return digest[:16]

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


def fingerprint_all(findings: list[Finding]) -> dict[str, Finding]:
    """Map each finding to a unique fingerprint.

    Duplicate (rule, file, snippet) triples — e.g. the same hazardous
    expression repeated in a file — get ``#1``, ``#2`` … suffixes in
    line order, keeping identities stable under unrelated edits.
    """
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule_id))
    seen: dict[str, int] = {}
    result: dict[str, Finding] = {}
    for finding in ordered:
        base = finding.fingerprint()
        count = seen.get(base, 0)
        seen[base] = count + 1
        key = base if count == 0 else f"{base}#{count}"
        result[key] = finding
    return result


@dataclass
class LintReport:
    """The outcome of one lint run, after baseline filtering."""

    findings: list[Finding] = field(default_factory=list)  # all, unsuppressed
    new: list[Finding] = field(default_factory=list)  # not in the baseline
    baselined: list[Finding] = field(default_factory=list)
    suppressed: int = 0  # silenced by inline lint-ok comments
    stale_fingerprints: list[str] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        """True when no *new* (non-baselined) findings remain."""
        return not self.new


def format_text(report: LintReport) -> str:
    """Human-readable rendering, one finding per line plus a summary."""
    lines: list[str] = []
    for finding in sorted(report.new, key=lambda f: (f.path, f.line, f.col)):
        lines.append(
            f"{finding.location()}: {finding.severity} "
            f"[{finding.rule_id}] {finding.message}"
        )
        lines.append(f"    hint: {finding.hint}")
        lines.append(f"    >>> {finding.snippet}")
    lines.append(
        f"{len(report.new)} new finding(s), {len(report.baselined)} baselined, "
        f"{report.suppressed} suppressed, {report.files_checked} file(s) checked"
    )
    if report.stale_fingerprints:
        lines.append(
            f"note: {len(report.stale_fingerprints)} stale baseline entr(y/ies) "
            "no longer match any finding — refresh with --update-baseline"
        )
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    """Machine-readable rendering for CI."""
    payload = {
        "ok": report.ok,
        "files_checked": report.files_checked,
        "suppressed": report.suppressed,
        "new": [asdict(f) for f in sorted(report.new, key=lambda f: (f.path, f.line))],
        "baselined": [
            asdict(f) for f in sorted(report.baselined, key=lambda f: (f.path, f.line))
        ],
        "stale_fingerprints": sorted(report.stale_fingerprints),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
