"""Synthetic labelled captures for benchmarking and stress tests.

Generates a capture that exercises every code path of the §IV-A feature
statistics — TCP handshakes with and without completion, RST teardowns,
UDP floods spraying random ports, repeated connection attempts — at an
arbitrary packet count, without building a testbed.  The benchmark
harness uses it to time the feature pipeline on 100k+ packets; tests use
small instances as randomized fixtures.
"""

from __future__ import annotations

import numpy as np

from repro.capture.dataset import TrafficDataset
from repro.sim.packet import PROTO_TCP, PROTO_UDP, TcpFlags
from repro.sim.tracing import PacketRecord

_SYN = int(TcpFlags.SYN)
_ACK = int(TcpFlags.ACK)
_FIN = int(TcpFlags.FIN)
_RST = int(TcpFlags.RST)
_FLAG_CHOICES = (_SYN, _ACK, _SYN | _ACK, _FIN | _ACK, _RST, _ACK | int(TcpFlags.PSH))


def synthetic_capture(
    n_packets: int,
    duration: float = 100.0,
    malicious_fraction: float = 0.4,
    seed: int = 0,
) -> TrafficDataset:
    """A randomized labelled capture of ``n_packets`` over ``duration`` s.

    Benign traffic is TCP to a handful of services from a small device
    population; malicious traffic mixes SYN floods (random sources, one
    victim port) and UDP floods (random destination ports), mirroring the
    testbed's attack mix.
    """
    rng = np.random.default_rng(seed)
    timestamps = np.sort(rng.uniform(0.0, duration, n_packets))
    malicious = rng.random(n_packets) < malicious_fraction
    syn_flood = malicious & (rng.random(n_packets) < 0.5)
    udp_flood = malicious & ~syn_flood

    protocol = np.where(udp_flood, PROTO_UDP, PROTO_TCP)
    src_ip = np.where(
        malicious,
        rng.integers(0x0A000100, 0x0A0001FF, n_packets),
        rng.integers(0x0A000001, 0x0A000010, n_packets),
    )
    dst_ip = np.where(malicious, 0x0A0000FE, rng.integers(0x0A000010, 0x0A000018, n_packets))
    src_port = rng.integers(1024, 65535, n_packets)
    dst_port = np.where(
        udp_flood,
        rng.integers(1, 65535, n_packets),
        np.where(syn_flood, 80, rng.choice([80, 443, 53, 1883, 8883], n_packets)),
    )
    flags = np.where(
        protocol == PROTO_UDP,
        0,
        np.where(syn_flood, _SYN, rng.choice(_FLAG_CHOICES, n_packets)),
    )
    size = np.where(malicious, rng.integers(40, 80, n_packets), rng.integers(60, 1500, n_packets))
    seq = np.where(protocol == PROTO_TCP, rng.integers(0, 2**32, n_packets), 0)

    records = [
        PacketRecord(
            timestamp=float(timestamps[i]),
            src_ip=int(src_ip[i]),
            dst_ip=int(dst_ip[i]),
            protocol=int(protocol[i]),
            src_port=int(src_port[i]),
            dst_port=int(dst_port[i]),
            size=int(size[i]),
            tcp_flags=int(flags[i]),
            seq=int(seq[i]),
            label=int(malicious[i]),
            attack=("syn_flood" if syn_flood[i] else "udp_flood") if malicious[i] else None,
        )
        for i in range(n_packets)
    ]
    return TrafficDataset(records)
