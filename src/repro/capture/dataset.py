"""Labelled traffic datasets.

A :class:`TrafficDataset` wraps an ordered list of
:class:`~repro.sim.tracing.PacketRecord` rows with the operations the
evaluation needs: class balance summaries (the paper's §IV-D dataset
composition), chronological and stratified splits, per-attack breakdowns,
and CSV round-trips for offline analysis.
"""

from __future__ import annotations

import csv
import random
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.features.columnar import RecordBatch
from repro.sim.tracing import PacketRecord

_CSV_FIELDS = [
    "timestamp",
    "src_ip",
    "dst_ip",
    "protocol",
    "src_port",
    "dst_port",
    "size",
    "tcp_flags",
    "seq",
    "label",
    "attack",
]


@dataclass(frozen=True)
class DatasetSummary:
    """Class-balance summary (the paper's dataset-composition numbers)."""

    total: int
    malicious: int
    benign: int
    by_attack: dict[str, int]
    duration: float

    @property
    def malicious_fraction(self) -> float:
        return self.malicious / self.total if self.total else 0.0

    def __str__(self) -> str:
        lines = [
            f"packets: {self.total} over {self.duration:.1f}s",
            f"  malicious: {self.malicious} ({100 * self.malicious_fraction:.1f}%)",
            f"  benign:    {self.benign} ({100 * (1 - self.malicious_fraction):.1f}%)",
        ]
        for attack, count in sorted(self.by_attack.items()):
            lines.append(f"    {attack}: {count}")
        return "\n".join(lines)


class TrafficDataset:
    """An ordered, labelled packet capture."""

    def __init__(self, records: Sequence[PacketRecord]) -> None:
        self.records = list(records)
        self._batch: RecordBatch | None = None

    def to_batch(self) -> RecordBatch:
        """The capture as a columnar :class:`RecordBatch` (cached).

        This is what the feature pipeline consumes; building it once per
        capture amortises the row→column conversion across every model's
        extraction pass.
        """
        if self._batch is None or len(self._batch) != len(self.records):
            self._batch = RecordBatch.from_records(self.records)
        return self._batch

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[PacketRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> PacketRecord:
        return self.records[index]

    @property
    def labels(self) -> list[int]:
        return [r.label for r in self.records]

    @property
    def duration(self) -> float:
        if not self.records:
            return 0.0
        return self.records[-1].timestamp - self.records[0].timestamp

    def summary(self) -> DatasetSummary:
        """Compute the class-balance summary."""
        malicious = sum(r.label for r in self.records)
        by_attack = Counter(r.attack for r in self.records if r.label == 1)
        return DatasetSummary(
            total=len(self.records),
            malicious=malicious,
            benign=len(self.records) - malicious,
            by_attack=dict(by_attack),
            duration=self.duration,
        )

    # ------------------------------------------------------------------
    # Splits

    def chronological_split(self, train_fraction: float = 0.7) -> tuple["TrafficDataset", "TrafficDataset"]:
        """Split by capture time: train on the past, test on the future."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
        cut = int(len(self.records) * train_fraction)
        return TrafficDataset(self.records[:cut]), TrafficDataset(self.records[cut:])

    def stratified_split(
        self, train_fraction: float = 0.7, seed: int = 0
    ) -> tuple["TrafficDataset", "TrafficDataset"]:
        """Random split preserving the malicious/benign ratio."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
        rng = random.Random(seed)
        train: list[PacketRecord] = []
        test: list[PacketRecord] = []
        for label in (0, 1):
            group = [r for r in self.records if r.label == label]
            rng.shuffle(group)
            cut = int(len(group) * train_fraction)
            train.extend(group[:cut])
            test.extend(group[cut:])
        train.sort(key=lambda r: r.timestamp)
        test.sort(key=lambda r: r.timestamp)
        return TrafficDataset(train), TrafficDataset(test)

    def filter(self, predicate) -> "TrafficDataset":
        """A new dataset with only records where ``predicate(record)``."""
        return TrafficDataset([r for r in self.records if predicate(r)])

    def time_slice(self, start: float, end: float) -> "TrafficDataset":
        """Records with ``start <= timestamp < end``."""
        return TrafficDataset(
            [r for r in self.records if start <= r.timestamp < end]
        )

    # ------------------------------------------------------------------
    # Persistence

    def to_csv(self, path: str | Path) -> None:
        """Write the capture as CSV (one row per packet)."""
        with open(path, "w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=_CSV_FIELDS)
            writer.writeheader()
            for r in self.records:
                writer.writerow(
                    {
                        "timestamp": repr(r.timestamp),
                        "src_ip": r.src_ip,
                        "dst_ip": r.dst_ip,
                        "protocol": r.protocol,
                        "src_port": r.src_port,
                        "dst_port": r.dst_port,
                        "size": r.size,
                        "tcp_flags": r.tcp_flags,
                        "seq": r.seq,
                        "label": r.label,
                        "attack": r.attack or "",
                    }
                )

    @classmethod
    def from_csv(cls, path: str | Path) -> "TrafficDataset":
        """Read a capture previously written by :meth:`to_csv`."""
        records = []
        with open(path, newline="") as fh:
            for row in csv.DictReader(fh):
                records.append(
                    PacketRecord(
                        timestamp=float(row["timestamp"]),
                        src_ip=int(row["src_ip"]),
                        dst_ip=int(row["dst_ip"]),
                        protocol=int(row["protocol"]),
                        src_port=int(row["src_port"]),
                        dst_port=int(row["dst_port"]),
                        size=int(row["size"]),
                        tcp_flags=int(row["tcp_flags"]),
                        seq=int(row["seq"]),
                        label=int(row["label"]),
                        attack=row["attack"] or None,
                    )
                )
        return cls(records)

    def save(self, path: str | Path) -> Path:
        """Persist the capture as a pipeline artifact (lossless CSV).

        This is the canonical on-disk format for capture-stage artifacts:
        timestamps are written via ``repr`` so the float round-trips
        bit-exactly and a reloaded capture produces byte-identical
        feature matrices.  Returns the written path.
        """
        path = Path(path)
        self.to_csv(path)
        return path

    @classmethod
    def load(cls, path: str | Path) -> "TrafficDataset":
        """Reload a capture written by :meth:`save`."""
        return cls.from_csv(path)

    @classmethod
    def merge(cls, datasets: Iterable["TrafficDataset"]) -> "TrafficDataset":
        """Concatenate captures and re-sort chronologically."""
        records: list[PacketRecord] = []
        for dataset in datasets:
            records.extend(dataset.records)
        records.sort(key=lambda r: r.timestamp)
        return cls(records)
