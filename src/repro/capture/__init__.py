"""Traffic capture products: labelled datasets built from packet records.

The testbed's dataset-generation phase runs the full botnet scenario and
collects every packet the IDS tap sees into a
:class:`~repro.capture.dataset.TrafficDataset` — the artifact the paper
trains its models on (their 10-minute run produced ~3.0M malicious and
~2.2M benign packets).
"""

from repro.capture.analysis import (
    AttackInterval,
    CaptureReport,
    FlowStats,
    aggregate_flows,
    analyze,
    attack_intervals,
    rate_series,
    top_talkers,
)
from repro.capture.dataset import DatasetSummary, TrafficDataset
from repro.capture.synthetic import synthetic_capture

__all__ = [
    "AttackInterval",
    "CaptureReport",
    "DatasetSummary",
    "FlowStats",
    "TrafficDataset",
    "aggregate_flows",
    "analyze",
    "attack_intervals",
    "rate_series",
    "synthetic_capture",
    "top_talkers",
]
