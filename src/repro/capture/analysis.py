"""Capture analytics: flow aggregation and attack forensics.

The paper's workflow inspects captures with external tools (Wireshark);
this module provides the equivalent programmatic views: per-flow
aggregates (the conversation list), top-talker rankings, per-second rate
series, and ground-truth attack interval extraction — the pieces the
examples and benchmarks use to describe what a run actually contained.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.sim.tracing import PacketRecord

FlowKey = tuple[int, int, int, int, int]  # src, sport, dst, dport, proto


@dataclass
class FlowStats:
    """Aggregate view of one 5-tuple conversation."""

    key: FlowKey
    packets: int = 0
    payload_bytes: int = 0
    first_seen: float = float("inf")
    last_seen: float = 0.0
    syn_count: int = 0
    fin_count: int = 0
    malicious_packets: int = 0

    @property
    def duration(self) -> float:
        if self.packets == 0:
            return 0.0
        return max(0.0, self.last_seen - self.first_seen)

    @property
    def is_malicious(self) -> bool:
        """Majority-label verdict for the flow."""
        return self.malicious_packets * 2 > self.packets

    def add(self, record: PacketRecord) -> None:
        self.packets += 1
        self.payload_bytes += record.size
        self.first_seen = min(self.first_seen, record.timestamp)
        self.last_seen = max(self.last_seen, record.timestamp)
        if record.is_syn:
            self.syn_count += 1
        if record.is_fin:
            self.fin_count += 1
        self.malicious_packets += record.label


def aggregate_flows(records: Iterable[PacketRecord]) -> dict[FlowKey, FlowStats]:
    """Group a capture into per-flow aggregates (the conversation list)."""
    flows: dict[FlowKey, FlowStats] = {}
    for record in records:
        key = record.flow_key
        stats = flows.get(key)
        if stats is None:
            stats = flows[key] = FlowStats(key)
        stats.add(record)
    return flows


def top_talkers(
    records: Iterable[PacketRecord], n: int = 10, by: str = "packets"
) -> list[tuple[int, int]]:
    """(src_ip, count) pairs of the busiest sources, descending.

    ``by`` is ``"packets"`` or ``"bytes"``.
    """
    if by not in ("packets", "bytes"):
        raise ValueError(f"unknown ranking {by!r}")
    totals: dict[int, int] = defaultdict(int)
    for record in records:
        totals[record.src_ip] += record.size if by == "bytes" else 1
    ranked = sorted(totals.items(), key=lambda kv: kv[1], reverse=True)
    return ranked[:n]


def rate_series(
    records: Sequence[PacketRecord], interval: float = 1.0
) -> list[tuple[float, int, int]]:
    """(interval start, benign packets, malicious packets) per interval."""
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    buckets: dict[int, list[int]] = defaultdict(lambda: [0, 0])
    for record in records:
        buckets[int(record.timestamp // interval)][record.label] += 1
    return [
        (index * interval, counts[0], counts[1])
        for index, counts in sorted(buckets.items())
    ]


@dataclass(frozen=True)
class AttackInterval:
    """One contiguous span of a labelled attack in a capture."""

    attack: str
    start: float
    end: float
    packets: int

    @property
    def duration(self) -> float:
        return self.end - self.start


def attack_intervals(
    records: Sequence[PacketRecord], gap: float = 2.0
) -> list[AttackInterval]:
    """Ground-truth attack spans, split where traffic pauses > ``gap``.

    Used to annotate timelines and to verify schedules actually executed.
    """
    by_attack: dict[str, list[float]] = defaultdict(list)
    for record in records:
        if record.label == 1 and record.attack:
            by_attack[record.attack].append(record.timestamp)
    intervals: list[AttackInterval] = []
    for attack, times in by_attack.items():
        times.sort()
        span_start = times[0]
        previous = times[0]
        count = 1
        for t in times[1:]:
            if t - previous > gap:
                intervals.append(AttackInterval(attack, span_start, previous, count))
                span_start = t
                count = 0
            previous = t
            count += 1
        intervals.append(AttackInterval(attack, span_start, previous, count))
    intervals.sort(key=lambda i: i.start)
    return intervals


@dataclass
class CaptureReport:
    """A one-call forensic summary of a capture."""

    n_flows: int
    n_malicious_flows: int
    talkers: list[tuple[int, int]]
    intervals: list[AttackInterval] = field(default_factory=list)

    def __str__(self) -> str:
        lines = [
            f"flows: {self.n_flows} ({self.n_malicious_flows} malicious)",
            "top talkers (src ip value, packets): "
            + ", ".join(f"{ip}:{count}" for ip, count in self.talkers[:5]),
        ]
        for interval in self.intervals:
            lines.append(
                f"  {interval.attack}: t={interval.start:.1f}-{interval.end:.1f}s "
                f"({interval.packets} packets)"
            )
        return "\n".join(lines)


def analyze(records: Sequence[PacketRecord]) -> CaptureReport:
    """Build the full forensic report for a capture."""
    flows = aggregate_flows(records)
    return CaptureReport(
        n_flows=len(flows),
        n_malicious_flows=sum(1 for f in flows.values() if f.is_malicious),
        talkers=top_talkers(records),
        intervals=attack_intervals(records),
    )
