"""repro.obs — unified telemetry: metrics, sim-time spans, run timelines.

One import surface for the three telemetry primitives plus the scoping
API every instrumented component uses::

    from repro import obs

    ctx = obs.current()                      # ambient context (disabled default)
    packets = ctx.registry.counter("sim.packets", node="cam-1")
    with ctx.tracer.span("tcp.handshake", node="cam-1"):
        ...
    with obs.scope() as octx:                # enable for one run
        result = run_full_experiment(...)
    snapshot = octx.snapshot(include_wall=False)   # deterministic export

Telemetry never perturbs the simulation (no scheduled events, no RNG)
and never enters pipeline cache keys.
"""

from repro.obs.context import ObsContext, current, scope
from repro.obs.events import EventLog, ObsEvent, events_from_dicts
from repro.obs.flight import FlightRecorder
from repro.obs.profile import KernelProfiler, callsite_label, classify_owner
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_INSTRUMENT,
    NullInstrument,
)
from repro.obs.timeline import RunTimeline, timeline_from_result
from repro.obs.trace import NULL_SPAN, Span, SpanHandle, SpanTracer, chrome_trace

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "EventLog",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "KernelProfiler",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "NULL_SPAN",
    "NullInstrument",
    "ObsContext",
    "ObsEvent",
    "RunTimeline",
    "Span",
    "SpanHandle",
    "SpanTracer",
    "callsite_label",
    "chrome_trace",
    "classify_owner",
    "current",
    "events_from_dicts",
    "scope",
    "timeline_from_result",
]
