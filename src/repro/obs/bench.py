"""Micro-benchmark for the telemetry no-op fast path.

Instrumentation stays compiled into the hot paths even when telemetry
is off, so the disabled cost must be a hair above an uninstrumented
loop.  This benchmark measures three variants of the same arithmetic
loop — uninstrumented, disabled-registry ``inc()``, enabled-registry
``inc()`` — and reports per-iteration nanoseconds and overhead ratios.

Run it with ``python -m repro.obs.bench``; ``tests/test_obs.py`` pins
the disabled ratio with a generous bound so CI noise cannot flake it.
"""

from __future__ import annotations

import time

from repro.obs.registry import MetricsRegistry


def _loop_uninstrumented(iterations: int) -> float:
    acc = 0.0
    for i in range(iterations):
        acc += i * 0.5
    return acc


def _loop_counter(iterations: int, counter) -> float:
    acc = 0.0
    for i in range(iterations):
        acc += i * 0.5
        counter.inc()
    return acc


def _time_best(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall seconds — minimum filters scheduler noise."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_overhead_benchmark(iterations: int = 200_000, repeats: int = 5) -> dict:
    """Measure disabled/enabled telemetry overhead vs an uninstrumented loop.

    Returns per-variant best-of-``repeats`` ns/iteration plus the
    ratios the no-op fast path is judged by.
    """
    disabled = MetricsRegistry(enabled=False).counter("bench.ops")
    enabled = MetricsRegistry(enabled=True).counter("bench.ops")

    base = _time_best(lambda: _loop_uninstrumented(iterations), repeats)
    off = _time_best(lambda: _loop_counter(iterations, disabled), repeats)
    on = _time_best(lambda: _loop_counter(iterations, enabled), repeats)

    scale = 1e9 / iterations
    return {
        "iterations": iterations,
        "repeats": repeats,
        "uninstrumented_ns": base * scale,
        "disabled_ns": off * scale,
        "enabled_ns": on * scale,
        "disabled_ratio": off / base if base else float("inf"),
        "enabled_ratio": on / base if base else float("inf"),
    }


class _BenchEvent:
    """Minimal stand-in for a kernel Event (callback + args)."""

    __slots__ = ("time", "callback", "args")

    def __init__(self, callback, args=()) -> None:
        self.time = 0.0
        self.callback = callback
        self.args = args


def _loop_dispatch_direct(events) -> None:
    for event in events:
        event.callback(*event.args)


def _loop_dispatch_gated(events, profiler) -> None:
    # The exact shape of the kernel's dispatch sites: one `is None`
    # check per event when profiling is off.
    for event in events:
        if profiler is None:
            event.callback(*event.args)
        else:
            profiler.dispatch(event)


def run_profiler_overhead_benchmark(iterations: int = 50_000, repeats: int = 5) -> dict:
    """Measure the profiler's dispatch-site overhead.

    Three variants of draining the same event list: direct callback
    (the pre-profiler kernel), the gated dispatch with profiling *off*
    (what every un-profiled run now pays — the pinned bound), and with
    profiling *on* (two clock reads + a dict hit per event).
    """
    from repro.obs.profile import KernelProfiler

    def _noop() -> None:
        pass

    events = [_BenchEvent(_noop) for _ in range(iterations)]
    profiler = KernelProfiler()

    base = _time_best(lambda: _loop_dispatch_direct(events), repeats)
    off = _time_best(lambda: _loop_dispatch_gated(events, None), repeats)
    on = _time_best(lambda: _loop_dispatch_gated(events, profiler), repeats)

    scale = 1e9 / iterations
    return {
        "iterations": iterations,
        "repeats": repeats,
        "direct_ns": base * scale,
        "profile_off_ns": off * scale,
        "profile_on_ns": on * scale,
        "profile_off_ratio": off / base if base else float("inf"),
        "profile_on_ratio": on / base if base else float("inf"),
    }


def main() -> None:
    result = run_overhead_benchmark()
    print(f"iterations per variant : {result['iterations']} (best of {result['repeats']})")
    print(f"uninstrumented loop    : {result['uninstrumented_ns']:8.2f} ns/iter")
    print(
        f"disabled registry inc(): {result['disabled_ns']:8.2f} ns/iter "
        f"({result['disabled_ratio']:.2f}x)"
    )
    print(
        f"enabled registry inc() : {result['enabled_ns']:8.2f} ns/iter "
        f"({result['enabled_ratio']:.2f}x)"
    )
    prof = run_profiler_overhead_benchmark()
    print(f"dispatch direct        : {prof['direct_ns']:8.2f} ns/event")
    print(
        f"dispatch, profile off  : {prof['profile_off_ns']:8.2f} ns/event "
        f"({prof['profile_off_ratio']:.2f}x)"
    )
    print(
        f"dispatch, profile on   : {prof['profile_on_ns']:8.2f} ns/event "
        f"({prof['profile_on_ratio']:.2f}x)"
    )


if __name__ == "__main__":
    main()
