"""Run timelines: one per-second table joining every telemetry source.

The paper's evaluation *is* a timeline — per-second accuracy with dips
at attack boundaries, traffic volume collapsing under flood, queue
overflow onset.  :class:`RunTimeline` joins those series into one table:
packet and malicious counts per bucket (from the IDS window verdicts),
per-model bucketed accuracy (from
:meth:`~repro.ids.report.DetectionReport.per_second_accuracy`), and
per-kind event counts (queue drops, fault activations, attack edges,
supervisor restarts) from the telemetry event log — so a dip in one
column is attributable to the events in the same row.

Exports: JSON and CSV (deterministic — timeline content is sim-time
only), and an ASCII chart (``ddoshield timeline``) rendering traffic
bars, an accuracy column, and event markers per second.
"""

from __future__ import annotations

import json
import math
from typing import TYPE_CHECKING, Iterable

from repro.obs.events import ObsEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ids.report import DetectionReport

#: Event-kind prefixes surfaced as row markers in the ASCII chart.
MARKER_PREFIXES = ("attack", "fault", "supervisor", "mitigation")

#: Widest bucket span the dense export will materialize; beyond this the
#: export falls back to sparse rows (only buckets that hold data).  A
#: single stray far-future timestamp must not turn a chart render into a
#: multi-gigabyte allocation.
MAX_DENSE_BUCKETS = 100_000


class RunTimeline:
    """A sparse per-bucket table with deterministic dense export."""

    def __init__(self, bucket_seconds: float = 1.0) -> None:
        if bucket_seconds <= 0:
            raise ValueError(f"bucket_seconds must be positive, got {bucket_seconds}")
        self.bucket_seconds = bucket_seconds
        self._cells: dict[int, dict[str, float]] = {}
        self._marks: dict[int, list[str]] = {}
        self._columns: list[str] = []

    # ------------------------------------------------------------------
    # Building

    def _bucket(self, time: float) -> int:
        return int(time // self.bucket_seconds)

    def _cell(self, bucket: int) -> dict[str, float]:
        return self._cells.setdefault(bucket, {})

    def _register_column(self, column: str) -> None:
        if column not in self._columns:
            self._columns.append(column)

    def add_value(self, time: float, column: str, value: float, mode: str = "sum") -> None:
        """Record ``value`` into ``column`` at ``time``'s bucket.

        ``mode="sum"`` accumulates (counts); ``mode="set"`` overwrites
        (point-in-time series like accuracy or queue depth).  Non-finite
        times or values (NaN/inf from a degenerate zero-duration run)
        are dropped rather than poisoning the bucket index.
        """
        if not (math.isfinite(time) and math.isfinite(value)):
            return
        self._register_column(column)
        cell = self._cell(self._bucket(time))
        if mode == "sum":
            cell[column] = cell.get(column, 0.0) + value
        elif mode == "set":
            cell[column] = value
        else:
            raise ValueError(f"mode must be 'sum' or 'set', got {mode!r}")

    def add_mark(self, time: float, mark: str) -> None:
        """Attach a human-readable marker to ``time``'s bucket."""
        if not math.isfinite(time):
            return
        marks = self._marks.setdefault(self._bucket(time), [])
        if mark not in marks:
            marks.append(mark)

    def add_windows(self, report: "DetectionReport") -> None:
        """Traffic columns plus one accuracy column from an IDS report."""
        for window in report.windows:
            self.add_value(window.start_time, "packets", window.n_packets)
            self.add_value(window.start_time, "malicious", window.n_malicious_true)
            if window.is_degraded:
                self.add_value(window.start_time, "degraded_windows", 1.0)
        self.add_accuracy(report)

    def add_accuracy(self, report: "DetectionReport") -> None:
        """One ``acc.<model>`` column from the report's bucketed series."""
        column = f"acc.{report.model_name}"
        for entry in report.per_second_accuracy(self.bucket_seconds):
            self.add_value(entry["second"], column, entry["accuracy"], mode="set")

    def add_events(self, events: Iterable[ObsEvent | dict]) -> None:
        """Per-kind event-count columns plus chart markers."""
        for event in events:
            if isinstance(event, dict):
                event = ObsEvent.from_dict(event)
            self.add_value(event.time, f"ev.{event.kind}", event.value)
            if event.kind.split(".", 1)[0] in MARKER_PREFIXES:
                mark = f"{event.kind}[{event.detail}]" if event.detail else event.kind
                self.add_mark(event.time, mark)

    def add_series(self, column: str, pairs: Iterable[tuple[float, float]]) -> None:
        """A sampled point-in-time series (last sample per bucket wins)."""
        for time, value in pairs:
            self.add_value(time, column, value, mode="set")

    # ------------------------------------------------------------------
    # Export

    @property
    def columns(self) -> list[str]:
        """Column names in deterministic order (registration, then name)."""
        return sorted(self._columns)

    def rows(self) -> list[dict]:
        """Dense per-bucket rows from the first to the last seen bucket.

        When the bucket span exceeds :data:`MAX_DENSE_BUCKETS` (a stray
        far-future sample, or marks scattered over a huge idle range)
        only populated buckets are emitted, keeping the export bounded
        by data volume instead of time span.
        """
        if not self._cells and not self._marks:
            return []
        buckets = set(self._cells) | set(self._marks)
        first, last = min(buckets), max(buckets)
        if last - first + 1 > MAX_DENSE_BUCKETS:
            ordered: Iterable[int] = sorted(buckets)
        else:
            ordered = range(first, last + 1)
        columns = self.columns
        out = []
        for bucket in ordered:
            cell = self._cells.get(bucket, {})
            row: dict = {"second": bucket * self.bucket_seconds}
            for column in columns:
                row[column] = cell.get(column, 0.0)
            row["events"] = ";".join(self._marks.get(bucket, []))
            out.append(row)
        return out

    def to_json(self) -> str:
        return json.dumps(
            {
                "bucket_seconds": self.bucket_seconds,
                "columns": self.columns,
                "rows": self.rows(),
            },
            indent=2,
            sort_keys=True,
        )

    def to_csv(self) -> str:
        columns = ["second"] + self.columns + ["events"]
        lines = [",".join(columns)]
        for row in self.rows():
            rendered = []
            for column in columns:
                value = row[column]
                if isinstance(value, float) and math.isfinite(value) and value == int(value):
                    rendered.append(str(int(value)))
                else:
                    rendered.append(str(value))
            lines.append(",".join(rendered))
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    # Rendering

    def render_ascii(
        self,
        traffic: str = "packets",
        accuracy: str | None = None,
        width: int = 40,
    ) -> str:
        """Per-second chart: traffic bar, accuracy %, event markers.

        ``accuracy`` picks an ``acc.<model>`` column; default is the
        first accuracy column present.
        """
        rows = self.rows()
        if not rows:
            return "(empty timeline)"
        if accuracy is None:
            acc_columns = [c for c in self.columns if c.startswith("acc.")]
            accuracy = acc_columns[0] if acc_columns else None
        peak = max((row.get(traffic, 0.0) for row in rows), default=0.0)
        title = f"{traffic} (peak {int(peak)})"
        if accuracy is not None:
            title += f" | {accuracy}"
        lines = [f"  t(s)  {title}", f"  {'-' * (8 + width + 18)}"]
        for row in rows:
            value = row.get(traffic, 0.0)
            bar = "#" * (int(round(width * value / peak)) if peak else 0)
            line = f"{row['second']:>6.0f}  {bar:<{width}} {int(value):>7}"
            if accuracy is not None:
                cell = self._cells.get(self._bucket(row["second"]), {})
                if accuracy in cell:
                    line += f"  {100.0 * cell[accuracy]:5.1f}%"
                else:
                    line += "       -"  # no scored window in this bucket
            if row["events"]:
                line += f"  {row['events']}"
            drops = row.get("ev.queue.drop", 0.0)
            if drops:
                line += f"  [queue drops: {int(drops)}]"
            lines.append(line)
        return "\n".join(lines)


def timeline_from_result(
    result,
    bucket_seconds: float = 1.0,
    events: Iterable[ObsEvent | dict] | None = None,
) -> RunTimeline:
    """Build the unified timeline of an experiment run.

    ``result`` is an :class:`~repro.testbed.experiment.ExperimentResult`;
    traffic columns come from the first detection report's windows (all
    models observe the same capture), accuracy columns from every
    report.  Events default to the run's attached telemetry snapshot;
    for fault runs without telemetry, the fault/supervisor traces are
    used so dips stay attributable.
    """
    timeline = RunTimeline(bucket_seconds)
    reports = list(getattr(result, "detection", []))
    if reports:
        timeline.add_windows(reports[0])
        for report in reports[1:]:
            timeline.add_accuracy(report)
    mitigation = getattr(result, "mitigation", None)
    if events is None:
        telemetry = getattr(result, "telemetry", None)
        if telemetry:
            events = telemetry.get("events", [])
        else:
            events = [
                ObsEvent(e.time, f"fault.{e.action}", detail=e.kind)
                for e in getattr(result, "fault_events", [])
            ] + [
                ObsEvent(e.time, f"supervisor.{e.action}", detail=e.container)
                for e in getattr(result, "supervisor_events", [])
            ]
            if mitigation:
                # The obs snapshot already carries mitigation.* events;
                # only the telemetry-off path needs the controller's log.
                events = list(events) + [
                    ObsEvent(
                        e["time"], f"mitigation.{e['action']}",
                        detail=e.get("detail", ""), value=e.get("value", 1.0),
                    )
                    for e in mitigation.get("events", [])
                ]
    timeline.add_events(events)
    if mitigation:
        add_impact_series(timeline, mitigation.get("impact", []))
    return timeline


def add_impact_series(timeline: RunTimeline, samples: Iterable[dict]) -> None:
    """Join victim-impact samples into the timeline's recovery columns.

    ``samples`` are :class:`~repro.testbed.impact.ImpactSample` dicts;
    ``goodput`` and ``half_open`` are point-in-time, while the cumulative
    ``accepted`` counter is differenced into per-bucket connection
    completions (``conn.accepted``) so the column reads as a rate.
    """
    last_accepted: int | None = None
    for sample in samples:
        time = sample["time"]
        timeline.add_value(time, "goodput", sample["goodput_bytes"], mode="set")
        timeline.add_value(time, "half_open", sample["half_open"], mode="set")
        accepted = sample.get("accepted", 0)
        if last_accepted is not None:
            timeline.add_value(time, "conn.accepted", accepted - last_accepted)
        last_accepted = accepted
