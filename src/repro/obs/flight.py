"""Crash flight recorder: a bounded ring of recent telemetry moments.

A :class:`FlightRecorder` keeps the last N kernel dispatches, metric
events, and span opens/closes in a fixed-size ring.  It records nothing
to disk and nothing in steady state beyond the ring itself; its only
output is :meth:`dump`, called when something goes wrong — a fatal
:class:`~repro.analysis.sanitizers.SanitizerError`, a campaign run
timeout, or a crashed campaign worker — so a poisoned run leaves a
postmortem (what the kernel was doing just before death, plus the
metric state at that instant) instead of just an error string.

Everything stored is simulation-time data: entry times are sim seconds
and the attached metric snapshot excludes wall-clock instruments, so a
dump is deterministic for a seed and safe to diff across repeats.  Like
the rest of ``repro.obs``, the recorder never schedules events or
consumes RNG.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.obs.profile import callsite_label

#: Default ring size: enough to see the last few bucket drains and the
#: spans around them without holding a whole run in memory.
DEFAULT_CAPACITY = 512


class FlightRecorder:
    """Bounded ring buffer of recent observability moments."""

    __slots__ = ("capacity", "enabled", "total_recorded", "_ring")

    def __init__(self, capacity: int = DEFAULT_CAPACITY, enabled: bool = True) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.enabled = enabled
        self.total_recorded = 0
        # Entries are (time, kind, detail, value); detail may be a raw
        # callback for dispatch entries, resolved to a label lazily so
        # the hot path does no string work.
        self._ring: deque = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._ring)

    def note(self, time: float, kind: str, detail: str = "", value: float = 1.0) -> None:
        """Record a generic moment (metric event, span edge, marker)."""
        if not self.enabled:
            return
        self.total_recorded += 1
        self._ring.append((time, kind, detail, value))

    def note_dispatch(self, time: float, callback: Any) -> None:
        """Record a kernel dispatch.  Hot path: callers pre-check for a
        live recorder, and the callback is stored raw (no formatting)."""
        self.total_recorded += 1
        self._ring.append((time, "dispatch", callback, 1.0))

    def to_dicts(self) -> list[dict]:
        """Ring contents oldest-first, with callbacks resolved to labels."""
        rows = []
        for time, kind, detail, value in self._ring:
            if not isinstance(detail, str):
                detail = callsite_label(detail)
            rows.append({"time": time, "kind": kind, "detail": detail, "value": value})
        return rows

    def dump(self, registry: Any = None) -> dict:
        """Postmortem payload: the ring plus (optionally) the metric
        state at dump time — the crash-instant values of every counter
        and gauge, which is the 'metric deltas' view of what the run had
        done so far.  Wall-clock metrics are excluded to keep the dump
        deterministic."""
        payload: dict = {
            "capacity": self.capacity,
            "total_recorded": self.total_recorded,
            "entries": self.to_dicts(),
        }
        if registry is not None:
            payload["metrics"] = registry.snapshot(include_wall=False)
        return payload
