"""Sim-time telemetry events: the attribution substrate of run timelines.

Counters say *how many*; events say *when*.  An :class:`ObsEvent` is one
timestamped fact — a queue drop, a fault activation, an attack launch, a
supervisor restart, an IDS window verdict — recorded against the
simulator's virtual clock, so per-second timeline buckets can attribute
an accuracy dip or traffic spike to what happened in that same second.

Events are deterministic by construction: they carry only sim-time and
sim-derived values, never wall clocks, and export in a stable sort
order.  Recording into a disabled log is a no-op.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True, slots=True)
class ObsEvent:
    """One timestamped telemetry fact.

    ``kind`` is dotted and hierarchical (``queue.drop``,
    ``fault.activate``, ``attack.start``, ``supervisor.restart``,
    ``ids.window``); ``detail`` narrows it (queue name, attack kind,
    container, model) and ``value`` carries an optional measurement
    (defaults to 1.0 so plain occurrences sum into per-second counts).
    """

    time: float
    kind: str
    detail: str = ""
    value: float = 1.0

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "kind": self.kind,
            "detail": self.detail,
            "value": self.value,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ObsEvent":
        return cls(**payload)


class EventLog:
    """An append-only, optionally disabled log of :class:`ObsEvent`."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: list[ObsEvent] = []
        # Optional FlightRecorder mirror of recorded events (wired by
        # ObsContext.make; plain attribute to avoid imports).
        self.flight = None

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[ObsEvent]:
        return iter(self.events)

    def record(
        self, time: float, kind: str, detail: str = "", value: float = 1.0
    ) -> None:
        """Append one event (no-op when the log is disabled)."""
        if not self.enabled:
            return
        self.events.append(ObsEvent(time, kind, detail, value))
        if self.flight is not None:
            self.flight.note(time, kind, detail, value)

    def by_kind(self, prefix: str) -> list[ObsEvent]:
        """Events whose kind equals or starts with ``prefix``."""
        return [
            e
            for e in self.events
            if e.kind == prefix or e.kind.startswith(prefix + ".")
        ]

    def to_dicts(self) -> list[dict]:
        """Deterministically ordered JSON-able export."""
        ordered = sorted(self.events, key=lambda e: (e.time, e.kind, e.detail))
        return [e.to_dict() for e in ordered]


def events_from_dicts(payload: Iterable[dict]) -> list[ObsEvent]:
    """Rebuild events from an exported snapshot."""
    return [ObsEvent.from_dict(entry) for entry in payload]
