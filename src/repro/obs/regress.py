"""Bench-history store and regression gate.

``BENCH_sim.json`` and ``BENCH_features.json`` used to be overwritten on
every run, so the repo had benchmark *numbers* but no performance
*trajectory*.  This module turns both files into append-only histories:

.. code-block:: json

    {
      "schema": "ddoshield-bench-history/v1",
      "entries": [
        {
          "sha": "<git sha at record time>",
          "date": "<UTC ISO timestamp>",
          "sections": {
            "flood":    {"fingerprint": "<cfg sha16>", "result": {...}},
            "benign":   {"fingerprint": "...", "result": {...}},
            "features": {"fingerprint": "...", "result": {...}}
          }
        }
      ]
    }

The *config fingerprint* hashes every non-measurement key of a result
(node counts, durations, seeds, window sizes, …) so `bench-compare`
only ever compares runs of the same experiment shape — a config change
starts a new comparison lineage instead of a false regression.

``compare_section`` diffs the newest entry of a section against the
most recent earlier entry with a matching fingerprint under a relative
tolerance band, and `ddoshield bench-compare --assert-no-regression`
exits nonzero when a higher-is-better metric drops (or a lower-is-
better one rises) beyond tolerance.  CI runs it after every bench
smoke, and also verifies the gate trips on an injected synthetic
regression.

Legacy single-run files (the pre-history sectioned ``{"flood": ...}``
shape and the flat features shape) load as a one-entry history tagged
``sha="legacy"`` so existing baselines keep working as comparison
anchors.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

SCHEMA = "ddoshield-bench-history/v1"

#: Result keys that hold measurements (or machine identity), not
#: experiment configuration.  Everything else feeds the fingerprint.
MEASUREMENT_KEYS = frozenset(
    {
        "runs",
        "offline_transform",
        "per_window_latency",
        "batch_build_seconds",
        "python",
        "numpy",
        "smoke",
    }
)


def config_fingerprint(result: dict) -> str:
    """Stable short hash of a result's configuration (non-measurement) keys."""
    config = {k: v for k, v in result.items() if k not in MEASUREMENT_KEYS}
    blob = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def git_sha(repo_root: str | Path | None = None) -> str:
    """Current git commit sha, or ``"unknown"`` outside a work tree."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(repo_root) if repo_root else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


# ----------------------------------------------------------------------
# History load / record


def _legacy_sections(payload: dict) -> dict[str, dict]:
    """Map a pre-history benchmark file onto history sections."""
    sections: dict[str, dict] = {}
    if "runs" in payload or "offline_transform" in payload:
        # Flat single-result file: a sim flood result (runs) or a
        # features result (offline_transform).
        section = "features" if "offline_transform" in payload else (
            "benign" if payload.get("workload") == "benign" else "flood"
        )
        sections[section] = payload
    else:
        # Sectioned {"flood": {...}, "benign": {...}} shape.
        for key, value in payload.items():
            if isinstance(value, dict):
                sections[key] = value
    return sections


def load_history(path: str | Path) -> dict:
    """Load a bench history, upgrading legacy shapes in memory."""
    path = Path(path)
    if not path.exists():
        return {"schema": SCHEMA, "entries": []}
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return {"schema": SCHEMA, "entries": []}
    if not isinstance(payload, dict):
        return {"schema": SCHEMA, "entries": []}
    if payload.get("schema") == SCHEMA:
        entries = payload.get("entries")
        return {"schema": SCHEMA, "entries": entries if isinstance(entries, list) else []}
    sections = _legacy_sections(payload)
    if not sections:
        return {"schema": SCHEMA, "entries": []}
    entry = {
        "sha": "legacy",
        "date": "",
        "sections": {
            name: {"fingerprint": config_fingerprint(result), "result": result}
            for name, result in sections.items()
        },
    }
    return {"schema": SCHEMA, "entries": [entry]}


def record_benchmark(
    result: dict,
    path: str | Path,
    section: str,
    sha: str | None = None,
    date: str | None = None,
) -> dict:
    """Append ``result`` to the history at ``path`` under ``section``.

    Sections recorded at the same sha merge into one entry (a bench run
    that produces flood then benign results lands as one history row);
    re-recording an existing section at the same sha overwrites it
    (re-running a bench at one commit keeps the latest numbers).
    Returns the full history payload that was written.
    """
    path = Path(path)
    history = load_history(path)
    if sha is None:
        sha = git_sha(path.parent if path.parent != Path("") else None)
    if date is None:
        date = datetime.now(timezone.utc).isoformat(timespec="seconds")  # repro: lint-ok[TIME001] -- bench-history record timestamp, never enters simulation
    record = {"fingerprint": config_fingerprint(result), "result": result}
    entries = history["entries"]
    if entries and entries[-1].get("sha") == sha:
        entries[-1].setdefault("sections", {})[section] = record
        entries[-1]["date"] = date
    else:
        entries.append({"sha": sha, "date": date, "sections": {section: record}})
    path.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")
    return history


# ----------------------------------------------------------------------
# Metric extraction and comparison


def extract_metrics(result: dict) -> dict[str, tuple[float, str]]:
    """Flatten a bench result into ``{name: (value, direction)}``.

    ``direction`` is ``"higher"`` (bigger is better) or ``"lower"``.
    Covers both sim-bench shapes (per-node-count rows under ``runs``)
    and the features-bench shape (offline/per-window speedups).
    """
    metrics: dict[str, tuple[float, str]] = {}
    for row in result.get("runs", []):
        nodes = row.get("nodes")
        batch = row.get("batch", {})
        value = batch.get("packets_per_second")
        if isinstance(value, (int, float)):
            metrics[f"nodes{nodes}.batch_pkts_per_s"] = (float(value), "higher")
        speedup = row.get("speedup_packets_per_second")
        if isinstance(speedup, (int, float)):
            metrics[f"nodes{nodes}.speedup"] = (float(speedup), "higher")
    offline = result.get("offline_transform")
    if isinstance(offline, dict):
        if isinstance(offline.get("speedup"), (int, float)):
            metrics["offline.speedup"] = (float(offline["speedup"]), "higher")
        rate = offline.get("vectorized_packets_per_second")
        if isinstance(rate, (int, float)):
            metrics["offline.pkts_per_s"] = (float(rate), "higher")
    window = result.get("per_window_latency")
    if isinstance(window, dict):
        if isinstance(window.get("speedup"), (int, float)):
            metrics["window.speedup"] = (float(window["speedup"]), "higher")
        mean_ms = window.get("vectorized_mean_ms")
        if isinstance(mean_ms, (int, float)):
            metrics["window.vectorized_mean_ms"] = (float(mean_ms), "lower")
    return metrics


@dataclass
class MetricDelta:
    """One metric compared between the current run and the baseline."""

    name: str
    direction: str
    baseline: float
    current: float
    ratio: float
    regressed: bool

    def format_text(self) -> str:
        arrow = "↓" if self.current < self.baseline else "↑"
        flag = "  REGRESSION" if self.regressed else ""
        return (
            f"  {self.name:<28} {self.baseline:>14.2f} -> {self.current:>14.2f}"
            f"  ({arrow}{abs(self.ratio - 1.0) * 100.0:.1f}%){flag}"
        )


@dataclass
class SectionComparison:
    """Comparison verdict for one benchmark section."""

    section: str
    current_sha: str
    baseline_sha: str | None
    tolerance: float
    deltas: list[MetricDelta] = field(default_factory=list)
    note: str = ""

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def format_text(self) -> str:
        head = f"[{self.section}] current={self.current_sha[:12]}"
        if self.baseline_sha is None:
            return f"{head}  {self.note or 'no baseline — nothing to compare'}"
        head += f" baseline={self.baseline_sha[:12]} tolerance={self.tolerance:.0%}"
        lines = [head]
        lines.extend(d.format_text() for d in self.deltas)
        n_reg = len(self.regressions)
        lines.append(
            f"  => {'OK' if not n_reg else f'{n_reg} regression(s)'}"
            f" across {len(self.deltas)} metric(s)"
        )
        return "\n".join(lines)


def compare_section(
    history: dict,
    section: str,
    tolerance: float = 0.30,
    baseline: str | None = None,
) -> SectionComparison | None:
    """Compare a section's newest entry against a baseline entry.

    The baseline is the most recent *earlier* entry whose section has
    the same config fingerprint (optionally narrowed to sha-prefix
    ``baseline``).  Returns ``None`` when no entry has the section at
    all; returns a no-baseline (ok) comparison when only one exists.
    """
    entries = [e for e in history.get("entries", []) if section in e.get("sections", {})]
    if not entries:
        return None
    current_entry = entries[-1]
    current = current_entry["sections"][section]
    candidates = [
        e
        for e in entries[:-1]
        if e["sections"][section].get("fingerprint") == current.get("fingerprint")
    ]
    if baseline is not None:
        candidates = [e for e in candidates if str(e.get("sha", "")).startswith(baseline)]
    comparison = SectionComparison(
        section=section,
        current_sha=str(current_entry.get("sha", "unknown")),
        baseline_sha=None,
        tolerance=tolerance,
    )
    if not candidates:
        comparison.note = (
            "no baseline with matching config fingerprint"
            if len(entries) > 1
            else "first recorded run for this section"
        )
        return comparison
    baseline_entry = candidates[-1]
    comparison.baseline_sha = str(baseline_entry.get("sha", "unknown"))
    base_metrics = extract_metrics(baseline_entry["sections"][section].get("result", {}))
    cur_metrics = extract_metrics(current.get("result", {}))
    for name, (base_value, direction) in sorted(base_metrics.items()):
        if name not in cur_metrics:
            continue
        cur_value, _ = cur_metrics[name]
        if base_value == 0.0:
            continue
        ratio = cur_value / base_value
        if direction == "higher":
            regressed = ratio < 1.0 - tolerance
        else:
            regressed = ratio > 1.0 + tolerance
        comparison.deltas.append(
            MetricDelta(
                name=name,
                direction=direction,
                baseline=base_value,
                current=cur_value,
                ratio=ratio,
                regressed=regressed,
            )
        )
    if not comparison.deltas:
        comparison.note = "no shared metrics with baseline"
    return comparison


def compare_file(
    path: str | Path,
    sections: list[str] | None = None,
    tolerance: float = 0.30,
    baseline: str | None = None,
) -> list[SectionComparison]:
    """Compare every (or the named) section(s) of a history file."""
    history = load_history(path)
    if sections is None:
        seen: list[str] = []
        for entry in history.get("entries", []):
            for name in entry.get("sections", {}):
                if name not in seen:
                    seen.append(name)
        sections = seen
    results = []
    for section in sections:
        comparison = compare_section(
            history, section, tolerance=tolerance, baseline=baseline
        )
        if comparison is not None:
            results.append(comparison)
    return results
