"""The process-wide, explicitly-scoped telemetry context.

Instrumented components (the event kernel, queues, TCP, containers, the
IDS) fetch the *current* :class:`ObsContext` at construction time and
hold instrument handles.  The default context is disabled — every handle
is a shared null object, so leaving instrumentation in hot paths costs
one no-op method call.

Telemetry is turned on by *scoping*, never by mutating global flags from
afar::

    with obs.scope() as octx:          # fresh enabled context
        result = run_full_experiment(...)
    snapshot = octx.snapshot()

``scope()`` swaps the process-wide current context for the duration of
the ``with`` block and restores the previous one after, so nested
scopes (a campaign run inside a test inside a session) compose.  The
context is process-wide by design: simulation components are constructed
many layers below the experiment entry points, and threading an explicit
handle through every constructor would couple all of them to telemetry.
Each ``multiprocessing`` worker gets its own module state, so campaign
shards cannot cross-talk.

Crucially, enabling telemetry never perturbs the simulation: no extra
events are scheduled, no RNG is consumed — instruments only append to
side logs.  A run with telemetry on is bit-identical (in simulation
outcomes) to the same seed with telemetry off.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.obs.events import EventLog
from repro.obs.flight import DEFAULT_CAPACITY, FlightRecorder
from repro.obs.profile import KernelProfiler
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import SpanTracer


@dataclass
class ObsContext:
    """One telemetry scope: metrics + spans + events, on or off together.

    An enabled context also carries a :class:`FlightRecorder` (the crash
    postmortem ring — always on with telemetry, it is nearly free) and,
    when requested with ``make(profile=True)``, a
    :class:`KernelProfiler` that the event kernel routes dispatches
    through.
    """

    registry: MetricsRegistry
    tracer: SpanTracer
    events: EventLog
    enabled: bool
    flight: FlightRecorder | None = None
    profiler: KernelProfiler | None = None

    @classmethod
    def make(
        cls,
        enabled: bool = True,
        profile: bool = False,
        flight_capacity: int = DEFAULT_CAPACITY,
    ) -> "ObsContext":
        flight = FlightRecorder(capacity=flight_capacity) if enabled else None
        ctx = cls(
            registry=MetricsRegistry(enabled=enabled),
            tracer=SpanTracer(enabled=enabled),
            events=EventLog(enabled=enabled),
            enabled=enabled,
            flight=flight,
            profiler=KernelProfiler() if (enabled and profile) else None,
        )
        # Spans and metric events feed the flight ring as they happen.
        ctx.tracer.flight = flight
        ctx.events.flight = flight
        return ctx

    def snapshot(self, include_wall: bool = True) -> dict:
        """JSON-able dump of everything this scope observed.

        With ``include_wall=False`` the result is deterministic for a
        seed: wall-clock metrics, span wall costs, and profiler wall
        attributions are dropped (sim-time content is identical either
        way).
        """
        payload = {
            "metrics": self.registry.snapshot(include_wall=include_wall),
            "spans": self.tracer.to_dicts(include_wall=include_wall),
            "events": self.events.to_dicts(),
            "flight": self.flight.to_dicts() if self.flight is not None else [],
        }
        if self.profiler is not None:
            payload["profile"] = self.profiler.snapshot(include_wall=include_wall)
        return payload


_DISABLED = ObsContext.make(enabled=False)
_current = _DISABLED


def current() -> ObsContext:
    """The context instrumented components should record into *now*."""
    return _current


@contextmanager
def scope(ctx: ObsContext | None = None, profile: bool = False) -> Iterator[ObsContext]:
    """Make ``ctx`` (default: a fresh enabled context) current for a block."""
    global _current
    if ctx is None:
        ctx = ObsContext.make(enabled=True, profile=profile)
    previous = _current
    _current = ctx
    try:
        yield ctx
    finally:
        _current = previous
