"""Deterministic attribution profiler for the event kernel.

The kernel dispatches every simulation callback through one of two sites
(the fast path and the bucket-drain loop in
:meth:`~repro.sim.core.Simulator.run`); when a :class:`KernelProfiler`
is active those sites route through :meth:`KernelProfiler.dispatch`,
which times each callback and attributes the cost to the *owner
subsystem* of the handler (queue, channel, tcp, probe, filter, bot,
app, …), resolved from the callback's defining module.

Two export planes with different determinism guarantees:

* **counts** — events, trains, train/scalar packet totals, bucket sizes
  — are pure simulation facts, identical for a seed run over run.
  ``snapshot(include_wall=False)`` and
  ``format_table(include_wall=False)`` emit only these, so attribution
  tables are byte-identical across repeats.
* **wall time** — per-callsite totals and fixed-bucket latency
  histograms (:meth:`~repro.obs.registry.Histogram.percentile` gives
  p50/p95/p99) — is telemetry about this host and is dropped from
  deterministic exports, following the registry's ``wall=True``
  convention.

Profiling is opt-in via ``ObsContext.make(profile=True)`` (or
``ddoshield profile``); with it off the kernel's dispatch sites cost
one ``is None`` check per event, and :mod:`repro.obs.bench` pins that
overhead ratio.  Like all telemetry, the profiler never schedules
events or consumes RNG — a profiled run is bit-identical in simulation
outcomes to an unprofiled one.

The wall-clock reads here are the profiler's measurement itself, marked
with explicit lint suppressions; they never feed back into simulation
state.
"""

from __future__ import annotations

import time as _time
from typing import Any, Iterable

from repro.obs.registry import Histogram

#: Per-event wall-time histogram bounds in seconds (1 µs … 100 ms).
#: Python-level handlers land in the 1–100 µs decades; the coarse tail
#: catches pathological events (a whole-capture flush, a model fit).
LATENCY_BUCKETS: tuple[float, ...] = (
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 5e-3, 1e-2, 1e-1,
)

#: Exact module → owner-subsystem mapping (checked before prefixes).
_OWNER_EXACT: dict[str, str] = {
    "repro.sim.queue": "queue",
    "repro.sim.channel": "channel",
    "repro.sim.topology": "channel",
    "repro.sim.node": "node",
    "repro.sim.tcp": "tcp",
    "repro.sim.udp": "udp",
    "repro.sim.tracing": "probe",
    "repro.sim.core": "kernel",
    "repro.ids.defense": "filter",
}

#: Package-prefix fallbacks, most specific first.
_OWNER_PREFIXES: tuple[tuple[str, str], ...] = (
    ("repro.botnet", "bot"),
    ("repro.apps", "app"),
    ("repro.ids", "ids"),
    ("repro.features", "ids"),
    ("repro.faults", "faults"),
    ("repro.containers", "container"),
    ("repro.testbed", "testbed"),
    ("repro.sim", "sim"),
)


def classify_owner(module: str) -> str:
    """Owner subsystem for a handler defined in ``module``."""
    owner = _OWNER_EXACT.get(module)
    if owner is not None:
        return owner
    for prefix, owner in _OWNER_PREFIXES:
        if module == prefix or module.startswith(prefix + "."):
            return owner
    return "other"


def callsite_label(callback: Any) -> str:
    """Stable short label for a callback: ``module.Class.method``."""
    func = getattr(callback, "__func__", callback)
    qualname = getattr(func, "__qualname__", "") or type(callback).__name__
    module = getattr(func, "__module__", "") or ""
    if module:
        return f"{module.rsplit('.', 1)[-1]}.{qualname}"
    return qualname


class _CallsiteStat:
    """Accumulated cost and cargo counts for one handler function."""

    __slots__ = (
        "label", "owner", "events", "wall_seconds",
        "trains", "train_packets", "scalar_packets", "hist",
    )

    def __init__(self, label: str, owner: str) -> None:
        self.label = label
        self.owner = owner
        self.events = 0
        self.wall_seconds = 0.0
        self.trains = 0
        self.train_packets = 0
        self.scalar_packets = 0
        self.hist = Histogram(buckets=LATENCY_BUCKETS)


class KernelProfiler:
    """Times kernel dispatches and attributes them per owner subsystem.

    Stats are keyed by the underlying function object, so every bound
    method of the same class/method pair accumulates into one callsite
    row regardless of which instance it was bound to.
    :class:`~repro.sim.core.PeriodicEvent` ticks are attributed to the
    user callback the schedule drives, not to the kernel's ``_fire``
    trampoline.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._stats: dict[Any, _CallsiteStat] = {}
        self.buckets_drained = 0
        self.bucket_events = 0
        # Lazily imported to keep repro.obs importable before repro.sim
        # (sim modules import repro.obs at module level).
        self._packet_cls: type | None = None
        self._batch_cls: type | None = None
        self._periodic_cls: type | None = None

    # ------------------------------------------------------------------
    # Hot path (called from Simulator.run's dispatch sites)

    def _bind_classes(self) -> None:
        from repro.sim.core import PeriodicEvent
        from repro.sim.packet import Packet, PacketBatch

        self._packet_cls = Packet
        self._batch_cls = PacketBatch
        self._periodic_cls = PeriodicEvent

    def dispatch(self, event: Any) -> None:
        """Run ``event``'s callback and attribute its wall time.

        Exceptions propagate unchanged (the kernel's mid-bucket re-push
        semantics rely on that); the partial cost up to the raise is
        still recorded.
        """
        started = _time.perf_counter()  # repro: lint-ok[TIME001] -- profiler measurement, isolated from simulation state
        try:
            event.callback(*event.args)
        finally:
            elapsed = _time.perf_counter() - started  # repro: lint-ok[TIME001] -- profiler measurement, isolated from simulation state
            self._record(event.callback, event.args, elapsed)

    def _record(self, callback: Any, args: tuple, elapsed: float) -> None:
        if self._packet_cls is None:
            self._bind_classes()
        bound_self = getattr(callback, "__self__", None)
        if type(bound_self) is self._periodic_cls:
            # A periodic tick: charge the driven callback, and count the
            # cargo it was invoked with, not the trampoline's empty args.
            callback = bound_self.callback
            args = bound_self.args
        func = getattr(callback, "__func__", callback)
        stat = self._stats.get(func)
        if stat is None:
            module = getattr(func, "__module__", "") or ""
            stat = _CallsiteStat(callsite_label(callback), classify_owner(module))
            self._stats[func] = stat
        stat.events += 1
        stat.wall_seconds += elapsed
        stat.hist.observe(elapsed)
        for arg in args:
            if isinstance(arg, self._batch_cls):
                stat.trains += 1
                stat.train_packets += len(arg)
            elif isinstance(arg, self._packet_cls):
                stat.scalar_packets += 1

    def note_bucket(self, n_events: int) -> None:
        """One equal-(time, priority) bucket of ``n_events`` was drained."""
        self.buckets_drained += 1
        self.bucket_events += n_events

    # ------------------------------------------------------------------
    # Aggregation

    def _ordered_stats(self) -> list[_CallsiteStat]:
        return sorted(self._stats.values(), key=lambda s: (s.owner, s.label))

    def batch_stats(self) -> dict:
        """Batch-efficiency gauges (deterministic for a seed)."""
        stats = self._stats.values()
        trains = sum(s.trains for s in stats)
        train_packets = sum(s.train_packets for s in stats)
        scalar_packets = sum(s.scalar_packets for s in stats)
        return {
            "trains": trains,
            "train_packets": train_packets,
            "mean_train_packets": train_packets / trains if trains else 0.0,
            "scalar_packets": scalar_packets,
            "buckets_drained": self.buckets_drained,
            "bucket_events": self.bucket_events,
            "mean_bucket_events": (
                self.bucket_events / self.buckets_drained
                if self.buckets_drained else 0.0
            ),
        }

    def attribution(self) -> dict:
        """How much measured wall time lands in a *named* subsystem.

        ``named_fraction`` is the acceptance gate: a profiler that dumps
        most of the run into ``other`` is not attributing anything.
        """
        total = sum(s.wall_seconds for s in self._stats.values())
        named = sum(
            s.wall_seconds for s in self._stats.values() if s.owner != "other"
        )
        return {
            "total_wall_seconds": total,
            "named_wall_seconds": named,
            "named_fraction": named / total if total else 1.0,
        }

    def owner_summary(self, include_wall: bool = True) -> dict[str, dict]:
        """Per-owner rollup (merged callsite histograms for percentiles)."""
        owners: dict[str, dict] = {}
        hists: dict[str, Histogram] = {}
        for stat in self._ordered_stats():
            row = owners.setdefault(
                stat.owner,
                {
                    "events": 0, "trains": 0,
                    "train_packets": 0, "scalar_packets": 0,
                },
            )
            row["events"] += stat.events
            row["trains"] += stat.trains
            row["train_packets"] += stat.train_packets
            row["scalar_packets"] += stat.scalar_packets
            if include_wall:
                row["wall_seconds"] = row.get("wall_seconds", 0.0) + stat.wall_seconds
                merged = hists.get(stat.owner)
                if merged is None:
                    merged = hists[stat.owner] = Histogram(buckets=LATENCY_BUCKETS)
                merged.count += stat.hist.count
                merged.total += stat.hist.total
                for i, n in enumerate(stat.hist.bucket_counts):
                    merged.bucket_counts[i] += n
        if include_wall:
            for owner, row in owners.items():
                hist = hists[owner]
                row["p50_us"] = 1e6 * hist.percentile(0.50)
                row["p95_us"] = 1e6 * hist.percentile(0.95)
                row["p99_us"] = 1e6 * hist.percentile(0.99)
        return owners

    def snapshot(self, include_wall: bool = True) -> dict:
        """JSON-able dump; deterministic with ``include_wall=False``."""
        callsites = []
        for stat in self._ordered_stats():
            row: dict = {
                "callsite": stat.label,
                "owner": stat.owner,
                "events": stat.events,
                "trains": stat.trains,
                "train_packets": stat.train_packets,
                "scalar_packets": stat.scalar_packets,
            }
            if include_wall:
                row["wall_seconds"] = stat.wall_seconds
                row["p50_us"] = 1e6 * stat.hist.percentile(0.50)
                row["p95_us"] = 1e6 * stat.hist.percentile(0.95)
                row["p99_us"] = 1e6 * stat.hist.percentile(0.99)
            callsites.append(row)
        payload: dict = {
            "callsites": callsites,
            "owners": self.owner_summary(include_wall=include_wall),
            "batch": self.batch_stats(),
        }
        if include_wall:
            payload["attribution"] = self.attribution()
        return payload

    # ------------------------------------------------------------------
    # Rendering

    def format_table(self, top: int = 15, include_wall: bool = True) -> str:
        """The ``ddoshield profile`` top-N callsite table.

        Ordered by wall time (or by event count in the deterministic
        ``include_wall=False`` mode, where the rendering is byte-stable
        across repeats of the same seed).
        """
        stats = self._ordered_stats()
        if not stats:
            return "(no events profiled)"
        if include_wall:
            stats.sort(key=lambda s: (-s.wall_seconds, s.owner, s.label))
        else:
            stats.sort(key=lambda s: (-s.events, s.owner, s.label))
        total_wall = sum(s.wall_seconds for s in self._stats.values())
        header = f"{'owner':<10} {'callsite':<44} {'events':>9}"
        if include_wall:
            header += f" {'wall ms':>9} {'wall %':>7} {'p50µs':>7} {'p95µs':>7} {'p99µs':>7}"
        header += f" {'trains':>7} {'pkts/train':>10}"
        lines = [header, "-" * len(header)]
        for stat in stats[:top]:
            mean_train = stat.train_packets / stat.trains if stat.trains else 0.0
            line = f"{stat.owner:<10} {stat.label:<44.44} {stat.events:>9}"
            if include_wall:
                share = 100.0 * stat.wall_seconds / total_wall if total_wall else 0.0
                line += (
                    f" {1000.0 * stat.wall_seconds:>9.2f} {share:>6.1f}%"
                    f" {1e6 * stat.hist.percentile(0.50):>7.0f}"
                    f" {1e6 * stat.hist.percentile(0.95):>7.0f}"
                    f" {1e6 * stat.hist.percentile(0.99):>7.0f}"
                )
            line += f" {stat.trains:>7} {mean_train:>10.1f}"
            lines.append(line)
        if len(stats) > top:
            lines.append(f"... {len(stats) - top} more callsite(s)")
        batch = self.batch_stats()
        lines.append(
            f"batch: {batch['trains']} train(s), "
            f"{batch['mean_train_packets']:.1f} pkt/train mean, "
            f"{batch['scalar_packets']} scalar-fallback packet(s), "
            f"{batch['buckets_drained']} bucket(s) drained "
            f"({batch['mean_bucket_events']:.1f} events/bucket)"
        )
        if include_wall:
            attr = self.attribution()
            lines.append(
                f"attribution: {1000.0 * attr['total_wall_seconds']:.2f} ms handler wall, "
                f"{100.0 * attr['named_fraction']:.1f}% in named subsystems"
            )
        return "\n".join(lines)

    def collapsed_stacks(self, include_wall: bool = True) -> str:
        """Collapsed-stack export (``flamegraph.pl`` / speedscope input).

        One ``owner;callsite weight`` line per callsite; weights are
        wall microseconds, or event counts with ``include_wall=False``
        (deterministic flamegraphs for a seed).
        """
        lines = []
        for stat in self._ordered_stats():
            if include_wall:
                weight = int(round(1e6 * stat.wall_seconds))
            else:
                weight = stat.events
            if weight <= 0:
                continue
            lines.append(f"{stat.owner};{stat.label} {weight}")
        return "\n".join(lines) + ("\n" if lines else "")


def merge_profiles(profiles: Iterable[KernelProfiler]) -> KernelProfiler:
    """Fold several profilers (e.g. per-phase) into one summary view."""
    merged = KernelProfiler()
    for profiler in profiles:
        merged.buckets_drained += profiler.buckets_drained
        merged.bucket_events += profiler.bucket_events
        for func, stat in profiler._stats.items():
            into = merged._stats.get(func)
            if into is None:
                into = merged._stats[func] = _CallsiteStat(stat.label, stat.owner)
            into.events += stat.events
            into.wall_seconds += stat.wall_seconds
            into.trains += stat.trains
            into.train_packets += stat.train_packets
            into.scalar_packets += stat.scalar_packets
            into.hist.count += stat.hist.count
            into.hist.total += stat.hist.total
            for i, n in enumerate(stat.hist.bucket_counts):
                into.hist.bucket_counts[i] += n
    return merged
