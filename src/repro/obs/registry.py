"""Sim-scoped metrics: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` hands out instrument objects keyed by
``(name, labels)``.  Instruments are plain attribute-bumping objects —
no locks, no string formatting on the hot path — so components grab a
handle once and call ``inc()``/``set()``/``observe()`` per event.

The registry has an explicit **no-op fast path**: a disabled registry
returns the shared :data:`NULL_INSTRUMENT`, whose methods do nothing, so
instrumented code costs a single no-op method call when telemetry is
off.  ``tests/test_obs.py`` pins this with a bounded-ratio overhead test
and :mod:`repro.obs.bench` measures it.

Metrics that read wall clocks (CPU seconds, tracemalloc peaks) are
registered with ``wall=True`` and excluded from deterministic snapshots
(``snapshot(include_wall=False)``), which is what ``ddoshield lint``'s
byte-identical-exports guarantee relies on.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Iterable


class Counter:
    """A monotonically increasing value (floats allowed)."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


#: Default histogram buckets: sub-millisecond to minutes (upper bounds).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)


class Histogram:
    """Fixed-bucket histogram: per-bucket counts plus sum and count.

    ``buckets`` are upper bounds; one overflow bucket (``+Inf``) is
    appended automatically.  Buckets are fixed at creation so observing
    is a single bisect — no dynamic resizing on the hot path.
    """

    __slots__ = ("buckets", "bucket_counts", "count", "total")
    kind = "histogram"

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.bucket_counts[bisect_left(self.buckets, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Upper-bound estimate of the ``q`` quantile (``0.0 <= q <= 1.0``).

        Returns the smallest bucket bound whose cumulative count covers
        ``q`` of the observations — a conservative (never-underestimating)
        quantile, exact to bucket resolution.  Observations past the last
        bound report ``inf``; an empty histogram reports ``0.0``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"percentile rank must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(q * self.count))
        cumulative = 0
        for bound, count in zip(self.buckets, self.bucket_counts):
            cumulative += count
            if cumulative >= target:
                return bound
        return math.inf

    def bucket_dict(self) -> dict[str, int]:
        labels = [repr(b) for b in self.buckets] + ["+Inf"]
        return dict(zip(labels, self.bucket_counts))


class NullInstrument:
    """Shared do-nothing instrument returned by disabled registries.

    Implements the union of the Counter/Gauge/Histogram interfaces so a
    handle grabbed from a disabled registry can be called unconditionally.
    """

    __slots__ = ()
    kind = "null"
    value = 0.0
    count = 0
    total = 0.0
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_INSTRUMENT = NullInstrument()

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


def _render_key(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{rendered}}}"


class MetricsRegistry:
    """Instrument factory and snapshot point for one telemetry scope."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: dict[tuple[str, tuple[tuple[str, str], ...]], object] = {}
        self._wall_keys: set[tuple[str, tuple[tuple[str, str], ...]]] = set()

    def __len__(self) -> int:
        return len(self._instruments)

    def _get(self, kind: str, name: str, wall: bool, labels: dict[str, object], **kwargs):
        if not self.enabled:
            return NULL_INSTRUMENT
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = _KINDS[kind](**kwargs)
            self._instruments[key] = instrument
            if wall:
                self._wall_keys.add(key)
        elif instrument.kind != kind:
            raise ValueError(
                f"metric {_render_key(*key)!r} already registered as "
                f"{instrument.kind}, requested {kind}"
            )
        return instrument

    def counter(self, name: str, wall: bool = False, **labels) -> Counter:
        """The counter registered under ``(name, labels)`` (created once)."""
        return self._get("counter", name, wall, labels)

    def gauge(self, name: str, wall: bool = False, **labels) -> Gauge:
        """The gauge registered under ``(name, labels)``."""
        return self._get("gauge", name, wall, labels)

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        wall: bool = False,
        **labels,
    ) -> Histogram:
        """The fixed-bucket histogram registered under ``(name, labels)``."""
        return self._get("histogram", name, wall, labels, buckets=buckets)

    def value(self, name: str, **labels) -> float:
        """Convenience read of a counter/gauge value (0.0 when absent)."""
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        instrument = self._instruments.get(key)
        return getattr(instrument, "value", 0.0) if instrument is not None else 0.0

    def snapshot(self, include_wall: bool = True) -> dict:
        """Deterministic (sorted) JSON-able dump of every instrument.

        ``include_wall=False`` drops instruments registered with
        ``wall=True`` — the wall-clock-derived metrics that differ
        between otherwise identical runs.
        """
        out: dict[str, dict] = {}
        for key in sorted(self._instruments):
            if not include_wall and key in self._wall_keys:
                continue
            instrument = self._instruments[key]
            rendered = _render_key(*key)
            if instrument.kind == "histogram":
                out[rendered] = {
                    "type": "histogram",
                    "count": instrument.count,
                    "total": instrument.total,
                    "mean": instrument.mean,
                    "buckets": instrument.bucket_dict(),
                }
            else:
                out[rendered] = {"type": instrument.kind, "value": instrument.value}
        return out

    def format_text(self, include_wall: bool = True) -> str:
        """The ``ddoshield metrics`` console rendering."""
        lines = []
        for rendered, payload in self.snapshot(include_wall=include_wall).items():
            if payload["type"] == "histogram":
                lines.append(
                    f"{rendered}: n={payload['count']} mean={payload['mean']:.6g} "
                    f"total={payload['total']:.6g}"
                )
            else:
                lines.append(f"{rendered}: {payload['value']:.6g}")
        return "\n".join(lines) if lines else "(no metrics recorded)"
