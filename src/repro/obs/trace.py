"""Sim-time span tracing with Chrome ``trace_event`` export.

A span records the *simulated* begin/end time of an operation (a TCP
handshake, a capture phase, a pipeline stage) plus a monotonic wall-time
cost estimate of what it cost the host to execute.  Sim times are
deterministic for a seed; the wall estimate is telemetry about this
machine and is isolated in a single ``wall_ms`` field that deterministic
exports exclude.

Spans export as Chrome ``trace_event`` complete events (``"ph": "X"``)
— a plain JSON array loadable in ``chrome://tracing`` and Perfetto —
with ``ts``/``dur`` in microseconds of simulated time.

The wall-clock reads live only in this module, marked with explicit
lint suppressions: they are the telemetry layer's cost estimator, not
simulation state, and never feed back into the simulation.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Callable, Iterable


@dataclass(frozen=True, slots=True)
class Span:
    """One closed span: sim begin/end, wall cost, and free-form attrs."""

    name: str
    begin: float  # sim seconds
    end: float  # sim seconds
    wall_seconds: float
    attrs: tuple[tuple[str, object], ...] = ()

    @property
    def sim_duration(self) -> float:
        return self.end - self.begin

    def to_dict(self, include_wall: bool = True) -> dict:
        payload: dict = {
            "name": self.name,
            "begin": self.begin,
            "end": self.end,
            "args": dict(self.attrs),
        }
        if include_wall:
            payload["wall_ms"] = 1000.0 * self.wall_seconds
        return payload


class SpanHandle:
    """An open span: context manager or explicit ``start()``/``finish()``.

    Use as a context manager for synchronous work, or keep the handle
    and call :meth:`finish` later for operations that complete in a
    future event (e.g. a TCP handshake ending on SYN-ACK receipt).
    """

    __slots__ = ("_tracer", "name", "_attrs", "begin", "end", "wall_seconds", "_wall_begin", "_open")

    def __init__(self, tracer: "SpanTracer", name: str, attrs: dict[str, object]) -> None:
        self._tracer = tracer
        self.name = name
        self._attrs = attrs
        self.begin = 0.0
        self.end = 0.0
        self.wall_seconds = 0.0
        self._wall_begin = 0.0
        self._open = False

    def set(self, key: str, value: object) -> None:
        """Attach/overwrite an attribute while the span is open."""
        self._attrs[key] = value

    def start(self) -> "SpanHandle":
        self.begin = self._tracer._now()
        self._wall_begin = _time.perf_counter()  # repro: lint-ok[TIME001] -- telemetry wall-cost estimate, isolated from simulation state
        self._open = True
        flight = self._tracer.flight
        if flight is not None:
            flight.note(self.begin, "span.open", self.name)
        return self

    def finish(self) -> None:
        """Close the span and record it (idempotent)."""
        if not self._open:
            return
        self._open = False
        self.wall_seconds = _time.perf_counter() - self._wall_begin  # repro: lint-ok[TIME001] -- telemetry wall-cost estimate, isolated from simulation state
        self.end = self._tracer._now()
        flight = self._tracer.flight
        if flight is not None:
            flight.note(self.end, "span.close", self.name)
        self._tracer.spans.append(
            Span(
                name=self.name,
                begin=self.begin,
                end=self.end,
                wall_seconds=self.wall_seconds,
                attrs=tuple(sorted(self._attrs.items(), key=lambda kv: kv[0])),
            )
        )

    def __enter__(self) -> "SpanHandle":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        if exc and exc[0] is not None:
            self._attrs.setdefault("error", getattr(exc[0], "__name__", str(exc[0])))
        self.finish()


class _NullSpan:
    """Shared no-op span returned by disabled tracers."""

    __slots__ = ()
    name = ""
    begin = 0.0
    end = 0.0
    wall_seconds = 0.0

    def set(self, key: str, value: object) -> None:
        pass

    def start(self) -> "_NullSpan":
        return self

    def finish(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


NULL_SPAN = _NullSpan()


class SpanTracer:
    """Produces spans against a pluggable simulated clock.

    The clock is late-bound: a :class:`~repro.sim.core.Simulator`
    created inside an enabled telemetry scope binds its virtual clock
    automatically, so spans opened before any simulator exists read
    sim-time 0.0.
    """

    def __init__(self, clock: Callable[[], float] | None = None, enabled: bool = True) -> None:
        self.enabled = enabled
        self.spans: list[Span] = []
        self._clock = clock
        # Optional FlightRecorder fed with span.open/span.close edges
        # (wired by ObsContext.make; plain attribute to avoid imports).
        self.flight = None

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point the tracer at a (new) source of simulated time."""
        self._clock = clock

    def _now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    def span(self, name: str, **attrs) -> SpanHandle | _NullSpan:
        """An *unstarted* span handle (start via ``with`` or ``start()``)."""
        if not self.enabled:
            return NULL_SPAN
        return SpanHandle(self, name, attrs)

    def to_dicts(self, include_wall: bool = True) -> list[dict]:
        return [span.to_dict(include_wall=include_wall) for span in self.spans]


def chrome_trace(spans: Iterable[Span | dict], include_wall: bool = True) -> list[dict]:
    """Convert spans (objects or snapshot dicts) to Chrome trace events.

    The result is a JSON array of complete events with the fields
    ``chrome://tracing``/Perfetto require: ``ph``, ``ts``, ``dur``,
    ``pid``, ``tid``, ``name``, ``cat``, ``args``.  ``ts``/``dur`` are
    microseconds of *simulated* time; the per-span wall cost rides in
    ``args.wall_ms`` unless ``include_wall=False``.
    """
    out: list[dict] = []
    for span in spans:
        if isinstance(span, Span):
            span = span.to_dict(include_wall=True)
        args = dict(span.get("args", {}))
        if include_wall and "wall_ms" in span:
            args["wall_ms"] = round(span["wall_ms"], 6)
        out.append(
            {
                "ph": "X",
                "ts": round(span["begin"] * 1e6, 3),
                "dur": round((span["end"] - span["begin"]) * 1e6, 3),
                "pid": 1,
                "tid": 1,
                "name": span["name"],
                "cat": span["name"].split(".", 1)[0],
                "args": args,
            }
        )
    return out
