"""Declarative fault plans: what breaks, when, and how badly.

A :class:`FaultPlan` is the fault-side analogue of the attack schedule: a
list of :class:`FaultSpec` entries, each describing one impairment with a
start time, a duration, targets, and model parameters.  Plans are pure
data — the :class:`~repro.faults.injector.FaultInjector` and the
container supervisor interpret them against a running testbed — so the
same plan replays identically under the same seed.

Times are relative to the start of the capture phase the plan is applied
to, exactly like :class:`~repro.testbed.scenario.AttackPhase.start`.

Fault kinds
-----------

``loss``
    Bernoulli packet loss: every frame sent by a target is dropped
    independently with probability ``rate``.
``burst-loss``
    Gilbert–Elliott two-state burst loss: a good state losing frames
    with probability ``loss_good`` and a bad state losing them with
    ``loss_bad``, with per-frame transition probabilities ``p_bad``
    (good→bad) and ``p_good`` (bad→good).  Models the correlated loss of
    interference/overload that Bernoulli loss cannot.
``corrupt``
    Bit corruption at probability ``rate``; the corrupted frame occupies
    the wire but fails the receiver's checksum verify and is discarded.
``jitter``
    Added delivery delay, uniform in ``[0, jitter]`` seconds per frame.
``partition``
    Timed link partition: target devices are severed from the medium at
    ``start`` and rejoin at ``start + duration``.  In-flight transmit
    queues are flushed (counted in ``DropTailQueue.flushed``).
``kill``
    Container crash at ``start``: processes die and the tap is unplugged.
    ``restart`` names the supervision policy the orchestrator applies
    (``no`` | ``on-failure`` | ``always``); ``duration`` bounds the
    expected blind window used for degraded-accuracy scoring (it does
    not delay the restart — backoff does).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

FAULT_KINDS = ("loss", "burst-loss", "corrupt", "jitter", "partition", "kill")
RESTART_MODES = ("no", "on-failure", "always")

#: Wildcard target: every device on the LAN.
ALL_TARGETS = "*"


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled impairment."""

    kind: str
    start: float
    duration: float = 0.0
    targets: tuple[str, ...] = (ALL_TARGETS,)
    # Bernoulli loss / corruption probability per frame.
    rate: float = 0.0
    # Jitter: max extra delivery delay in seconds (uniform [0, jitter]).
    jitter: float = 0.0
    # Gilbert-Elliott parameters.
    p_bad: float = 0.05
    p_good: float = 0.3
    loss_good: float = 0.0
    loss_bad: float = 1.0
    # Restart policy applied to killed containers.
    restart: str = "no"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")
        if self.start < 0:
            raise ValueError(f"fault start must be >= 0, got {self.start}")
        if self.kind != "kill" and self.duration <= 0:
            raise ValueError(f"{self.kind} fault needs a positive duration, got {self.duration}")
        if not self.targets:
            raise ValueError("fault targets must not be empty")
        if self.kind in ("loss", "corrupt") and not 0.0 < self.rate <= 1.0:
            raise ValueError(f"{self.kind} fault needs rate in (0, 1], got {self.rate}")
        if self.kind == "jitter" and self.jitter <= 0:
            raise ValueError(f"jitter fault needs a positive jitter, got {self.jitter}")
        if self.kind == "burst-loss":
            for name in ("p_bad", "p_good", "loss_good", "loss_bad"):
                value = getattr(self, name)
                if not 0.0 <= value <= 1.0:
                    raise ValueError(f"burst-loss {name} must be in [0, 1], got {value}")
        if self.kind == "kill":
            if self.restart not in RESTART_MODES:
                raise ValueError(
                    f"kill restart must be one of {RESTART_MODES}, got {self.restart!r}"
                )
            if ALL_TARGETS in self.targets:
                raise ValueError("kill faults need explicit container targets")

    @property
    def stop(self) -> float:
        """Absolute (plan-relative) end time of the impairment."""
        return self.start + self.duration

    def matches(self, name: str) -> bool:
        """Whether this spec targets the device/container ``name``.

        Ghost nodes are named ``ghost-<container>``; both forms match.
        """
        if ALL_TARGETS in self.targets:
            return True
        bare = name[6:] if name.startswith("ghost-") else name
        return name in self.targets or bare in self.targets

    def to_dict(self) -> dict:
        """JSON-serializable form (used for cache keys and campaign grids)."""
        payload = asdict(self)
        payload["targets"] = list(self.targets)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSpec":
        """Rebuild a spec from :meth:`to_dict`; validation re-fires."""
        data = dict(payload)
        data["targets"] = tuple(data.get("targets", (ALL_TARGETS,)))
        return cls(**data)

    def describe(self) -> str:
        params = {
            "loss": f"rate={self.rate}",
            "corrupt": f"rate={self.rate}",
            "jitter": f"jitter={self.jitter}s",
            "burst-loss": f"p_bad={self.p_bad} p_good={self.p_good} loss_bad={self.loss_bad}",
            "partition": "",
            "kill": f"restart={self.restart}",
        }[self.kind]
        window = f"t={self.start:g}" + ("" if self.kind == "kill" else f"..{self.stop:g}")
        return f"{self.kind}[{','.join(self.targets)}] {window} {params}".rstrip()


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of fault specs plus the RNG seed driving them."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    @classmethod
    def of(cls, *specs: FaultSpec, seed: int = 0) -> "FaultPlan":
        return cls(specs=tuple(specs), seed=seed)

    def __post_init__(self) -> None:
        if not all(isinstance(spec, FaultSpec) for spec in self.specs):
            raise TypeError("FaultPlan.specs must contain FaultSpec entries")

    def to_dict(self) -> dict:
        """JSON-serializable form: ``{"seed": ..., "specs": [...]}``."""
        return {"seed": self.seed, "specs": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict`; spec validation re-fires."""
        return cls(
            specs=tuple(FaultSpec.from_dict(s) for s in payload.get("specs", ())),
            seed=int(payload.get("seed", 0)),
        )

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    @property
    def until(self) -> float:
        """When the last impairment ends (0.0 for an empty plan)."""
        return max((spec.stop for spec in self.specs), default=0.0)

    def wire_specs(self) -> list[FaultSpec]:
        """Specs the channel-level injector interprets."""
        return [s for s in self.specs if s.kind != "kill"]

    def kill_specs(self) -> list[FaultSpec]:
        """Specs the container supervisor interprets."""
        return [s for s in self.specs if s.kind == "kill"]

    def degraded_intervals(self) -> list[tuple[float, float]]:
        """(start, stop) windows in which IDS visibility is impaired.

        Partitions and kills blind the IDS tap to the affected traffic;
        heavy loss regimes distort it.  These intervals feed
        :meth:`repro.ids.engine.RealTimeIds.mark_degraded` so affected
        windows are scored separately from healthy ones.
        """
        intervals: list[tuple[float, float]] = []
        for spec in self.specs:
            if spec.kind == "partition":
                intervals.append((spec.start, spec.stop))
            elif spec.kind == "kill":
                # Until the supervisor restarts the container the traffic
                # it should emit is missing; bound the blind window by the
                # first restart backoff (callers may extend it).
                intervals.append((spec.start, spec.stop if spec.duration > 0 else spec.start + 1.0))
        return _merge_intervals(intervals)


def _merge_intervals(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Merge overlapping (start, stop) pairs into a sorted disjoint list."""
    merged: list[tuple[float, float]] = []
    for start, stop in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], stop))
        else:
            merged.append((start, stop))
    return merged
