"""Channel-level fault injection: scheduled wire impairments.

The :class:`FaultInjector` installs itself as the
:class:`~repro.sim.channel.ChannelImpairment` hook of a
:class:`~repro.sim.channel.CsmaChannel` and interprets the wire-level
entries of a :class:`~repro.faults.plan.FaultPlan`: Bernoulli loss,
Gilbert–Elliott burst loss, bit corruption (discarded on the receiver's
checksum verify), delay jitter, and timed link partitions.  All
randomness is drawn from one seeded RNG, so a plan replays identically
for the same seed — faults are experimental conditions, not noise.

Every activation, deactivation, partition edge, and per-kind drop tally
is recorded in :attr:`FaultInjector.log`, which the testbed merges into
the run's trace.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro import obs
from repro.faults.plan import ALL_TARGETS, FaultPlan, FaultSpec
from repro.sim.channel import ChannelImpairment, CsmaChannel, CsmaNetDevice
from repro.sim.core import Simulator
from repro.sim.packet import Packet


@dataclass(frozen=True)
class FaultEvent:
    """One entry in the fault trace: what changed, when, to whom."""

    time: float
    action: str  # "activate" | "deactivate" | "partition" | "heal" | ...
    kind: str
    targets: tuple[str, ...]
    detail: str = ""

    def __str__(self) -> str:
        suffix = f" ({self.detail})" if self.detail else ""
        return f"t={self.time:.3f} {self.action} {self.kind}[{','.join(self.targets)}]{suffix}"


class GilbertElliott:
    """Two-state Markov loss model (good/bad) for correlated burst loss."""

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self.bad = False
        self.transitions = 0

    def drops(self, rng: random.Random) -> bool:
        """Advance one frame through the chain; True if the frame is lost."""
        flip = rng.random()
        if self.bad:
            if flip < self.spec.p_good:
                self.bad = False
                self.transitions += 1
        else:
            if flip < self.spec.p_bad:
                self.bad = True
                self.transitions += 1
        loss = self.spec.loss_bad if self.bad else self.spec.loss_good
        if loss <= 0.0:
            return False
        if loss >= 1.0:
            return True
        return rng.random() < loss


@dataclass
class _ActiveWireFault:
    """A wire spec currently in force, plus its per-spec model state."""

    spec: FaultSpec
    model: GilbertElliott | None = None
    frames_hit: int = 0


class FaultInjector(ChannelImpairment):
    """Applies a fault plan's wire impairments to one CSMA channel."""

    def __init__(self, sim: Simulator, channel: CsmaChannel, seed: int = 0) -> None:
        self.sim = sim
        self.channel = channel
        self.rng = random.Random(seed)
        self._active: list[_ActiveWireFault] = []
        self._partitions: dict[int, list[CsmaNetDevice]] = {}
        self._resolve = None  # name -> CsmaNetDevice, set by schedule_plan
        self.log: list[FaultEvent] = []
        self.frames_lost = 0
        self.frames_corrupted = 0
        self.frames_delayed = 0
        self.extra_delay_total = 0.0
        #: Callbacks invoked with every FaultEvent (mitigation fallback).
        self.listeners: list = []
        self._obs_events = obs.current().events
        channel.set_fault_injector(self)

    # ------------------------------------------------------------------
    # Plan scheduling

    def schedule_plan(
        self,
        plan: FaultPlan,
        resolve_device=None,
        base: float | None = None,
    ) -> None:
        """Schedule every wire-level spec of ``plan`` on the simulator.

        ``resolve_device(name)`` maps a target name to the
        :class:`CsmaNetDevice` it partitions (required for named
        partition targets).  Times are relative to ``base`` (default:
        now), matching attack-phase semantics.
        """
        if resolve_device is not None:
            self._resolve = resolve_device
        start_at = self.sim.now if base is None else base
        for spec in plan.wire_specs():
            offset = start_at - self.sim.now
            if spec.kind == "partition":
                self.sim.schedule(offset + spec.start, self._start_partition, spec)
                self.sim.schedule(offset + spec.stop, self._end_partition, spec)
            else:
                self.sim.schedule(offset + spec.start, self._activate, spec)
                self.sim.schedule(offset + spec.stop, self._deactivate, spec)

    def _activate(self, spec: FaultSpec) -> None:
        model = GilbertElliott(spec) if spec.kind == "burst-loss" else None
        self._active.append(_ActiveWireFault(spec, model))
        self._log("activate", spec)

    def _deactivate(self, spec: FaultSpec) -> None:
        for active in list(self._active):
            if active.spec is spec:
                self._active.remove(active)
                self._log("deactivate", spec, detail=f"frames_hit={active.frames_hit}")

    def _start_partition(self, spec: FaultSpec) -> None:
        devices = self._partition_targets(spec)
        severed: list[CsmaNetDevice] = []
        for device in devices:
            if device.attached:
                # Sever on the device's own channel: a named target may
                # live on a leaf segment of a hierarchical topology, not
                # on the injector's (backbone) channel.
                device.channel.detach(device)  # flushes the TX queue (counted)
                severed.append(device)
        self._partitions[id(spec)] = severed
        self._log("partition", spec, detail=f"severed={len(severed)}")

    def _end_partition(self, spec: FaultSpec) -> None:
        for device in self._partitions.pop(id(spec), []):
            if not device.attached:
                device.channel.attach(device)
        self._log("heal", spec)

    def _partition_targets(self, spec: FaultSpec) -> list[CsmaNetDevice]:
        if ALL_TARGETS in spec.targets:
            return list(self.channel._devices)
        if self._resolve is None:
            raise RuntimeError(
                "named partition targets need a resolve_device mapping "
                "(pass one to schedule_plan)"
            )
        return [self._resolve(name) for name in spec.targets]

    # ------------------------------------------------------------------
    # Per-frame impairment (ChannelImpairment interface)

    def impair(
        self, frame: Packet, sender: CsmaNetDevice, now: float
    ) -> tuple[bool, float]:
        extra_delay = 0.0
        sender_name = sender.node.name if sender.node is not None else ""
        for active in self._active:
            spec = active.spec
            if not spec.matches(sender_name):
                continue
            if spec.kind == "loss":
                if self.rng.random() < spec.rate:
                    active.frames_hit += 1
                    self.frames_lost += 1
                    return True, 0.0
            elif spec.kind == "burst-loss":
                assert active.model is not None
                if active.model.drops(self.rng):
                    active.frames_hit += 1
                    self.frames_lost += 1
                    return True, 0.0
            elif spec.kind == "corrupt":
                if self.rng.random() < spec.rate:
                    # The frame occupies the wire but arrives with flipped
                    # bits; the receiving NIC's checksum verify discards it.
                    active.frames_hit += 1
                    self.frames_corrupted += 1
                    return True, 0.0
            elif spec.kind == "jitter":
                delay = self.rng.uniform(0.0, spec.jitter)
                active.frames_hit += 1
                self.frames_delayed += 1
                self.extra_delay_total += delay
                extra_delay += delay
        return False, extra_delay

    # ------------------------------------------------------------------

    @property
    def active_faults(self) -> list[FaultSpec]:
        """Wire specs currently in force (partitions tracked separately)."""
        return [active.spec for active in self._active]

    @property
    def partitioned_devices(self) -> int:
        return sum(len(devices) for devices in self._partitions.values())

    def _log(self, action: str, spec: FaultSpec, detail: str = "") -> None:
        event = FaultEvent(self.sim.now, action, spec.kind, spec.targets, detail)
        self.log.append(event)
        self._obs_events.record(self.sim.now, f"fault.{action}", detail=spec.kind)
        for listener in list(self.listeners):
            listener(event)

    def detach(self) -> None:
        """Remove the injector from its channel (end of a fault phase)."""
        if self.channel.fault_injector is self:
            self.channel.set_fault_injector(None)
