"""Deterministic fault injection for the testbed.

Real IoT deployments lose packets in bursts, drop off the network, and
crash mid-flood; the paper's clean-run evaluation never exercises any of
that.  This subpackage makes faults first-class experimental conditions:
:mod:`repro.faults.plan` declares *what* breaks and when
(:class:`FaultPlan` / :class:`FaultSpec`), and
:mod:`repro.faults.injector` applies the wire-level impairments to a
CSMA channel (:class:`FaultInjector`).  Container crash faults from the
same plan are interpreted by the orchestrator's supervisor
(:mod:`repro.containers.orchestrator`), and the IDS scores windows that
overlap fault intervals separately
(:meth:`repro.ids.engine.RealTimeIds.mark_degraded`).

Everything is driven by per-plan seeded RNGs: the same plan plus the
same seed yields byte-identical traces.
"""

from repro.faults.injector import FaultEvent, FaultInjector, GilbertElliott
from repro.faults.plan import ALL_TARGETS, FAULT_KINDS, FaultPlan, FaultSpec

__all__ = [
    "ALL_TARGETS",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "GilbertElliott",
]
