"""Event-driven simulation kernel.

The :class:`Simulator` owns virtual time and a priority queue of pending
:class:`Event` objects.  Everything in the testbed — packet transmissions,
TCP retransmission timers, application think times, Mirai attack schedules
— is expressed as events scheduled on one shared simulator instance.

The kernel is instance-based rather than a process-wide singleton (unlike
NS-3's ``Simulator::Schedule``) so tests can run many independent
simulations in one interpreter without cross-talk.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

if TYPE_CHECKING:
    from repro.analysis.sanitizers import Sanitizer


class SimulationError(RuntimeError):
    """Raised on kernel misuse (negative delays, scheduling in the past)."""


@dataclass(eq=False)
class Event:
    """A callback scheduled at an absolute virtual time.

    Events order *exclusively* by :meth:`sort_key` — ``(time, priority,
    seq)`` — so the heap pops them in chronological order with FIFO
    ordering among simultaneous events of equal priority.  Lower
    ``priority`` runs first at the same timestamp.  ``seq`` is a
    per-simulator monotonic counter, making the key a strict total
    order: equal-time events never fall back to comparing callbacks or
    payload (which would either raise or, worse, order by ``id()`` and
    silently differ between runs).
    """

    time: float
    priority: int
    seq: int
    callback: Callable[..., Any]
    args: tuple = ()
    cancelled: bool = False
    _sim: "Simulator | None" = field(default=None, repr=False)
    _in_heap: bool = field(default=False, repr=False)
    # Cached (time, priority, seq); none of those fields ever mutate
    # after construction, and the heap compares events O(log n) times
    # per push/pop — rebuilding the tuple per comparison dominated the
    # kernel's profile before it was cached here.
    _key: tuple = field(default=(), repr=False)

    def __post_init__(self) -> None:
        self._key = (self.time, self.priority, self.seq)

    def sort_key(self) -> tuple[float, int, int]:
        """The deterministic total order the event heap uses."""
        return self._key

    def __lt__(self, other: "Event") -> bool:
        return self._key < other._key

    def __le__(self, other: "Event") -> bool:
        return self._key <= other._key

    def __gt__(self, other: "Event") -> bool:
        return self._key > other._key

    def __ge__(self, other: "Event") -> bool:
        return self._key >= other._key

    def cancel(self) -> None:
        """Prevent the event from running; the owning simulator reclaims
        heap space lazily once enough cancelled events accumulate."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._sim is not None and self._in_heap:
            self._sim._note_cancelled()


class PeriodicEvent:
    """Anchored periodic schedule: tick ``k`` fires at ``t0 + k*interval``.

    Rescheduling with ``schedule(interval, ...)`` from inside the callback
    accumulates float rounding (``now + interval`` drifts by one ulp every
    few thousand ticks), so two runs with different batch sizes disagree on
    tick counts near phase boundaries.  Anchoring each tick to the start
    time keeps 10k ticks on exact multiples and makes tick counts identical
    across batch sizes.
    """

    __slots__ = (
        "sim", "interval", "callback", "args", "priority", "t0",
        "ticks", "cancelled", "_event",
    )

    def __init__(
        self,
        sim: "Simulator",
        interval: float,
        callback: Callable[..., Any],
        args: tuple,
        priority: int,
        t0: float,
    ) -> None:
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self.args = args
        self.priority = priority
        self.t0 = t0
        self.ticks = 0
        self.cancelled = False
        self._event: Event | None = sim.schedule_abs(
            t0 + interval, self._fire, priority=priority
        )

    @property
    def next_time(self) -> float:
        """Absolute time of the next tick (anchored, not accumulated)."""
        return self.t0 + (self.ticks + 1) * self.interval

    def _fire(self) -> None:
        if self.cancelled:
            return
        self.ticks += 1
        self.callback(*self.args)
        if self.cancelled:
            return
        self._event = self.sim.schedule_abs(
            self.next_time, self._fire, priority=self.priority
        )

    def cancel(self) -> None:
        """Stop the periodic schedule (safe to call from the callback)."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._event is not None:
            self._event.cancel()


class Simulator:
    """Discrete-event scheduler with virtual time in seconds.

    Typical use::

        sim = Simulator()
        sim.schedule(1.5, do_something, arg1, arg2)
        sim.run(until=10.0)
    """

    #: Default event priority; transmissions and app logic use this.
    PRIORITY_NORMAL = 0
    #: Timers fire after normal events at the same instant.
    PRIORITY_TIMER = 1
    #: Compact the heap once cancelled events exceed this fraction of it
    #: (and the heap is large enough for the sweep to be worthwhile).
    COMPACT_FRACTION = 0.5
    COMPACT_MIN_SIZE = 64

    def __init__(
        self,
        sanitize: bool | str | None = None,
        shuffle_buckets: int | None = None,
    ) -> None:
        """``sanitize`` enables runtime invariant checks: ``True`` raises
        :class:`~repro.analysis.sanitizers.SanitizerError` on the first
        violation, ``"collect"`` records them on ``sanitizer.violations``,
        ``None`` (default) defers to the ``REPRO_SANITIZE`` env var.

        ``shuffle_buckets`` arms the bucket-shuffle race detector: a
        seed makes the kernel deterministically permute every
        equal-``(time, priority)`` event bucket before dispatch, so any
        hidden order dependence among "simultaneous" events (the hazard
        lint rule ORD002 flags statically) changes observable results.
        A correct simulation is bit-identical for every seed.  ``None``
        defers to the ``REPRO_SHUFFLE`` env var (unset/empty = off)."""
        from repro.analysis.sanitizers import make_sanitizer, shuffle_seed_from_env
        from repro import obs

        if shuffle_buckets is None:
            shuffle_buckets = shuffle_seed_from_env()
        self.shuffle_seed: int | None = shuffle_buckets
        self._shuffle_rng = (
            random.Random(shuffle_buckets) if shuffle_buckets is not None else None
        )
        self._now = 0.0
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self._events_executed = 0
        self._cancelled_in_heap = 0
        self._compactions = 0
        self.sanitizer: "Sanitizer | None" = make_sanitizer(sanitize)
        self._finalized = False
        # Telemetry handles are grabbed once here; with the ambient
        # context disabled they are shared null objects, so the run loop
        # pays one no-op call per event.  Instrumentation never schedules
        # events or consumes RNG — outcomes are identical either way.
        ctx = obs.current()
        self._obs_dispatched = ctx.registry.counter("sim.events_dispatched")
        self._obs_heap_depth = ctx.registry.gauge("sim.heap_depth")
        self._obs_compactions = ctx.registry.counter("sim.heap_compactions")
        self._obs_batch_scheduled = ctx.registry.counter("sim.events_batch_scheduled")
        self._obs_buckets_drained = ctx.registry.counter("sim.buckets_drained")
        # Flight recorder and profiler ride the same ambient context;
        # both default to None so the dispatch sites pay one `is None`
        # check per event when observability is off (bound pinned by
        # repro.obs.bench / tests/test_obs.py).
        flight = ctx.flight
        self._flight = flight if (flight is not None and flight.enabled) else None
        profiler = ctx.profiler
        self._profiler = profiler if (profiler is not None and profiler.enabled) else None
        if ctx.enabled:
            ctx.tracer.bind_clock(lambda: self._now)
        if self.sanitizer is not None:
            self.sanitizer.register_simulator("sim", self)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of events run so far (for instrumentation)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return len(self._heap) - self._cancelled_in_heap

    @property
    def heap_compactions(self) -> int:
        """How many lazy heap compactions have run (for instrumentation)."""
        return self._compactions

    def state_hash(self) -> str:
        """Digest of kernel-observable state for shuffle-identity checks.

        Covers virtual time, the executed-event count and the multiset
        of pending ``(time, priority)`` keys.  Event sequence numbers
        are deliberately excluded: they encode schedule *order*, which a
        bucket shuffle legitimately permutes — everything hashed here
        must be identical across shuffle seeds when handlers commute.
        """
        digest = hashlib.sha256()
        digest.update(f"{self._now!r}|{self._events_executed}".encode())
        pending = sorted(
            (event.time, event.priority)
            for event in self._heap
            if not event.cancelled
        )
        for when, priority in pending:
            digest.update(f"|{when!r},{priority}".encode())
        return digest.hexdigest()

    def _note_cancelled(self) -> None:
        """An event in the heap was cancelled; compact if too many linger.

        Long fault/retry schedules cancel far-future events (retransmit
        timers, restart backoffs) that would otherwise sit in the heap
        until their original firing time.  Once they exceed
        ``COMPACT_FRACTION`` of the heap, rebuild it without them.
        """
        self._cancelled_in_heap += 1
        if (
            len(self._heap) >= self.COMPACT_MIN_SIZE
            and self._cancelled_in_heap > len(self._heap) * self.COMPACT_FRACTION
        ):
            kept: list[Event] = []
            for ev in self._heap:
                if ev.cancelled:
                    ev._in_heap = False
                else:
                    kept.append(ev)
            # In-place so run()'s local heap alias stays valid when a
            # callback's cancellations trigger a sweep mid-drain.
            self._heap[:] = kept
            heapq.heapify(self._heap)
            self._cancelled_in_heap = 0
            self._compactions += 1
            self._obs_compactions.inc()
            self._obs_heap_depth.set(len(self._heap))

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_abs(self._now + delay, callback, *args, priority=priority)

    def schedule_abs(
        self,
        when: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when} before current time t={self._now}"
            )
        event = Event(when, priority, next(self._seq), callback, args, _sim=self)
        event._in_heap = True
        heapq.heappush(self._heap, event)
        self._obs_heap_depth.set(len(self._heap))
        return event

    def schedule_batch(
        self,
        delays: "Sequence[float] | np.ndarray",
        callback: Callable[..., Any],
        args_seq: Sequence[tuple] | None = None,
        *,
        priority: int = PRIORITY_NORMAL,
    ) -> list[Event]:
        """Bulk-schedule ``callback`` at each of ``delays`` seconds from now.

        Equivalent to ``[self.schedule(d, callback, *a) for d, a in
        zip(delays, args_seq)]`` — sequence numbers are assigned in input
        order, so the execution order is bit-identical to the scalar loop —
        but the enqueue is one vectorized validation plus an O(n + k)
        heap merge instead of k O(log n) pushes.
        """
        arr = np.asarray(delays, dtype=np.float64)
        if arr.size and float(arr.min()) < 0:
            raise SimulationError(
                f"cannot schedule into the past (min delay={float(arr.min())})"
            )
        return self.schedule_batch_abs(
            arr + self._now, callback, args_seq, priority=priority
        )

    def schedule_batch_abs(
        self,
        times: "Sequence[float] | np.ndarray",
        callback: Callable[..., Any],
        args_seq: Sequence[tuple] | None = None,
        *,
        priority: int = PRIORITY_NORMAL,
    ) -> list[Event]:
        """Bulk-schedule ``callback`` at each absolute time in ``times``.

        ``args_seq`` optionally supplies one argument tuple per event.
        Returns the created events in input order.  A sorted pending array
        (numpy stable argsort) is installed directly when the heap is empty
        — a sorted list satisfies the heap invariant — otherwise the batch
        is list-appended and re-heapified in O(n + k).
        """
        arr = np.asarray(times, dtype=np.float64)
        if arr.ndim != 1:
            raise SimulationError(f"times must be 1-d, got shape {arr.shape}")
        if arr.size == 0:
            return []
        if float(arr.min()) < self._now:
            raise SimulationError(
                f"cannot schedule at t={float(arr.min())} before current "
                f"time t={self._now}"
            )
        if args_seq is not None and len(args_seq) != arr.size:
            raise SimulationError(
                f"args_seq has {len(args_seq)} entries for {arr.size} times"
            )
        seq = self._seq
        if args_seq is None:
            events = [
                Event(float(t), priority, next(seq), callback, (), _sim=self)
                for t in arr
            ]
        else:
            events = [
                Event(float(t), priority, next(seq), callback, tuple(a), _sim=self)
                for t, a in zip(arr, args_seq)
            ]
        for event in events:
            event._in_heap = True
        heap = self._heap
        if not heap:
            # Stable sort keeps input (= seq) order among equal times, so
            # the sorted array is exactly heap order.
            order = np.argsort(arr, kind="stable")
            heap.extend(events[i] for i in order)
        elif len(events) < 8:
            for event in events:
                heapq.heappush(heap, event)
        else:
            heap.extend(events)
            heapq.heapify(heap)
        self._obs_batch_scheduled.inc(len(events))
        self._obs_heap_depth.set(len(heap))
        return events

    def schedule_periodic(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
        t0: float | None = None,
    ) -> PeriodicEvent:
        """Run ``callback(*args)`` every ``interval`` seconds, drift-free.

        Tick ``k`` fires at exactly ``t0 + k*interval`` (``t0`` defaults to
        the current time); see :class:`PeriodicEvent`.  The first tick is at
        ``t0 + interval``.  Cancel via the returned handle.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        anchor = self._now if t0 is None else t0
        return PeriodicEvent(self, interval, callback, args, priority, anchor)

    def run(self, until: float | None = None) -> None:
        """Run events in order until the queue drains or ``until`` is reached.

        When ``until`` is given, virtual time is advanced exactly to it on
        return even if the queue drained earlier, so back-to-back ``run``
        calls observe monotonic time.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run())")
        self._running = True
        self._stopped = False
        heap = self._heap
        try:
            while heap and not self._stopped:
                event = heap[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(heap)
                event._in_heap = False
                if event.cancelled:
                    # cancel() increments the ledger for every event that is
                    # in the heap, so the pop-side decrement is exact — a
                    # defensive `if > 0` guard here would mask drift and let
                    # COMPACT_FRACTION trigger spurious sweeps on long runs.
                    self._cancelled_in_heap -= 1
                    continue
                if self.sanitizer is not None:
                    self.sanitizer.check_event(event, self._now)
                self._now = event.time
                # Bucket membership is *bit-equal* time by design: only
                # events whose floats compare equal are coalesced, anything
                # off by an ulp dispatches separately (never wrongly merged).
                if not (
                    heap
                    and heap[0].time == event.time  # repro: lint-ok[FLT001]
                    and heap[0].priority == event.priority
                ):
                    # Fast path: no bucket mates (timers, app think time).
                    self._events_executed += 1
                    self._obs_dispatched.inc()
                    self._obs_heap_depth.set(len(heap))
                    if self._flight is not None:
                        self._flight.note_dispatch(event.time, event.callback)
                    if self._profiler is None:
                        event.callback(*event.args)
                    else:
                        self._profiler.dispatch(event)
                    continue
                # Drain the whole (time, priority) bucket in one pop-loop.
                # Events scheduled *during* the bucket land behind it in seq
                # order, so they run after the drained ones — exactly as the
                # scalar loop would order them.
                bucket = [event]
                while (
                    heap
                    and heap[0].time == event.time  # repro: lint-ok[FLT001]
                    and heap[0].priority == event.priority
                ):
                    mate = heapq.heappop(heap)
                    mate._in_heap = False
                    if mate.cancelled:
                        self._cancelled_in_heap -= 1
                        continue
                    bucket.append(mate)
                self._obs_buckets_drained.inc()
                self._obs_heap_depth.set(len(heap))
                if self._profiler is not None:
                    self._profiler.note_bucket(len(bucket))
                if self._shuffle_rng is not None and len(bucket) > 1:
                    # Race detector: bucket mates claim to commute, so a
                    # deterministic permutation must not change results.
                    # (Events scheduled *during* the bucket still run
                    # after it — only the claimed-commutative prefix is
                    # permuted.)
                    self._shuffle_rng.shuffle(bucket)
                i = 0
                n = len(bucket)
                try:
                    while i < n:
                        ev = bucket[i]
                        i += 1
                        if ev.cancelled:
                            # Cancelled by an earlier callback in this bucket.
                            continue
                        if self.sanitizer is not None:
                            self.sanitizer.check_event(ev, self._now)
                        self._events_executed += 1
                        self._obs_dispatched.inc()
                        if self._flight is not None:
                            self._flight.note_dispatch(ev.time, ev.callback)
                        if self._profiler is None:
                            ev.callback(*ev.args)
                        else:
                            self._profiler.dispatch(ev)
                        if self._stopped:
                            break
                finally:
                    # stop() or an exception mid-bucket: the unexecuted tail
                    # must stay pending, as it would have in the scalar loop.
                    for ev in bucket[i:]:
                        if not ev.cancelled:
                            ev._in_heap = True
                            heapq.heappush(heap, ev)
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False
        if self.sanitizer is not None:
            self.sanitizer.check_conservation(self._now)

    def finalize(self) -> None:
        """Run end-of-simulation sanitizer checks (idempotent).

        With sanitizers enabled this verifies packet conservation and
        socket/port hygiene one last time; without them it is a no-op,
        so experiment flows can call it unconditionally.
        """
        if self.sanitizer is None or self._finalized:
            return
        self._finalized = True
        self.sanitizer.finalize(self._now)

    def stop(self) -> None:
        """Stop the run loop after the current event finishes."""
        self._stopped = True

    def clear(self) -> None:
        """Drop all pending events (used between experiment phases)."""
        for event in self._heap:
            event._in_heap = False
        self._heap.clear()
        self._cancelled_in_heap = 0
