"""Discrete-event packet-level network simulator (NS-3 substitute).

This subpackage provides the network substrate that DDoShield-IoT built on
NS-3: an event-driven kernel (:mod:`repro.sim.core`), IPv4 addressing
(:mod:`repro.sim.address`), packets with binary-serializable protocol
headers (:mod:`repro.sim.packet`), CSMA channels with drop-tail queues
(:mod:`repro.sim.channel`, :mod:`repro.sim.queue`), nodes with an IPv4
stack (:mod:`repro.sim.node`), TCP and UDP transports with a sockets API
(:mod:`repro.sim.tcp`, :mod:`repro.sim.udp`), promiscuous tracing with a
libpcap-format writer (:mod:`repro.sim.tracing`), and topology helpers
(:mod:`repro.sim.topology`).

The simulator is deliberately packet-granular: SYN floods really exhaust
listen backlogs, UDP floods really overflow drop-tail queues, and every
packet an IDS sees carries genuine TCP sequence numbers and flags, because
the paper's feature pipeline (SYN-without-ACK counts, sequence-number
variance, port entropy) depends on them.
"""

from repro.sim.address import Ipv4Address, Ipv4Network, MacAddress
from repro.sim.channel import CsmaChannel, CsmaNetDevice
from repro.sim.core import Event, Simulator
from repro.sim.node import Node
from repro.sim.packet import (
    EthernetHeader,
    Ipv4Header,
    Packet,
    PacketBatch,
    TcpFlags,
    TcpHeader,
    UdpHeader,
)
from repro.sim.queue import DropTailQueue
from repro.sim.tcp import TcpSocket
from repro.sim.topology import CsmaLan, Router, SegmentedLan, set_default_gateway
from repro.sim.tracing import PacketProbe, PacketRecord, PcapReader, PcapWriter
from repro.sim.udp import UdpSocket

__all__ = [
    "CsmaChannel",
    "CsmaLan",
    "CsmaNetDevice",
    "DropTailQueue",
    "EthernetHeader",
    "Event",
    "Ipv4Address",
    "Ipv4Header",
    "Ipv4Network",
    "MacAddress",
    "Node",
    "Packet",
    "PacketBatch",
    "PacketProbe",
    "PacketRecord",
    "PcapReader",
    "PcapWriter",
    "Router",
    "SegmentedLan",
    "Simulator",
    "TcpFlags",
    "TcpHeader",
    "TcpSocket",
    "UdpSocket",
    "set_default_gateway",
]
