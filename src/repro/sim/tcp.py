"""Simplified-but-real TCP for the simulated network.

Implements the parts of TCP the testbed's behaviour actually depends on:

* three-way handshake with a bounded listen backlog — SYN floods genuinely
  exhaust it, because spoofed SYNs leave half-open entries until a timeout;
* sequence/acknowledgement numbers on every segment (the IDS extracts
  sequence-number variance and SYN-without-ACK features from them);
* in-order segment delivery with duplicate suppression and a retransmission
  timer, so queue drops under flood cause real retransmits and goodput
  collapse;
* FIN teardown and RST aborts (ACK floods to unknown 4-tuples draw RSTs,
  doubling their packet footprint exactly as on a real host).

Congestion control is a fixed-size sliding window: the channel is FIFO so
loss only comes from queue overflow, which the window plus retransmission
handles; full NewReno adds nothing the evaluation observes.
"""

from __future__ import annotations

import enum
import random
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro import obs
from repro.sim.address import Ipv4Address
from repro.sim.core import Event, Simulator
from repro.sim.packet import (
    PROTO_TCP,
    Ipv4Header,
    Packet,
    PacketBatch,
    Provenance,
    TcpFlags,
    TcpHeader,
)

if TYPE_CHECKING:
    from repro.sim.node import Node

MSS = 1400
DEFAULT_BACKLOG = 64
SYN_RCVD_TIMEOUT = 5.0
RTO_INITIAL = 1.0
RTO_MAX = 8.0
MAX_RETRIES = 5
SEND_WINDOW_BYTES = 65535
EPHEMERAL_BASE = 32768  # Linux ip_local_port_range lower bound


class TcpState(enum.Enum):
    CLOSED = "closed"
    SYN_SENT = "syn-sent"
    ESTABLISHED = "established"
    FIN_WAIT = "fin-wait"
    CLOSE_WAIT = "close-wait"
    LAST_ACK = "last-ack"
    TIME_WAIT = "time-wait"


ConnKey = tuple[int, int, int, int]  # local ip, local port, remote ip, remote port


@dataclass(slots=True)
class _SendItem:
    seq: int
    length: int
    payload: bytes
    flags: TcpFlags
    app_data: object | None


class TcpListener:
    """A passive socket with a half-open (SYN) backlog."""

    def __init__(
        self,
        stack: "TcpStack",
        port: int,
        on_accept: Callable[["TcpSocket"], None],
        backlog: int = DEFAULT_BACKLOG,
    ) -> None:
        self.stack = stack
        self.port = port
        self.on_accept = on_accept
        self.backlog = backlog
        self.half_open: dict[tuple[int, int], Event] = {}
        self.syn_dropped = 0
        self.accepted = 0
        # SYN-cookie mode (mitigation): above a half-open watermark the
        # listener answers SYNs statelessly with a cookie ISN instead of
        # consuming backlog slots, so spoofed floods cannot exhaust it.
        self.syn_cookies_enabled = False
        self.syn_cookie_threshold = 1.0
        self.syn_cookies_sent = 0
        self.syn_cookies_accepted = 0
        self.syn_cookies_rejected = 0
        self._cookie_secret = 0

    # ------------------------------------------------------------------
    # SYN cookies

    def enable_syn_cookies(self, threshold: float = 0.5, secret: int = 0) -> None:
        """Handshake hardening: go stateless once the half-open table
        reaches ``threshold × backlog`` entries."""
        if not 0 < threshold <= 1:
            raise ValueError("syn-cookie threshold must be in (0, 1]")
        self.syn_cookies_enabled = True
        self.syn_cookie_threshold = threshold
        self._cookie_secret = secret & 0xFFFFFFFF

    def disable_syn_cookies(self) -> None:
        self.syn_cookies_enabled = False
        self.syn_cookie_threshold = 1.0

    @property
    def _cookie_watermark(self) -> int:
        return max(1, int(self.backlog * self.syn_cookie_threshold))

    def _cookie_isn(self, src_ip: int, src_port: int) -> int:
        """Deterministic per-peer cookie (an explicit integer mix — not
        Python's salted ``hash()``, which would break reproducibility)."""
        x = (src_ip & 0xFFFFFFFF) * 0x9E3779B1
        x ^= (src_port * 0x85EBCA6B) ^ (self.port * 0xC2B2AE35) ^ self._cookie_secret
        x = ((x ^ (x >> 15)) * 0x27D4EB2F) & 0xFFFFFFFFFFFFFFFF
        x = (x ^ (x >> 13)) & 0xFFFFFFFF
        return x or 1

    def handle_syn(self, packet: Packet) -> None:
        assert packet.ip is not None and packet.tcp is not None
        key = (packet.ip.src.value, packet.tcp.src_port)
        if key in self.half_open:
            return  # duplicate SYN; SYN-ACK already in flight
        if self.syn_cookies_enabled and len(self.half_open) >= self._cookie_watermark:
            # Stateless reply: no backlog entry, no timer.  The cookie is
            # recoverable from the peer's ACK, so legitimate clients still
            # complete while a spoofed flood burns no victim state.
            self.syn_cookies_sent += 1
            self.stack._obs_syn_cookies.inc()
            self.stack.send_segment(
                src_port=self.port,
                dst=packet.ip.src,
                dst_port=packet.tcp.src_port,
                seq=self._cookie_isn(packet.ip.src.value, packet.tcp.src_port),
                ack=(packet.tcp.seq + 1) & 0xFFFFFFFF,
                flags=TcpFlags.SYN | TcpFlags.ACK,
            )
            return
        if len(self.half_open) >= self.backlog:
            self.syn_dropped += 1
            self.stack._obs_syn_dropped.inc()
            return  # backlog exhausted: the SYN-flood effect
        timeout = self.stack.sim.schedule(
            SYN_RCVD_TIMEOUT,
            self._expire,
            key,
            priority=Simulator.PRIORITY_TIMER,
        )
        self.half_open[key] = timeout
        isn = self.stack.initial_sequence()
        self.stack.send_segment(
            src_port=self.port,
            dst=packet.ip.src,
            dst_port=packet.tcp.src_port,
            seq=isn,
            ack=(packet.tcp.seq + 1) & 0xFFFFFFFF,
            flags=TcpFlags.SYN | TcpFlags.ACK,
        )
        self._isns = getattr(self, "_isns", {})
        self._isns[key] = isn

    def handle_ack(self, packet: Packet) -> "TcpSocket | None":
        """Third handshake step: promote a half-open entry to a socket."""
        assert packet.ip is not None and packet.tcp is not None
        key = (packet.ip.src.value, packet.tcp.src_port)
        timeout = self.half_open.pop(key, None)
        if timeout is None:
            if not self.syn_cookies_enabled:
                return None
            # Stateless path: the ACK must echo cookie + 1 to prove the
            # peer really completed our SYN-ACK exchange.
            cookie = self._cookie_isn(packet.ip.src.value, packet.tcp.src_port)
            if (packet.tcp.ack - 1) & 0xFFFFFFFF != cookie:
                self.syn_cookies_rejected += 1
                return None
            self.syn_cookies_accepted += 1
            return self._promote(packet, cookie)
        timeout.cancel()
        isn = getattr(self, "_isns", {}).pop(key, 0)
        return self._promote(packet, isn)

    def handle_syn_batch(
        self,
        src_ip: np.ndarray,
        src_port: np.ndarray,
        seq: np.ndarray,
    ) -> None:
        """Process a SYN train against the backlog, scalar-equivalently.

        Packets are consumed in order with the exact per-packet semantics
        of :meth:`handle_syn` (duplicate suppression, cookie watermark,
        ISN draws and timers in arrival order) until the backlog fills;
        from there no state can change within the train — cookies are off
        whenever backlog-full is reachable — so the saturated tail is
        counted vectorized.  SYN-ACK replies accumulate into one response
        batch.
        """
        n = int(src_ip.shape[0])
        src_ip_list = src_ip.tolist()
        src_port_list = src_port.tolist()
        seq_list = seq.tolist()
        resp_dst: list[int] = []
        resp_dport: list[int] = []
        resp_seq: list[int] = []
        resp_ack: list[int] = []
        self._isns = getattr(self, "_isns", {})
        i = 0
        while i < n:
            sip = src_ip_list[i]
            sport = src_port_list[i]
            key = (sip, sport)
            if key in self.half_open:
                i += 1
                continue  # duplicate SYN; SYN-ACK already in flight
            if (
                self.syn_cookies_enabled
                and len(self.half_open) >= self._cookie_watermark
            ):
                self.syn_cookies_sent += 1
                self.stack._obs_syn_cookies.inc()
                resp_dst.append(sip)
                resp_dport.append(sport)
                resp_seq.append(self._cookie_isn(sip, sport))
                resp_ack.append((seq_list[i] + 1) & 0xFFFFFFFF)
                i += 1
                continue
            if len(self.half_open) >= self.backlog:
                break  # saturated; the rest of the train counts vectorized
            timeout = self.stack.sim.schedule(
                SYN_RCVD_TIMEOUT,
                self._expire,
                key,
                priority=Simulator.PRIORITY_TIMER,
            )
            self.half_open[key] = timeout
            isn = self.stack.initial_sequence()
            self._isns[key] = isn
            resp_dst.append(sip)
            resp_dport.append(sport)
            resp_seq.append(isn)
            resp_ack.append((seq_list[i] + 1) & 0xFFFFFFFF)
            i += 1
        if i < n:
            tail_keys = (src_ip[i:] << np.int64(16)) | src_port[i:]
            if self.half_open:
                known = np.fromiter(
                    ((k_ip << 16) | k_port for k_ip, k_port in self.half_open),
                    dtype=np.int64,
                    count=len(self.half_open),
                )
                dropped = int((~np.isin(tail_keys, known)).sum())
            else:
                dropped = n - i
            self.syn_dropped += dropped
            self.stack._obs_syn_dropped.inc(dropped)
        if resp_dst:
            self.stack.send_segment_batch(
                PacketBatch.tcp_batch(
                    len(resp_dst),
                    src_ip=self.stack.node.address.value,
                    dst_ip=np.asarray(resp_dst, dtype=np.int64),
                    src_port=self.port,
                    dst_port=np.asarray(resp_dport, dtype=np.int64),
                    seq=np.asarray(resp_seq, dtype=np.int64),
                    ack=np.asarray(resp_ack, dtype=np.int64),
                    flags=TcpFlags.SYN | TcpFlags.ACK,
                    provenance=self.stack.default_provenance or Provenance(),
                )
            )

    def _promote(self, packet: Packet, isn: int) -> "TcpSocket":
        """Build the established socket for a completed handshake."""
        assert packet.ip is not None and packet.tcp is not None
        sock = TcpSocket(self.stack, local_port=self.port)
        sock.remote_address = packet.ip.src
        sock.remote_port = packet.tcp.src_port
        sock.state = TcpState.ESTABLISHED
        sock.snd_nxt = (isn + 1) & 0xFFFFFFFF
        sock.snd_una = sock.snd_nxt
        sock.rcv_nxt = packet.tcp.seq
        self.stack.register(sock)
        self.accepted += 1
        self.on_accept(sock)
        return sock

    def _expire(self, key: tuple[int, int]) -> None:
        self.half_open.pop(key, None)
        getattr(self, "_isns", {}).pop(key, None)

    def close(self) -> None:
        for timeout in self.half_open.values():
            timeout.cancel()
        self.half_open.clear()
        self.stack.listeners.pop(self.port, None)


class TcpSocket:
    """An active TCP connection endpoint.

    Callbacks (all optional):

    * ``on_established(sock)`` — handshake completed (client side);
    * ``on_data(sock, payload, length, app_data)`` — an in-order segment
      arrived; ``length`` counts virtual payload bytes, ``payload`` holds
      the literal bytes (may be shorter for virtual bulk data);
    * ``on_data_batch(sock, batch)`` — an in-order *train* of data
      segments arrived at once (batch delivery); when unset, the train
      falls back to one ``on_data`` call per segment;
    * ``on_close(sock)`` — peer finished sending (FIN received);
    * ``on_reset(sock)`` — connection aborted.
    """

    def __init__(self, stack: "TcpStack", local_port: int = 0) -> None:
        self.stack = stack
        self.local_address = stack.node.address
        self.local_port = local_port or stack.allocate_port()
        self.remote_address: Ipv4Address | None = None
        self.remote_port: int | None = None
        self.state = TcpState.CLOSED
        self.snd_una = 0
        self.snd_nxt = 0
        self.rcv_nxt = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.retransmissions = 0
        self.provenance: Provenance | None = None
        self.on_established: Callable[[TcpSocket], None] | None = None
        self.on_data: Callable[[TcpSocket, bytes, int, object | None], None] | None = None
        self.on_data_batch: Callable[[TcpSocket, PacketBatch], None] | None = None
        self.on_close: Callable[[TcpSocket], None] | None = None
        self.on_reset: Callable[[TcpSocket], None] | None = None
        self._unsent: deque[_SendItem] = deque()
        self._inflight: deque[_SendItem] = deque()
        self._inflight_bytes = 0  # running sum, updated at every append/pop
        self._retx_event: Event | None = None
        self._retries = 0
        self._rto = RTO_INITIAL
        self._fin_queued = False
        self._pump_deferred = False
        self._handshake_span = None

    # ------------------------------------------------------------------
    # Public API

    def connect(
        self,
        remote: Ipv4Address,
        port: int,
        on_established: Callable[["TcpSocket"], None] | None = None,
    ) -> None:
        """Start the three-way handshake toward ``remote:port``."""
        if self.state is not TcpState.CLOSED:
            raise RuntimeError(f"connect() on socket in state {self.state}")
        self.remote_address = remote
        self.remote_port = port
        self.on_established = on_established or self.on_established
        isn = self.stack.initial_sequence()
        self.snd_una = isn
        self.snd_nxt = (isn + 1) & 0xFFFFFFFF
        self.state = TcpState.SYN_SENT
        self.stack.register(self)
        self._handshake_span = self.stack._obs_tracer.span(
            "tcp.handshake",
            node=self.stack.node.name,
            dst=str(remote),
            dst_port=port,
        ).start()
        self._send_flags(TcpFlags.SYN, seq=isn)
        self._arm_retx()

    def send(self, payload: bytes = b"", length: int | None = None, app_data: object | None = None) -> None:
        """Queue application data; segmented into MSS-sized pieces.

        ``length`` allows bulk transfers to model large payloads without
        materialising bytes; ``app_data`` rides on the final segment so
        message-oriented apps get exactly one callback per message.
        """
        if self.state not in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT):
            raise RuntimeError(f"send() on socket in state {self.state}")
        total = length if length is not None else len(payload)
        if total <= 0:
            total = max(total, 1)  # zero-length app messages still need a segment
        offset = 0
        ack_psh = TcpFlags.ACK | TcpFlags.PSH  # hoisted: enum | is not free
        while offset < total:
            chunk = min(MSS, total - offset)
            literal = payload[offset : offset + chunk]
            is_last = offset + chunk >= total
            self._unsent.append(
                _SendItem(
                    seq=0,  # assigned at transmission
                    length=chunk,
                    payload=literal,
                    # The whole buffer was pushed by one application
                    # write, so every segment carries PSH (as stacks
                    # that map one write to one push do).  Keeping the
                    # message flag-uniform also lets a send window leave
                    # as a single train instead of train + scalar tail.
                    flags=ack_psh,
                    app_data=app_data if is_last else None,
                )
            )
            offset += chunk
        self._pump()

    def close(self) -> None:
        """Finish sending, then FIN."""
        if self.state in (TcpState.CLOSED, TcpState.TIME_WAIT, TcpState.LAST_ACK):
            return
        self._fin_queued = True
        self._pump()

    def abort(self) -> None:
        """Send RST and drop all state."""
        if self.remote_address is not None and self.state is not TcpState.CLOSED:
            self._send_flags(TcpFlags.RST | TcpFlags.ACK)
        self._teardown()

    @property
    def inflight_bytes(self) -> int:
        return self._inflight_bytes

    @property
    def writable(self) -> bool:
        """Whether :meth:`send` is currently legal (no FIN sent/queued)."""
        return (
            self.state in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT)
            and not self._fin_queued
        )

    # ------------------------------------------------------------------
    # Segment transmission

    def _pump(self) -> None:
        """Transmit queued segments up to the send window.

        In batch mode (``stack.batch_segments``) the window's worth of
        segments is collected first and emitted as flag-uniform
        :class:`PacketBatch` trains — per-packet content identical to the
        scalar emissions, in the same queue order.
        """
        pending: list[_SendItem] | None = [] if self.stack.batch_segments else None
        while self._unsent and self.inflight_bytes < SEND_WINDOW_BYTES:
            item = self._unsent.popleft()
            item.seq = self.snd_nxt
            self.snd_nxt = (self.snd_nxt + item.length) & 0xFFFFFFFF
            self._inflight.append(item)
            self._inflight_bytes += item.length
            if pending is None:
                self._transmit(item)
            else:
                pending.append(item)
        if pending:
            self._flush_pending(pending)
        if (
            self._fin_queued
            and not self._unsent
            and not self._inflight
            and self.state in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT)
        ):
            fin_seq = self.snd_nxt
            self.snd_nxt = (self.snd_nxt + 1) & 0xFFFFFFFF
            self._send_flags(TcpFlags.FIN | TcpFlags.ACK, seq=fin_seq)
            self.state = (
                TcpState.FIN_WAIT
                if self.state is TcpState.ESTABLISHED
                else TcpState.LAST_ACK
            )
            self._fin_queued = False
            self._arm_retx()
        if self._inflight:
            self._arm_retx()

    def _transmit(self, item: _SendItem) -> None:
        assert self.remote_address is not None and self.remote_port is not None
        self.bytes_sent += item.length
        self.stack.send_segment(
            src_port=self.local_port,
            dst=self.remote_address,
            dst_port=self.remote_port,
            seq=item.seq,
            ack=self.rcv_nxt,
            flags=item.flags,
            payload=item.payload,
            payload_len=item.length,
            app_data=item.app_data,
            provenance=self.provenance,
        )

    def _flush_pending(self, items: list[_SendItem]) -> None:
        """Emit collected segments as maximal flag-uniform trains.

        A bulk ``send()`` queues N-1 plain ACK segments and one final
        ACK|PSH carrier, so the common emission is one long train plus a
        scalar tail; singleton runs go through the scalar twin untouched.
        """
        i = 0
        n = len(items)
        while i < n:
            j = i + 1
            while j < n and items[j].flags == items[i].flags:
                j += 1
            if j - i >= 2:
                self._transmit_batch(items[i:j])
            else:
                self._transmit(items[i])
            i = j

    def _transmit_batch(self, items: list[_SendItem]) -> None:
        """Emit a flag-uniform segment run as one PacketBatch train."""
        if not items:
            return
        assert self.remote_address is not None and self.remote_port is not None
        self.bytes_sent += sum(item.length for item in items)
        payloads = None
        if any(item.payload for item in items):
            payloads = tuple(item.payload for item in items)
        app_data = None
        if any(item.app_data is not None for item in items):
            app_data = tuple(item.app_data for item in items)
        prov = self.provenance or self.stack.default_provenance
        self.stack.send_segment_batch(
            PacketBatch.tcp_batch(
                len(items),
                src_ip=self.stack.node.address.value,
                dst_ip=self.remote_address.value,
                src_port=self.local_port,
                dst_port=self.remote_port,
                seq=[item.seq for item in items],
                ack=self.rcv_nxt,
                flags=items[0].flags,
                payload_len=[item.length for item in items],
                provenance=prov if prov is not None else Provenance(),
                payloads=payloads,
                app_data=app_data,
            )
        )

    def _send_flags(self, flags: TcpFlags, seq: int | None = None) -> None:
        assert self.remote_address is not None and self.remote_port is not None
        self.stack.send_segment(
            src_port=self.local_port,
            dst=self.remote_address,
            dst_port=self.remote_port,
            seq=self.snd_nxt if seq is None else seq,
            ack=self.rcv_nxt,
            flags=flags,
            provenance=self.provenance,
        )

    # ------------------------------------------------------------------
    # Retransmission

    def _arm_retx(self) -> None:
        if self._retx_event is not None:
            self._retx_event.cancel()
        self._retx_event = self.stack.sim.schedule(
            self._rto, self._on_retx_timeout, priority=Simulator.PRIORITY_TIMER
        )

    def _disarm_retx(self) -> None:
        if self._retx_event is not None:
            self._retx_event.cancel()
            self._retx_event = None
        self._retries = 0
        self._rto = RTO_INITIAL

    def _on_retx_timeout(self) -> None:
        self._retx_event = None
        self._retries += 1
        if self._retries > MAX_RETRIES:
            self._notify_reset()
            self._teardown()
            return
        if self._rto < RTO_MAX:
            self.stack._obs_backoff.inc()
        self._rto = min(self._rto * 2, RTO_MAX)
        self.retransmissions += 1
        self.stack._obs_retx.inc()
        if self.state is TcpState.SYN_SENT:
            self._send_flags(TcpFlags.SYN, seq=(self.snd_una) & 0xFFFFFFFF)
        elif self._inflight:
            self._transmit(self._inflight[0])
        elif self.state in (TcpState.FIN_WAIT, TcpState.LAST_ACK):
            self._send_flags(
                TcpFlags.FIN | TcpFlags.ACK, seq=(self.snd_nxt - 1) & 0xFFFFFFFF
            )
        self._arm_retx()

    # ------------------------------------------------------------------
    # Segment reception

    def handle(self, packet: Packet) -> None:
        assert packet.tcp is not None
        tcp = packet.tcp
        if tcp.flags & TcpFlags.RST:
            self._notify_reset()
            self._teardown()
            return
        if self.state is TcpState.SYN_SENT:
            if tcp.flags & TcpFlags.SYN and tcp.flags & TcpFlags.ACK:
                self.rcv_nxt = (tcp.seq + 1) & 0xFFFFFFFF
                self.snd_una = tcp.ack
                self.state = TcpState.ESTABLISHED
                self._disarm_retx()
                if self._handshake_span is not None:
                    self._handshake_span.set("result", "established")
                    self._handshake_span.finish()
                    self._handshake_span = None
                self._send_flags(TcpFlags.ACK)
                if self.on_established is not None:
                    self.on_established(self)
                self._pump()
            return
        if tcp.flags & TcpFlags.ACK:
            self._process_ack(tcp.ack)
        if packet.data_len > 0:
            self._process_data(packet)
        if tcp.flags & TcpFlags.FIN:
            self._process_fin(tcp.seq)

    def handle_batch(self, batch: PacketBatch) -> None:
        """Consume a train of segments addressed to this connection.

        The fast path covers the bulk-transfer case — ESTABLISHED state
        and pure ``ACK``/``ACK|PSH`` flags: acknowledgements process
        per row (identical window bookkeeping to the scalar twin), the
        per-row ACK replies coalesce into one response train carrying
        exactly the scalar per-packet ``(seq, ack)`` values, and the
        in-order data rows deliver to the app as one ``on_data_batch``
        call (or per-row ``on_data`` when no batch callback is set).
        Anything else — handshakes, FIN/RST, mid-close races — falls
        back to per-packet handling.
        """
        n = len(batch)
        if n == 0:
            return
        flags = batch.flags
        if (
            self.state is not TcpState.ESTABLISHED
            or batch.seq is None
            or batch.ack is None
            or flags & (TcpFlags.SYN | TcpFlags.RST | TcpFlags.FIN)
            or not flags & TcpFlags.ACK
        ):
            for packet in batch.packets():
                self.handle(packet)
            return
        seqs = batch.seq
        acks = batch.ack
        lens = batch.payload_len
        # Columnar fast paths.  ``_process_ack`` is purely cumulative
        # (pops below the ack, overwrites snd_una, no RTT estimator), so
        # a non-decreasing ACK column collapses to one call with the
        # final ack — bit-identical end state to the row loop.
        if n > 1 and bool((np.diff(acks) >= 0).all()):
            if not bool((lens > 0).any()):
                # Pure ACK train: the receiver's coalesced window acks.
                self._pump_deferred = True
                try:
                    self._process_ack(int(acks[-1]))
                finally:
                    self._pump_deferred = False
                self._pump()
                return
            if bool((lens > 0).all()):
                shifted = np.concatenate(
                    (np.zeros(1, dtype=np.int64), np.cumsum(lens[:-1], dtype=np.int64))
                )
                expected = (int(self.rcv_nxt) + shifted) & np.int64(0xFFFFFFFF)
                if bool((seqs == expected).all()):
                    # In-order contiguous data train: advance the window
                    # once, build the per-row ack replies columnar (the
                    # exact (snd_nxt, running rcv_nxt) pairs the scalar
                    # loop would emit — snd_nxt cannot move while the
                    # pump is deferred), and deliver rows in one call.
                    self._pump_deferred = True
                    try:
                        self._process_ack(int(acks[-1]))
                    finally:
                        self._pump_deferred = False
                    ack_ack_col = ((expected + lens) & np.int64(0xFFFFFFFF)).tolist()
                    ack_seq_col = [self.snd_nxt] * n
                    total = int(lens.sum())
                    self.rcv_nxt = (int(self.rcv_nxt) + total) & 0xFFFFFFFF
                    self.bytes_received += total
                    self._pump()
                    self._flush_ack_train(ack_seq_col, ack_ack_col)
                    self._deliver_rows(batch, list(range(n)))
                    return
        ack_seq: list[int] = []
        ack_ack: list[int] = []
        deliver: list[int] = []
        # Defer the per-ACK pump: row-by-row pumping would reopen the
        # send window one MSS at a time and dribble out single-segment
        # "trains".  Processing the whole ACK train first and pumping
        # once emits the next full window as one train — same segments,
        # same bytes, one emission.
        self._pump_deferred = True
        try:
            for i in range(n):
                self._process_ack(int(acks[i]))
                length = int(lens[i])
                if length <= 0:
                    continue
                if self.state in (TcpState.TIME_WAIT, TcpState.CLOSED, TcpState.LAST_ACK):
                    # Data after our close: flush what the wire already owes
                    # (the coalesced ACKs), then abort as the scalar twin
                    # would on this row.
                    self._flush_ack_train(ack_seq, ack_ack)
                    self._deliver_rows(batch, deliver)
                    self.abort()
                    return
                if int(seqs[i]) != self.rcv_nxt:
                    # Duplicate (retransmitted but already received); re-ack.
                    ack_seq.append(self.snd_nxt)
                    ack_ack.append(self.rcv_nxt)
                    continue
                self.rcv_nxt = (self.rcv_nxt + length) & 0xFFFFFFFF
                self.bytes_received += length
                ack_seq.append(self.snd_nxt)
                ack_ack.append(self.rcv_nxt)
                deliver.append(i)
        finally:
            self._pump_deferred = False
        self._pump()
        self._flush_ack_train(ack_seq, ack_ack)
        self._deliver_rows(batch, deliver)

    def _flush_ack_train(self, ack_seq: list[int], ack_ack: list[int]) -> None:
        """Emit the coalesced per-row ACK replies as one train."""
        if not ack_seq:
            return
        assert self.remote_address is not None and self.remote_port is not None
        if len(ack_seq) == 1:
            self.stack.send_segment(
                src_port=self.local_port,
                dst=self.remote_address,
                dst_port=self.remote_port,
                seq=ack_seq[0],
                ack=ack_ack[0],
                flags=TcpFlags.ACK,
                provenance=self.provenance,
            )
            return
        prov = self.provenance or self.stack.default_provenance
        self.stack.send_segment_batch(
            PacketBatch.tcp_batch(
                len(ack_seq),
                src_ip=self.stack.node.address.value,
                dst_ip=self.remote_address.value,
                src_port=self.local_port,
                dst_port=self.remote_port,
                seq=ack_seq,
                ack=ack_ack,
                flags=TcpFlags.ACK,
                provenance=prov if prov is not None else Provenance(),
            )
        )

    def _deliver_rows(self, batch: PacketBatch, rows: list[int]) -> None:
        """Hand delivered in-order data rows to the application."""
        if not rows:
            return
        sub = batch if len(rows) == len(batch) else batch.take(
            np.asarray(rows, dtype=np.int64)
        )
        if self.on_data_batch is not None:
            self.on_data_batch(self, sub)
        elif self.on_data is not None:
            for packet in sub.packets():
                self.on_data(self, packet.payload, packet.data_len, packet.app_data)

    def _process_ack(self, ack: int) -> None:
        acked = False
        while self._inflight and _seq_lt(self._inflight[0].seq, ack):
            self._inflight_bytes -= self._inflight.popleft().length
            acked = True
        self.snd_una = ack
        if acked:
            self._retries = 0
            self._rto = RTO_INITIAL
        if not self._inflight:
            if self.state is TcpState.FIN_WAIT and _seq_le(self.snd_nxt, ack):
                self.state = TcpState.TIME_WAIT
                self._disarm_retx()
                self.stack.sim.schedule(2 * RTO_MAX, self._teardown)
            elif self.state is TcpState.LAST_ACK and _seq_le(self.snd_nxt, ack):
                self._disarm_retx()
                self._teardown()
            elif not self._fin_queued and not self._unsent:
                self._disarm_retx()
        if not self._pump_deferred:
            self._pump()

    def _process_data(self, packet: Packet) -> None:
        assert packet.tcp is not None
        if self.state in (TcpState.TIME_WAIT, TcpState.CLOSED, TcpState.LAST_ACK):
            # Data after our close: abort, as a real stack would (RST
            # tells pipelining peers the connection is gone).
            self.abort()
            return
        seq = packet.tcp.seq
        if seq != self.rcv_nxt:
            # Duplicate (retransmitted but already received); re-ack.
            self._send_flags(TcpFlags.ACK)
            return
        self.rcv_nxt = (self.rcv_nxt + packet.data_len) & 0xFFFFFFFF
        self.bytes_received += packet.data_len
        self._send_flags(TcpFlags.ACK)
        if self.on_data is not None:
            self.on_data(self, packet.payload, packet.data_len, packet.app_data)

    def _process_fin(self, seq: int) -> None:
        if self.state in (TcpState.CLOSED, TcpState.TIME_WAIT):
            return
        self.rcv_nxt = (seq + 1) & 0xFFFFFFFF
        self._send_flags(TcpFlags.ACK)
        if self.state is TcpState.ESTABLISHED:
            self.state = TcpState.CLOSE_WAIT
        elif self.state is TcpState.FIN_WAIT:
            self.state = TcpState.TIME_WAIT
            self.stack.sim.schedule(2 * RTO_MAX, self._teardown)
        if self.on_close is not None:
            self.on_close(self)

    def _notify_reset(self) -> None:
        if self.on_reset is not None:
            self.on_reset(self)

    def _teardown(self) -> None:
        if self._handshake_span is not None:
            # The span is still open only when the handshake never
            # completed (RST, SYN retry exhaustion).
            self._handshake_span.set("result", "failed")
            self._handshake_span.finish()
            self._handshake_span = None
        self._disarm_retx()
        self.state = TcpState.CLOSED
        self._unsent.clear()
        self._inflight.clear()
        self._inflight_bytes = 0
        self.stack.deregister(self)


class TcpStack:
    """Per-node TCP: demultiplexing, listeners, and segment construction."""

    def __init__(self, node: "Node") -> None:
        self.node = node
        self.sim: Simulator = node.sim
        self.listeners: dict[int, TcpListener] = {}
        self.sockets: dict[ConnKey, TcpSocket] = {}
        self._ports_in_use: set[int] = set()
        self._isn_rng = random.Random(0xD05)
        self.rst_sent = 0
        self.payload_bytes_sent = 0  # monotone app-byte counter (goodput)
        self.default_provenance: Provenance | None = None
        #: When set, socket send windows emit PacketBatch trains instead
        #: of per-segment events (the benign-plane batch path).
        self.batch_segments = False
        ctx = obs.current()
        self._obs_tracer = ctx.tracer
        self._obs_retx = ctx.registry.counter("tcp.retransmissions", node=node.name)
        self._obs_backoff = ctx.registry.counter("tcp.rto_backoffs", node=node.name)
        self._obs_syn_dropped = ctx.registry.counter("tcp.syn_dropped", node=node.name)
        self._obs_syn_cookies = ctx.registry.counter("tcp.syn_cookies", node=node.name)
        if self.sim.sanitizer is not None:
            self.sim.sanitizer.register_tcp_stack(self)

    def seed(self, seed: int) -> None:
        """Reseed ISN and ephemeral-port generation (per-scenario determinism)."""
        self._isn_rng = random.Random(seed)

    def initial_sequence(self) -> int:
        return self._isn_rng.randrange(0, 2**32)

    def allocate_port(self) -> int:
        """Pick a random free ephemeral port (Linux's 32768-60999 range)."""
        for _ in range(64):
            port = self._isn_rng.randrange(EPHEMERAL_BASE, 61000)
            if port not in self._ports_in_use:
                self._ports_in_use.add(port)
                return port
        # Pathological reuse pressure: fall back to a linear scan.
        for port in range(EPHEMERAL_BASE, 61000):
            if port not in self._ports_in_use:
                self._ports_in_use.add(port)
                return port
        raise RuntimeError(f"{self.node.name}: ephemeral ports exhausted")

    def listen(
        self,
        port: int,
        on_accept: Callable[[TcpSocket], None],
        backlog: int = DEFAULT_BACKLOG,
    ) -> TcpListener:
        """Open a passive socket on ``port``."""
        if port in self.listeners:
            raise RuntimeError(f"port {port} already listening on {self.node.name}")
        listener = TcpListener(self, port, on_accept, backlog)
        self.listeners[port] = listener
        return listener

    def socket(self) -> TcpSocket:
        """Create an unconnected active socket with an ephemeral port."""
        return TcpSocket(self)

    def register(self, sock: TcpSocket) -> None:
        self.sockets[self._key(sock)] = sock

    def deregister(self, sock: TcpSocket) -> None:
        self.sockets.pop(self._key(sock), None)
        if sock.local_port not in self.listeners:
            self._ports_in_use.discard(sock.local_port)

    @staticmethod
    def _key(sock: TcpSocket) -> ConnKey:
        return (
            sock.local_address.value,
            sock.local_port,
            sock.remote_address.value if sock.remote_address else 0,
            sock.remote_port or 0,
        )

    def receive(self, packet: Packet) -> None:
        assert packet.ip is not None and packet.tcp is not None
        tcp = packet.tcp
        key: ConnKey = (
            packet.ip.dst.value,
            tcp.dst_port,
            packet.ip.src.value,
            tcp.src_port,
        )
        sock = self.sockets.get(key)
        if sock is not None:
            sock.handle(packet)
            return
        listener = self.listeners.get(tcp.dst_port)
        if listener is not None:
            if tcp.flags & TcpFlags.SYN and not tcp.flags & TcpFlags.ACK:
                listener.handle_syn(packet)
                return
            if tcp.flags & TcpFlags.ACK and not tcp.flags & TcpFlags.SYN:
                if listener.handle_ack(packet) is not None:
                    return
        if tcp.flags & TcpFlags.RST:
            return  # never answer a RST with a RST
        # Unknown 4-tuple: answer with RST, as a real host would.  This is
        # what makes ACK floods draw a response storm from the victim.
        self.rst_sent += 1
        self.send_segment(
            src_port=tcp.dst_port,
            dst=packet.ip.src,
            dst_port=tcp.src_port,
            seq=tcp.ack,
            ack=(tcp.seq + packet.data_len) & 0xFFFFFFFF,
            flags=TcpFlags.RST | TcpFlags.ACK,
        )

    def receive_batch(self, batch: PacketBatch) -> None:
        """Demultiplex a train with scalar-identical per-packet semantics.

        The fast path needs a uniform ``(dst_ip, dst_port)`` — true for
        any flood train.  Frames matching an established socket (possible
        only for non-spoofed sources) are materialised and handled one by
        one; listener SYN/ACK trains take the batched backlog paths; the
        remainder draws one batched RST storm, exactly the segments the
        scalar kernel would emit.
        """
        n = len(batch)
        if n == 0:
            return
        dst0 = int(batch.dst_ip[0])
        port0 = int(batch.dst_port[0])
        if not (
            bool((batch.dst_ip == dst0).all())
            and bool((batch.dst_port == port0).all())
        ):
            for packet in batch.packets():
                self.receive(packet)
            return
        flags = batch.flags
        unhandled = np.ones(n, dtype=bool)
        if self.sockets:
            src0 = int(batch.src_ip[0])
            sport0 = int(batch.src_port[0])
            if (
                int(batch.src_ip[-1]) == src0
                and int(batch.src_port[-1]) == sport0
                and bool((batch.src_ip == src0).all())
                and bool((batch.src_port == sport0).all())
            ):
                # Uniform remote endpoint — every benign bulk-transfer
                # train — resolves with one dict probe instead of an
                # np.isin sweep over the connection table.
                sock = self.sockets.get((dst0, port0, src0, sport0))
                if sock is not None:
                    if n == 1:
                        self.receive(batch.packet(0))
                    else:
                        sock.handle_batch(batch)
                    return
            else:
                remote_keys = [
                    (key[2] << 16) | key[3]
                    for key in self.sockets
                    if key[0] == dst0 and key[1] == port0
                ]
                if remote_keys:
                    encoded = (batch.src_ip << np.int64(16)) | batch.src_port
                    hits = np.isin(encoded, np.asarray(remote_keys, dtype=np.int64))
                    if hits.any():
                        self._dispatch_socket_runs(
                            batch, np.flatnonzero(hits), encoded, dst0, port0
                        )
                        unhandled &= ~hits
        if not unhandled.any():
            return
        listener = self.listeners.get(port0)
        is_syn = bool(flags & TcpFlags.SYN) and not flags & TcpFlags.ACK
        is_ack = bool(flags & TcpFlags.ACK) and not flags & TcpFlags.SYN
        idx = np.flatnonzero(unhandled)
        if listener is not None:
            if is_syn:
                listener.handle_syn_batch(
                    batch.src_ip[idx], batch.src_port[idx], batch.seq[idx]
                )
                return
            if is_ack and (listener.half_open or listener.syn_cookies_enabled):
                leftover = [
                    i
                    for i in idx.tolist()
                    if listener.handle_ack(batch.packet(i)) is None
                ]
                idx = np.asarray(leftover, dtype=np.int64)
        if flags & TcpFlags.RST or len(idx) == 0:
            return  # never answer a RST with a RST
        # Unknown 4-tuples: answer with one RST train, as a real host
        # would packet by packet — what makes ACK floods draw a storm.
        self.rst_sent += len(idx)
        self.send_segment_batch(
            PacketBatch.tcp_batch(
                len(idx),
                src_ip=self.node.address.value,
                dst_ip=batch.src_ip[idx],
                src_port=port0,
                dst_port=batch.src_port[idx],
                seq=batch.ack[idx] if batch.ack is not None else 0,
                ack=(
                    (batch.seq[idx] + batch.payload_len[idx]) & np.int64(0xFFFFFFFF)
                    if batch.seq is not None
                    else batch.payload_len[idx] & np.int64(0xFFFFFFFF)
                ),
                flags=TcpFlags.RST | TcpFlags.ACK,
                provenance=self.default_provenance or Provenance(),
            )
        )

    def _dispatch_socket_runs(
        self,
        batch: PacketBatch,
        hit_idx: np.ndarray,
        encoded: np.ndarray,
        dst0: int,
        port0: int,
    ) -> None:
        """Deliver established-socket rows, grouping consecutive runs.

        Rows from one remote endpoint arriving back to back — the shape
        of every bulk-transfer train — reach the socket as a single
        :meth:`TcpSocket.handle_batch` call; isolated rows keep the
        scalar materialise-and-receive path.  Sockets are re-looked-up
        per run because an earlier run may tear its connection down.
        """
        enc = encoded[hit_idx]
        starts = [0] + (np.flatnonzero(enc[1:] != enc[:-1]) + 1).tolist()
        starts.append(int(enc.shape[0]))
        rows = hit_idx.tolist()
        for a, b in zip(starts[:-1], starts[1:]):
            if b - a == 1:
                self.receive(batch.packet(rows[a]))
                continue
            remote = int(enc[a])
            key: ConnKey = (dst0, port0, remote >> 16, remote & 0xFFFF)
            sock = self.sockets.get(key)
            if sock is None:
                for i in rows[a:b]:
                    self.receive(batch.packet(i))
                continue
            sock.handle_batch(batch.take(hit_idx[a:b]))

    def send_segment_batch(self, batch: PacketBatch) -> int:
        """Route a pre-built TCP train; returns frames accepted.

        Goodput accounting mirrors the scalar path exactly: each routed
        group reports how many of its leading frames the device queue
        accepted (queues take prefixes), and only those frames' payload
        bytes count — so batched TCP deliveries add to the victim's
        goodput columns once per packet, never once per train.
        """
        if len(batch) == 0:
            return 0

        def _account(sub: PacketBatch, taken: int) -> None:
            if taken:
                self.payload_bytes_sent += int(sub.payload_len[:taken].sum())

        return self.node.send_ipv4_batch(batch, on_accepted=_account)

    def send_segment(
        self,
        src_port: int,
        dst: Ipv4Address,
        dst_port: int,
        seq: int,
        ack: int,
        flags: TcpFlags,
        payload: bytes = b"",
        payload_len: int | None = None,
        app_data: object | None = None,
        provenance: Provenance | None = None,
        src: Ipv4Address | None = None,
    ) -> bool:
        """Build and route one TCP segment from this node."""
        header = TcpHeader(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq & 0xFFFFFFFF,
            ack=ack & 0xFFFFFFFF,
            flags=flags,
        )
        ip = Ipv4Header(
            src=src if src is not None else self.node.address,
            dst=dst,
            protocol=PROTO_TCP,
        )
        prov = provenance or self.default_provenance
        packet = Packet(
            ip=ip,
            tcp=header,
            payload=payload,
            payload_len=payload_len,
            app_data=app_data,
            provenance=prov if prov is not None else Provenance(),
        )
        accepted = self.node.send_ipv4(packet)
        if accepted:
            self.payload_bytes_sent += packet.data_len
        return accepted


def _seq_lt(a: int, b: int) -> bool:
    """Sequence-space a < b with 32-bit wraparound."""
    return ((a - b) & 0xFFFFFFFF) > 0x7FFFFFFF


def _seq_le(a: int, b: int) -> bool:
    return a == b or _seq_lt(a, b)
