"""CSMA (shared-bus Ethernet) channel and net devices.

Mirrors NS-3's ``CsmaChannel``/``CsmaNetDevice`` pair that DDoSim uses to
wire Docker ghost nodes together: one shared medium with a configurable
data rate and propagation delay, collision-free arbitration (devices wait
their turn in FIFO order, like NS-3's post-backoff winner), and per-device
drop-tail transmit queues.

The IDS taps the channel with a promiscuous probe registered via
:meth:`CsmaChannel.add_probe`, which observes every frame exactly once at
delivery time — the analogue of sniffing the TServer's switch port.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from repro import obs
from repro.sim.address import BROADCAST_MAC, Ipv4Address, MacAddress
from repro.sim.core import Simulator
from repro.sim.packet import EthernetHeader, Packet, PacketBatch
from repro.sim.queue import DropTailQueue
from repro.sim.units import parse_rate, parse_time

if TYPE_CHECKING:
    from repro.sim.node import Node

#: Probe callback: (packet, rx_time) for every frame delivered on the channel.
ProbeFn = Callable[[Packet, float], None]


class TrafficFilter:
    """Interface for a channel-tier ACL (upstream mitigation).

    :meth:`should_drop` is consulted once per frame at dequeue time;
    a filtered frame never occupies the medium — it died at the switch
    port, before the bottleneck link.
    """

    def should_drop(
        self, frame: Packet, sender: "CsmaNetDevice", now: float
    ) -> bool:  # pragma: no cover - interface default
        return False


class ChannelImpairment:
    """Interface a fault injector implements to impair frames in flight.

    :meth:`impair` is consulted once per frame as it wins the medium and
    returns ``(drop, extra_delay)``: dropped frames still occupy the wire
    for their serialization time (the sender saw them leave), and
    surviving frames are delivered ``extra_delay`` seconds late (jitter).
    """

    def impair(
        self, frame: Packet, sender: "CsmaNetDevice", now: float
    ) -> tuple[bool, float]:  # pragma: no cover - interface default
        return False, 0.0


class CsmaChannel:
    """A shared-medium channel serving attached devices in FIFO order."""

    def __init__(
        self,
        sim: Simulator,
        data_rate: str | float = "100Mbps",
        delay: str | float = "6.56us",
    ) -> None:
        self.sim = sim
        self.data_rate = parse_rate(data_rate)
        self.delay = parse_time(delay)
        self._devices: list[CsmaNetDevice] = []
        self._by_mac: dict[MacAddress, CsmaNetDevice] = {}
        self._promiscuous: list[CsmaNetDevice] = []
        self._busy = False
        self._waiting: list[CsmaNetDevice] = []
        self._probes: list[ProbeFn] = []
        self.frames_delivered = 0
        #: Optional fault injector consulted per frame (repro.faults).
        self.fault_injector: "ChannelImpairment | None" = None
        #: Optional channel-tier ACL (upstream mitigation filter).
        self.traffic_filter: "TrafficFilter | None" = None
        self.frames_impaired = 0
        self.frames_filtered = 0
        #: Conservation counters: every frame dequeued from a device queue
        #: is delivered, impaired, or still in flight (sanitizer invariant).
        self.frames_dequeued = 0
        self.frames_in_flight = 0
        #: ARP-substitute resolution cache (cleared on any topology change).
        self._resolve_cache: dict[Ipv4Address, MacAddress | None] = {}
        ctx = obs.current()
        self._obs_trains = ctx.registry.counter("channel.trains")
        self._obs_train_frames = ctx.registry.counter("channel.train_frames")
        if sim.sanitizer is not None:
            sim.sanitizer.register_channel("csma", self)

    def attach(self, device: "CsmaNetDevice") -> None:
        """Register ``device`` on the medium."""
        if device not in self._devices:
            self._devices.append(device)
        self._by_mac[device.mac] = device
        device.attached = True
        self._resolve_cache.clear()
        self.update_promiscuous(device)

    def detach(self, device: "CsmaNetDevice") -> None:
        """Remove ``device`` (device churn: an IoT node leaving the LAN)."""
        if device in self._devices:
            self._devices.remove(device)
            self._by_mac.pop(device.mac, None)
        if device in self._waiting:
            self._waiting.remove(device)
        if device in self._promiscuous:
            self._promiscuous.remove(device)
        device.attached = False
        self._resolve_cache.clear()
        device.queue.clear()

    def update_promiscuous(self, device: "CsmaNetDevice") -> None:
        """Sync the promiscuous-delivery registry with ``device``'s flag.

        Promiscuous attached devices see *every* delivered frame, not
        just broadcasts — the switch-port mirror an IDS tap relies on.
        Survives detach/re-attach cycles (container restarts) because
        :meth:`attach` calls back into this.
        """
        listed = device in self._promiscuous
        if device.promiscuous and device.attached and not listed:
            self._promiscuous.append(device)
        elif (not device.promiscuous or not device.attached) and listed:
            self._promiscuous.remove(device)

    def add_probe(self, probe: ProbeFn) -> None:
        """Attach a promiscuous observer called once per delivered frame."""
        self._probes.append(probe)

    def remove_probe(self, probe: ProbeFn) -> None:
        """Detach a previously-added observer (end of a capture phase)."""
        if probe in self._probes:
            self._probes.remove(probe)

    def resolve(self, address: Ipv4Address) -> MacAddress | None:
        """Map an IPv4 address to the MAC of the device that owns it.

        Substitutes for ARP: on a simulated LAN the channel can consult
        every attached node's interface table directly.  Results (hits
        *and* misses — spoofed flood sources probe the same dead address
        space repeatedly) are cached until the topology changes.
        """
        try:
            return self._resolve_cache[address]
        except KeyError:
            pass
        mac: MacAddress | None = None
        for device in self._devices:
            if device.node is not None and device.node.owns_address(address):
                mac = device.mac
                break
        self._resolve_cache[address] = mac
        return mac

    def invalidate_resolve_cache(self) -> None:
        """Forget cached resolutions (address added/moved on the LAN)."""
        self._resolve_cache.clear()

    def transmission_time(self, size_bytes: int) -> float:
        """Seconds needed to serialize ``size_bytes`` onto the medium."""
        return size_bytes * 8 / self.data_rate

    def request(self, device: "CsmaNetDevice") -> None:
        """A device with a non-empty queue asks for the medium."""
        if device not in self._waiting:
            self._waiting.append(device)
        self._serve()

    def set_fault_injector(self, injector: "ChannelImpairment | None") -> None:
        """Install (or clear) the per-frame impairment hook."""
        self.fault_injector = injector

    def set_traffic_filter(self, filter_: "TrafficFilter | None") -> None:
        """Install (or clear) the channel-tier ACL (upstream mitigation)."""
        self.traffic_filter = filter_

    def _serve(self) -> None:
        if self._busy:
            return
        while self._waiting:
            device = self._waiting.pop(0)
            # Trains need per-frame fault treatment the injector API can't
            # give them, so an installed injector forces the scalar path
            # (head batches are split one packet at a time).
            unit = device.queue.dequeue_unit(allow_batch=self.fault_injector is None)
            if unit is None:
                continue
            if isinstance(unit, PacketBatch):
                if self._serve_train(unit, device):
                    return
                continue
            frame = unit
            self.frames_dequeued += 1
            if self.traffic_filter is not None and self.traffic_filter.should_drop(
                frame, device, self.sim.now
            ):
                # ACL drop at dequeue: the frame never occupies the wire,
                # so the sender's remaining frames stay in contention.
                self.frames_filtered += 1
                if not device.queue.is_empty and device not in self._waiting:
                    self._waiting.append(device)
                continue
            self._busy = True
            tx_time = self.transmission_time(frame.size)
            drop, extra_delay = False, 0.0
            if self.fault_injector is not None:
                drop, extra_delay = self.fault_injector.impair(
                    frame, device, self.sim.now
                )
            if drop:
                self.frames_impaired += 1
            else:
                self.frames_in_flight += 1
                self.sim.schedule(
                    tx_time + self.delay + extra_delay, self._deliver, frame, device
                )
            self.sim.schedule(tx_time, self._release, device)
            return

    def _serve_train(self, batch: PacketBatch, device: "CsmaNetDevice") -> bool:
        """Transmit a whole batch back-to-back; True when the wire is taken.

        Release times are the exact cumulative sums the scalar path would
        produce frame by frame (``np.cumsum`` accumulates sequentially),
        and every frame's delivery instant is carried alongside the batch
        so probes timestamp records bit-identically to the scalar kernel.
        """
        n = len(batch)
        self.frames_dequeued += n
        filt = self.traffic_filter
        if filt is not None:
            now = self.sim.now
            should_drop_batch = getattr(filt, "should_drop_batch", None)
            if should_drop_batch is not None:
                mask = should_drop_batch(batch, device, now)
            else:
                mask = np.fromiter(
                    (
                        filt.should_drop(batch.packet(i), device, now)
                        for i in range(n)
                    ),
                    dtype=bool,
                    count=n,
                )
            dropped = 0 if mask is None else int(mask.sum())
            if dropped:
                self.frames_filtered += dropped
                if dropped == n:
                    if not device.queue.is_empty and device not in self._waiting:
                        self._waiting.append(device)
                    return False
                batch = batch.compress(~mask)
                n = len(batch)
        self._busy = True
        tx = batch.sizes * 8 / self.data_rate
        release_times = np.cumsum(np.concatenate(((self.sim.now,), tx)))
        deliveries = release_times[:-1] + (tx + self.delay)
        self.frames_in_flight += n
        self._obs_trains.inc()
        self._obs_train_frames.inc(n)
        self.sim.schedule_abs(
            float(deliveries[-1]), self._deliver_train, batch, deliveries, device
        )
        self.sim.schedule_abs(float(release_times[-1]), self._release, device)
        return True

    def _release(self, device: "CsmaNetDevice") -> None:
        self._busy = False
        if not device.queue.is_empty:
            self.request(device)
        else:
            self._serve()

    def _deliver(self, frame: Packet, sender: "CsmaNetDevice") -> None:
        self.frames_in_flight -= 1
        self.frames_delivered += 1
        for probe in self._probes:
            probe(frame, self.sim.now)
        assert frame.eth is not None
        if frame.eth.dst == BROADCAST_MAC:
            for device in list(self._devices):
                if device is not sender:
                    device.receive(frame)
            return
        target = self._by_mac.get(frame.eth.dst)
        if target is not None and target is not sender:
            target.receive(frame)
        for device in list(self._promiscuous):
            if device is not sender and device is not target:
                device.receive(frame)

    def _deliver_train(
        self,
        batch: PacketBatch,
        times: np.ndarray,
        sender: "CsmaNetDevice",
    ) -> None:
        """Deliver a whole train, handing probes exact per-frame instants."""
        n = len(batch)
        self.frames_in_flight -= n
        self.frames_delivered += n
        for probe in self._probes:
            observe = getattr(probe, "observe_batch", None)
            if observe is not None:
                observe(batch, times)
            else:
                for i in range(n):
                    probe(batch.packet(i), float(times[i]))
        if batch.dst_mac == BROADCAST_MAC:
            for device in list(self._devices):
                if device is not sender:
                    device.receive_batch(batch, times)
            return
        target = self._by_mac.get(batch.dst_mac)
        if target is not None and target is not sender:
            target.receive_batch(batch, times)
        for device in list(self._promiscuous):
            if device is not sender and device is not target:
                device.receive_batch(batch, times)


class CsmaNetDevice:
    """A network interface attaching one node to a CSMA channel."""

    def __init__(
        self,
        channel: CsmaChannel,
        mac: MacAddress,
        queue_capacity: int = 512,
    ) -> None:
        self.channel = channel
        self.mac = mac
        self.queue = DropTailQueue(queue_capacity)
        self.queue.bind_obs(f"txq:{mac}", lambda: channel.sim.now)
        self.node: "Node | None" = None
        self.promiscuous = False
        self.attached = False
        self.tx_count = 0
        self.rx_count = 0
        self._rx_callbacks: list[Callable[[Packet], None]] = []
        channel.attach(self)
        if channel.sim.sanitizer is not None:
            channel.sim.sanitizer.register_queue(f"txq:{mac}", self.queue)

    def add_rx_callback(self, callback: Callable[[Packet], None]) -> None:
        """Observe frames accepted by this device (after MAC filtering)."""
        self._rx_callbacks.append(callback)

    def remove_rx_callback(self, callback: Callable[[Packet], None]) -> None:
        """Detach a previously-registered observer (tap teardown)."""
        if callback in self._rx_callbacks:
            self._rx_callbacks.remove(callback)

    def set_promiscuous(self, enabled: bool) -> None:
        """Toggle promiscuous mode, keeping the channel registry in sync."""
        self.promiscuous = enabled
        self.channel.update_promiscuous(self)

    def send(self, packet: Packet, dst_mac: MacAddress) -> bool:
        """Frame ``packet`` and queue it for transmission.

        Returns False if the device is off the medium (churned away) or
        the transmit queue dropped the frame.
        """
        if not self.attached:
            return False
        frame = packet.with_eth(EthernetHeader(src=self.mac, dst=dst_mac))
        accepted = self.queue.enqueue(frame)
        if accepted:
            self.tx_count += 1
            self.channel.request(self)
        return accepted

    def send_batch(
        self,
        batch: PacketBatch,
        dst_mac: MacAddress,
        *,
        unresolved: bool = False,
    ) -> int:
        """Frame a whole batch and queue it as one train.

        Returns the number of frames accepted (the transmit queue splits
        batches that only partially fit).
        """
        if not self.attached or len(batch) == 0:
            return 0
        framed = batch.with_macs(self.mac, dst_mac, unresolved=unresolved)
        accepted = self.queue.enqueue_batch(framed)
        if accepted:
            self.tx_count += accepted
            self.channel.request(self)
        return accepted

    def receive(self, frame: Packet) -> None:
        """Channel delivers a frame; filter by MAC unless promiscuous."""
        assert frame.eth is not None
        is_mine = frame.eth.dst in (self.mac, BROADCAST_MAC)
        if not is_mine and not self.promiscuous:
            return
        self.rx_count += 1
        for callback in self._rx_callbacks:
            callback(frame)
        if is_mine and self.node is not None:
            self.node.receive(frame, self)

    def receive_batch(self, batch: PacketBatch, times: np.ndarray) -> None:
        """Channel delivers a train; filter by MAC unless promiscuous."""
        is_mine = batch.dst_mac in (self.mac, BROADCAST_MAC)
        if not is_mine and not self.promiscuous:
            return
        n = len(batch)
        if n == 0:
            return
        self.rx_count += n
        for callback in self._rx_callbacks:
            observe = getattr(callback, "observe_batch", None)
            if observe is not None:
                observe(batch, times)
            else:
                for i in range(n):
                    callback(batch.packet(i))
        if is_mine and self.node is not None:
            self.node.receive_batch(batch, self)

    def detach(self) -> None:
        """Leave the channel (device churn)."""
        self.channel.detach(self)
