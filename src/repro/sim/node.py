"""Simulated hosts: a node owns net devices, an IPv4 stack, and transports.

A :class:`Node` is the simulation-side anchor that a container's tap
bridge grafts onto (NS-3 calls these "ghost nodes").  It routes outbound
packets to the right interface, resolves next-hop MACs through the
channel, and demultiplexes inbound packets to its TCP and UDP stacks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.address import ANY_ADDRESS, Ipv4Address, Ipv4Network, MacAddress
from repro.sim.channel import CsmaChannel, CsmaNetDevice
from repro.sim.core import Simulator
from repro.sim.packet import PROTO_TCP, PROTO_UDP, Packet


class NetworkError(RuntimeError):
    """Raised for unroutable destinations and similar stack failures."""


@dataclass
class Interface:
    """An IPv4 address bound to a net device on a subnet."""

    device: CsmaNetDevice
    address: Ipv4Address
    network: Ipv4Network


class Node:
    """A simulated host with interfaces and TCP/UDP stacks."""

    def __init__(self, sim: Simulator, name: str = "node") -> None:
        self.sim = sim
        self.name = name
        self.interfaces: list[Interface] = []
        self.default_gateway: Ipv4Address | None = None
        #: Routers forward packets not addressed to them between their
        #: interfaces (with TTL decrement); hosts silently drop them.
        self.is_router = False
        self.packets_sent = 0
        self.packets_received = 0
        self.packets_forwarded = 0
        self.packets_unroutable = 0
        self.ttl_expired = 0
        # Imported lazily to avoid a circular import at module load.
        from repro.sim.tcp import TcpStack
        from repro.sim.udp import UdpStack

        self.tcp = TcpStack(self)
        self.udp = UdpStack(self)

    def __repr__(self) -> str:
        addrs = ", ".join(str(iface.address) for iface in self.interfaces)
        return f"Node({self.name!r}, [{addrs}])"

    # ------------------------------------------------------------------
    # Interface management

    def add_interface(
        self,
        device: CsmaNetDevice,
        address: Ipv4Address,
        network: Ipv4Network,
    ) -> Interface:
        """Bind ``address`` (within ``network``) to ``device``."""
        device.node = self
        interface = Interface(device, address, network)
        self.interfaces.append(interface)
        return interface

    def owns_address(self, address: Ipv4Address) -> bool:
        """Whether any interface holds ``address`` (used for ARP-free resolve)."""
        return any(iface.address == address for iface in self.interfaces)

    @property
    def address(self) -> Ipv4Address:
        """Primary (first-interface) address; convenience for single-homed hosts."""
        if not self.interfaces:
            raise NetworkError(f"{self.name} has no interfaces")
        return self.interfaces[0].address

    def interface_for(self, destination: Ipv4Address) -> Interface:
        """Pick the outbound interface for ``destination`` (longest match,
        then default route via the first interface)."""
        best: Interface | None = None
        for iface in self.interfaces:
            if iface.network.contains(destination):
                if best is None or iface.network.prefix_len > best.network.prefix_len:
                    best = iface
        if best is not None:
            return best
        if self.default_gateway is not None and self.interfaces:
            return self.interfaces[0]
        raise NetworkError(f"{self.name}: no route to {destination}")

    # ------------------------------------------------------------------
    # Packet I/O

    def send_ipv4(self, packet: Packet) -> bool:
        """Route and transmit an IPv4 packet built by a transport stack.

        Unroutable destinations (e.g. SYN-ACK replies to spoofed flood
        sources) are counted and dropped, as a host without a default
        route would.
        """
        assert packet.ip is not None
        try:
            iface = self.interface_for(packet.ip.dst)
        except NetworkError:
            self.packets_unroutable += 1
            return False
        next_hop = packet.ip.dst
        if not iface.network.contains(next_hop) and self.default_gateway is not None:
            next_hop = self.default_gateway
        if next_hop == iface.network.broadcast:
            from repro.sim.address import BROADCAST_MAC

            dst_mac: MacAddress | None = BROADCAST_MAC
        else:
            dst_mac = iface.device.channel.resolve(next_hop)
        if dst_mac is None:
            # Unresolvable destination: the frame still occupies the wire in
            # a real scan (switches flood unknown unicast), so transmit it to
            # nobody rather than silently dropping — scanners probing dark
            # address space must still generate observable traffic.
            from repro.sim.address import BROADCAST_MAC

            dst_mac = BROADCAST_MAC
            packet = _mark_unresolved(packet)
        self.packets_sent += 1
        return iface.device.send(packet, dst_mac)

    def receive(self, frame: Packet, device: CsmaNetDevice) -> None:
        """Inbound frame from a device; demux to the transports.

        Routers forward packets addressed elsewhere; hosts drop them.
        """
        if frame.ip is None:
            return
        if getattr(frame, "app_data", None) == "__unresolved__":
            return
        dst = frame.ip.dst
        local = self.owns_address(dst)
        broadcast = any(
            dst in (iface.network.broadcast, ANY_ADDRESS) for iface in self.interfaces
        )
        if not local and not broadcast:
            if self.is_router:
                self._forward(frame)
            return
        self.packets_received += 1
        if frame.ip.protocol == PROTO_TCP and frame.tcp is not None:
            self.tcp.receive(frame)
        elif frame.ip.protocol == PROTO_UDP and frame.udp is not None:
            self.udp.receive(frame)

    def _forward(self, frame: Packet) -> None:
        """Route a transit packet out the next-hop interface."""
        assert frame.ip is not None
        if frame.ip.ttl <= 1:
            self.ttl_expired += 1
            return
        from dataclasses import replace

        decremented = replace(
            frame, ip=replace(frame.ip, ttl=frame.ip.ttl - 1), eth=None
        )
        self.packets_forwarded += 1
        self.send_ipv4(decremented)


def _mark_unresolved(packet: Packet) -> Packet:
    """Tag a frame destined to a dead address so no stack consumes it."""
    from dataclasses import replace

    return replace(packet, app_data="__unresolved__")


def connect_to_lan(
    node: Node,
    channel: CsmaChannel,
    network: Ipv4Network,
    mac: MacAddress,
    address: Ipv4Address | None = None,
    queue_capacity: int = 512,
) -> Interface:
    """Create a device on ``channel`` and bind the next free subnet address."""
    device = CsmaNetDevice(channel, mac, queue_capacity=queue_capacity)
    addr = address if address is not None else network.allocate()
    return node.add_interface(device, addr, network)
