"""Simulated hosts: a node owns net devices, an IPv4 stack, and transports.

A :class:`Node` is the simulation-side anchor that a container's tap
bridge grafts onto (NS-3 calls these "ghost nodes").  It routes outbound
packets to the right interface, resolves next-hop MACs through the
channel, and demultiplexes inbound packets to its TCP and UDP stacks.

Routing is longest-prefix over connected interfaces, then static routes
(:meth:`Node.add_route` — how hosts on a hierarchical topology's backbone
reach leaf segments behind routers), then the default gateway.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.address import ANY_ADDRESS, Ipv4Address, Ipv4Network, MacAddress
from repro.sim.channel import CsmaChannel, CsmaNetDevice
from repro.sim.core import Simulator
from repro.sim.packet import (
    PROTO_TCP,
    PROTO_UDP,
    UNRESOLVED_MARKER,
    Packet,
    PacketBatch,
)


class NetworkError(RuntimeError):
    """Raised for unroutable destinations and similar stack failures."""


@dataclass
class Interface:
    """An IPv4 address bound to a net device on a subnet."""

    device: CsmaNetDevice
    address: Ipv4Address
    network: Ipv4Network


@dataclass(frozen=True)
class StaticRoute:
    """``network``-destined traffic goes via the ``via`` next hop."""

    network: Ipv4Network
    via: Ipv4Address


class Node:
    """A simulated host with interfaces and TCP/UDP stacks."""

    def __init__(self, sim: Simulator, name: str = "node") -> None:
        self.sim = sim
        self.name = name
        self.interfaces: list[Interface] = []
        self.default_gateway: Ipv4Address | None = None
        self.routes: list[StaticRoute] = []
        #: Routers forward packets not addressed to them between their
        #: interfaces (with TTL decrement); hosts silently drop them.
        self.is_router = False
        self.packets_sent = 0
        self.packets_received = 0
        self.packets_forwarded = 0
        self.packets_unroutable = 0
        self.ttl_expired = 0
        # Imported lazily to avoid a circular import at module load.
        from repro.sim.tcp import TcpStack
        from repro.sim.udp import UdpStack

        self.tcp = TcpStack(self)
        self.udp = UdpStack(self)

    def __repr__(self) -> str:
        addrs = ", ".join(str(iface.address) for iface in self.interfaces)
        return f"Node({self.name!r}, [{addrs}])"

    # ------------------------------------------------------------------
    # Interface management

    def add_interface(
        self,
        device: CsmaNetDevice,
        address: Ipv4Address,
        network: Ipv4Network,
    ) -> Interface:
        """Bind ``address`` (within ``network``) to ``device``."""
        device.node = self
        interface = Interface(device, address, network)
        self.interfaces.append(interface)
        # The channel may have cached a negative resolution for this
        # address before it existed.
        device.channel.invalidate_resolve_cache()
        return interface

    def add_route(self, network: Ipv4Network, via: Ipv4Address) -> None:
        """Install a static route: ``network`` is reachable via ``via``.

        ``via`` must itself be reachable through a connected interface.
        """
        self.routes.append(StaticRoute(network, via))
        self.routes.sort(key=lambda r: -r.network.prefix_len)

    def owns_address(self, address: Ipv4Address) -> bool:
        """Whether any interface holds ``address`` (used for ARP-free resolve)."""
        return any(iface.address == address for iface in self.interfaces)

    @property
    def address(self) -> Ipv4Address:
        """Primary (first-interface) address; convenience for single-homed hosts."""
        if not self.interfaces:
            raise NetworkError(f"{self.name} has no interfaces")
        return self.interfaces[0].address

    def interface_for(self, destination: Ipv4Address) -> Interface:
        """Pick the outbound interface for ``destination`` (longest match,
        then static routes, then default route via the first interface)."""
        return self.route_for(destination)[0]

    def route_for(self, destination: Ipv4Address) -> tuple[Interface, Ipv4Address]:
        """Resolve ``destination`` to ``(interface, next_hop)``."""
        best: Interface | None = None
        for iface in self.interfaces:
            if iface.network.contains(destination):
                if best is None or iface.network.prefix_len > best.network.prefix_len:
                    best = iface
        if best is not None:
            return best, destination
        for route in self.routes:  # kept sorted longest-prefix first
            if route.network.contains(destination):
                return self._interface_toward(route.via), route.via
        if self.default_gateway is not None and self.interfaces:
            return self.interfaces[0], self.default_gateway
        raise NetworkError(f"{self.name}: no route to {destination}")

    def _interface_toward(self, next_hop: Ipv4Address) -> Interface:
        for iface in self.interfaces:
            if iface.network.contains(next_hop):
                return iface
        raise NetworkError(f"{self.name}: next hop {next_hop} is not on-link")

    # ------------------------------------------------------------------
    # Packet I/O

    def send_ipv4(self, packet: Packet) -> bool:
        """Route and transmit an IPv4 packet built by a transport stack.

        Unroutable destinations (e.g. SYN-ACK replies to spoofed flood
        sources) are counted and dropped, as a host without a default
        route would.
        """
        assert packet.ip is not None
        try:
            iface, next_hop = self.route_for(packet.ip.dst)
        except NetworkError:
            self.packets_unroutable += 1
            return False
        if next_hop == iface.network.broadcast:
            from repro.sim.address import BROADCAST_MAC

            dst_mac: MacAddress | None = BROADCAST_MAC
        else:
            dst_mac = iface.device.channel.resolve(next_hop)
        if dst_mac is None:
            # Unresolvable destination: the frame still occupies the wire in
            # a real scan (switches flood unknown unicast), so transmit it to
            # nobody rather than silently dropping — scanners probing dark
            # address space must still generate observable traffic.
            from repro.sim.address import BROADCAST_MAC

            dst_mac = BROADCAST_MAC
            packet = _mark_unresolved(packet)
        self.packets_sent += 1
        return iface.device.send(packet, dst_mac)

    def send_ipv4_batch(self, batch: PacketBatch, on_accepted=None) -> int:
        """Route and transmit a whole batch; returns frames accepted.

        The batch is partitioned by ``(interface, next_hop)`` — for flood
        traffic every packet shares one destination, so the common case is
        a single train.  Unroutable rows are counted and dropped exactly
        as the scalar path does.

        ``on_accepted(sub, taken)`` (optional) fires once per routed
        group with the sub-batch and how many of its leading frames the
        device queue accepted — queues take prefixes, so a caller that
        needs exact per-packet accounting (TCP goodput) can sum the
        accepted head of each group rather than guessing from the total.
        """
        n = len(batch)
        if n == 0:
            return 0
        groups = self._route_batch(batch)
        accepted = 0
        for sub, iface, next_hop in groups:
            if iface is None:
                self.packets_unroutable += len(sub)
                continue
            unresolved = False
            if next_hop == iface.network.broadcast:
                from repro.sim.address import BROADCAST_MAC

                dst_mac: MacAddress | None = BROADCAST_MAC
            else:
                dst_mac = iface.device.channel.resolve(next_hop)
            if dst_mac is None:
                from repro.sim.address import BROADCAST_MAC

                dst_mac = BROADCAST_MAC
                unresolved = True
            self.packets_sent += len(sub)
            taken = iface.device.send_batch(sub, dst_mac, unresolved=unresolved)
            accepted += taken
            if on_accepted is not None:
                on_accepted(sub, taken)
        return accepted

    def _route_batch(
        self, batch: PacketBatch
    ) -> list[tuple[PacketBatch, Interface | None, Ipv4Address]]:
        """Partition a batch into per-``(iface, next_hop)`` sub-batches.

        Fast path: a single-destination batch routes once.  Otherwise
        destinations are grouped with ``np.unique`` and each unique
        destination routed scalar-side (destination counts are small:
        flood targets, not flood sources).
        """
        dst = batch.dst_ip
        first = int(dst[0])
        if bool((dst == first).all()):
            try:
                iface, next_hop = self.route_for(Ipv4Address(first))
            except NetworkError:
                return [(batch, None, Ipv4Address(first))]
            return [(batch, iface, next_hop)]
        groups: list[tuple[PacketBatch, Interface | None, Ipv4Address]] = []
        uniques, inverse = np.unique(dst, return_inverse=True)
        for u, value in enumerate(uniques.tolist()):
            sub = batch.compress(inverse == u)
            address = Ipv4Address(int(value))
            try:
                iface, next_hop = self.route_for(address)
            except NetworkError:
                groups.append((sub, None, address))
                continue
            groups.append((sub, iface, next_hop))
        return groups

    def receive(self, frame: Packet, device: CsmaNetDevice) -> None:
        """Inbound frame from a device; demux to the transports.

        Routers forward packets addressed elsewhere; hosts drop them.
        """
        if frame.ip is None:
            return
        if getattr(frame, "app_data", None) == UNRESOLVED_MARKER:
            return
        dst = frame.ip.dst
        local = self.owns_address(dst)
        broadcast = any(
            dst in (iface.network.broadcast, ANY_ADDRESS) for iface in self.interfaces
        )
        if not local and not broadcast:
            if self.is_router:
                self._forward(frame)
            return
        self.packets_received += 1
        if frame.ip.protocol == PROTO_TCP and frame.tcp is not None:
            self.tcp.receive(frame)
        elif frame.ip.protocol == PROTO_UDP and frame.udp is not None:
            self.udp.receive(frame)

    def receive_batch(self, batch: PacketBatch, device: CsmaNetDevice) -> None:
        """Inbound train from a device; demux or forward in bulk.

        If something interposed on the scalar ``receive`` (a mitigation
        filter monkeypatching this node) without also providing a batch
        hook, fall back to per-packet delivery so the interposer keeps
        seeing every frame.
        """
        if batch.unresolved or len(batch) == 0:
            return
        if "receive" in self.__dict__ and "receive_batch" not in self.__dict__:
            for packet in batch.packets():
                self.receive(packet, device)
            return
        dst = batch.dst_ip
        local_values = [iface.address.value for iface in self.interfaces]
        bcast_values = [iface.network.broadcast.value for iface in self.interfaces]
        bcast_values.append(ANY_ADDRESS.value)
        dst0 = int(dst[0])
        if int(dst[-1]) == dst0 and bool((dst == dst0).all()):
            # Uniform destination — the shape of every socket-to-socket
            # train — needs two list membership tests, not np.isin.
            if dst0 in local_values or dst0 in bcast_values:
                sub = batch
            else:
                if self.is_router:
                    self._forward_batch(batch)
                return
        else:
            mine = np.isin(dst, local_values) | np.isin(dst, bcast_values)
            if not mine.any():
                if self.is_router:
                    self._forward_batch(batch)
                return
            if mine.all():
                sub = batch
            else:
                if self.is_router:
                    self._forward_batch(batch.compress(~mine))
                sub = batch.compress(mine)
        self.packets_received += len(sub)
        if batch.protocol == PROTO_TCP:
            self.tcp.receive_batch(sub)
        elif batch.protocol == PROTO_UDP:
            self.udp.receive_batch(sub)

    def _forward(self, frame: Packet) -> None:
        """Route a transit packet out the next-hop interface."""
        assert frame.ip is not None
        if frame.ip.ttl <= 1:
            self.ttl_expired += 1
            return
        from dataclasses import replace

        decremented = replace(
            frame, ip=replace(frame.ip, ttl=frame.ip.ttl - 1), eth=None
        )
        self.packets_forwarded += 1
        self.send_ipv4(decremented)

    def _forward_batch(self, batch: PacketBatch) -> None:
        """Route a transit train out the next-hop interface (TTL - 1)."""
        if len(batch) == 0:
            return
        if batch.ttl <= 1:
            self.ttl_expired += len(batch)
            return
        self.packets_forwarded += len(batch)
        self.send_ipv4_batch(batch.with_ttl(batch.ttl - 1))


def _mark_unresolved(packet: Packet) -> Packet:
    """Tag a frame destined to a dead address so no stack consumes it."""
    from dataclasses import replace

    return replace(packet, app_data=UNRESOLVED_MARKER)


def connect_to_lan(
    node: Node,
    channel: CsmaChannel,
    network: Ipv4Network,
    mac: MacAddress,
    address: Ipv4Address | None = None,
    queue_capacity: int = 512,
) -> Interface:
    """Create a device on ``channel`` and bind the next free subnet address."""
    device = CsmaNetDevice(channel, mac, queue_capacity=queue_capacity)
    addr = address if address is not None else network.allocate()
    return node.add_interface(device, addr, network)
