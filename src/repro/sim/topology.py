"""Topology helpers: assemble LANs the way the testbed's scripts do.

DDoShield-IoT's network is a single CSMA segment joining the Attacker,
the Devs, the TServer, and the IDS tap.  :class:`CsmaLan` wraps channel
creation, MAC/IP assignment, and node attachment behind one call per
host, mirroring NS-3's ``CsmaHelper`` + ``Ipv4AddressHelper`` pair.
"""

from __future__ import annotations

from repro.sim.address import Ipv4Address, Ipv4Network, MacAllocator
from repro.sim.channel import CsmaChannel
from repro.sim.core import Simulator
from repro.sim.node import Node, connect_to_lan
from repro.sim.tracing import PacketProbe


class CsmaLan:
    """A CSMA segment with automatic MAC and IPv4 assignment."""

    def __init__(
        self,
        sim: Simulator,
        subnet: str = "10.0.0.0",
        prefix_len: int = 24,
        data_rate: str | float = "100Mbps",
        delay: str | float = "6.56us",
    ) -> None:
        self.sim = sim
        self.channel = CsmaChannel(sim, data_rate=data_rate, delay=delay)
        self.network = Ipv4Network(subnet, prefix_len)
        self.macs = MacAllocator()
        self.nodes: list[Node] = []

    def add_host(
        self,
        name: str,
        address: Ipv4Address | None = None,
        queue_capacity: int = 512,
    ) -> Node:
        """Create a node, attach it to the LAN, and assign an address."""
        node = Node(self.sim, name)
        connect_to_lan(
            node,
            self.channel,
            self.network,
            self.macs.allocate(),
            address=address,
            queue_capacity=queue_capacity,
        )
        self.nodes.append(node)
        return node

    def attach(self, node: Node, queue_capacity: int = 512) -> None:
        """Attach an existing node (e.g. a container ghost node)."""
        connect_to_lan(
            node,
            self.channel,
            self.network,
            self.macs.allocate(),
            queue_capacity=queue_capacity,
        )
        self.nodes.append(node)

    def add_probe(self, probe: PacketProbe) -> PacketProbe:
        """Install a promiscuous capture tap on the segment."""
        self.channel.add_probe(probe)
        return probe

    def remove_probe(self, probe: PacketProbe) -> None:
        """Detach a tap added with :meth:`add_probe` (symmetry restored)."""
        self.channel.remove_probe(probe)

    def remove_host(self, node: Node) -> None:
        """Detach a node's devices from the LAN (device churn)."""
        for iface in node.interfaces:
            iface.device.detach()
        if node in self.nodes:
            self.nodes.remove(node)


class Router:
    """A node forwarding between several LANs (an IoT gateway).

    The testbed's single-segment topology matches the paper; this helper
    supports the multi-segment deployments its threats-to-validity
    section calls for (e.g. an IoT LAN behind a gateway with the TServer
    on a separate server LAN)::

        router = Router(sim, "gw")
        router.join(iot_lan)
        router.join(server_lan)
        for host in iot_lan.nodes:
            host.default_gateway = router.address_on(iot_lan)
    """

    def __init__(self, sim: Simulator, name: str = "router") -> None:
        self.node = Node(sim, name)
        self.node.is_router = True
        self._lan_addresses: dict[int, Ipv4Address] = {}

    def join(self, lan: CsmaLan, queue_capacity: int = 512) -> Ipv4Address:
        """Attach an interface on ``lan``; returns the router's address there."""
        iface = connect_to_lan(
            self.node,
            lan.channel,
            lan.network,
            lan.macs.allocate(),
            queue_capacity=queue_capacity,
        )
        lan.nodes.append(self.node)
        self._lan_addresses[id(lan)] = iface.address
        return iface.address

    def address_on(self, lan: CsmaLan) -> Ipv4Address:
        """The router's address on ``lan`` (for hosts' default gateway)."""
        try:
            return self._lan_addresses[id(lan)]
        except KeyError:
            raise ValueError(f"router {self.node.name} has not joined that LAN") from None


def set_default_gateway(lan: CsmaLan, router: Router) -> None:
    """Point every current host on ``lan`` at ``router``."""
    gateway = router.address_on(lan)
    for node in lan.nodes:
        if node is not router.node:
            node.default_gateway = gateway


class SegmentedLan:
    """A hierarchical topology: leaf CSMA segments routed to a backbone.

    Urban-scale deployments do not put thousands of devices on one
    collision domain — they sit behind access gateways.  Here device
    nodes (names matching ``leaf_prefix``, with the tap bridge's
    ``ghost-`` prefix ignored) are packed ``devices_per_segment`` to a
    leaf :class:`CsmaLan`, each leaf joined to the backbone by a
    :class:`Router`; servers, the attacker, and the IDS tap stay on the
    backbone segment.  Routing is complete: leaf hosts default-route to
    their gateway, every backbone resident (hosts *and* other gateways)
    gets a static route to each leaf subnet, so leaf↔backbone and
    leaf↔leaf flows both work.

    The class mirrors :class:`CsmaLan`'s surface (``channel``,
    ``attach``, ``add_host``, ``add_probe``, ``remove_host``, ``nodes``)
    so the orchestrator and tap bridge work unchanged.  ``channel`` and
    the probe helpers refer to the *backbone* segment: every
    device↔server or device↔attacker flow crosses it, so a backbone tap
    sees each such packet exactly once — the same per-packet capture a
    flat LAN's promiscuous tap produces — while intra-leaf chatter stays
    local, as on a real access network.
    """

    def __init__(
        self,
        sim: Simulator,
        subnet: str = "10.0.0.0",
        prefix_len: int = 24,
        data_rate: str | float = "100Mbps",
        delay: str | float = "6.56us",
        devices_per_segment: int = 64,
        leaf_prefix: str = "dev",
    ) -> None:
        if devices_per_segment < 1:
            raise ValueError(
                f"devices_per_segment must be positive, got {devices_per_segment}"
            )
        self.sim = sim
        self.backbone = CsmaLan(
            sim, subnet=subnet, prefix_len=prefix_len, data_rate=data_rate, delay=delay
        )
        self.data_rate = data_rate
        self.delay = delay
        self.devices_per_segment = devices_per_segment
        self.leaf_prefix = leaf_prefix
        self.segments: list[CsmaLan] = []
        self.routers: list[Router] = []
        self.nodes: list[Node] = []
        self._router_addrs: list[Ipv4Address] = []
        self._segment_fill = 0

    @property
    def channel(self):
        """The backbone channel (probes, traffic filters, fault injection)."""
        return self.backbone.channel

    @property
    def network(self) -> Ipv4Network:
        """The backbone subnet."""
        return self.backbone.network

    # ------------------------------------------------------------------
    # Placement

    def _is_leaf_name(self, name: str) -> bool:
        bare = name[6:] if name.startswith("ghost-") else name
        return bare.startswith(self.leaf_prefix)

    def _leaf_network_base(self, index: int) -> Ipv4Address:
        size = 1 << (32 - self.backbone.network.prefix_len)
        return Ipv4Address(self.backbone.network.network.value + (index + 1) * size)

    def _new_segment(self) -> tuple[CsmaLan, Router]:
        index = len(self.segments)
        lan = CsmaLan(
            self.sim,
            subnet=str(self._leaf_network_base(index)),
            prefix_len=self.backbone.network.prefix_len,
            data_rate=self.data_rate,
            delay=self.delay,
        )
        router = Router(self.sim, name=f"gw-{index}")
        backbone_addr = router.join(self.backbone)
        router.join(lan)
        # The new gateway learns every existing leaf; everything already
        # on the backbone (hosts and earlier gateways) learns the new one.
        for prev_lan, prev_addr in zip(self.segments, self._router_addrs):
            router.node.add_route(prev_lan.network, prev_addr)
        for node in self.backbone.nodes:
            if node is not router.node:
                node.add_route(lan.network, backbone_addr)
        self.segments.append(lan)
        self.routers.append(router)
        self._router_addrs.append(backbone_addr)
        self._segment_fill = 0
        return lan, router

    def _attach_backbone(self, node: Node) -> None:
        for lan, addr in zip(self.segments, self._router_addrs):
            node.add_route(lan.network, addr)
        self.nodes.append(node)

    def _attach_leaf(self, node: Node, queue_capacity: int) -> None:
        if not self.segments or self._segment_fill >= self.devices_per_segment:
            self._new_segment()
        lan, router = self.segments[-1], self.routers[-1]
        lan.attach(node, queue_capacity=queue_capacity)
        node.default_gateway = router.address_on(lan)
        self._segment_fill += 1
        self.nodes.append(node)

    # ------------------------------------------------------------------
    # CsmaLan surface

    def add_host(
        self,
        name: str,
        address: Ipv4Address | None = None,
        queue_capacity: int = 512,
    ) -> Node:
        """Create a node and place it (backbone or current leaf, by name)."""
        if self._is_leaf_name(name):
            node = Node(self.sim, name)
            self._attach_leaf(node, queue_capacity)
            return node
        node = self.backbone.add_host(
            name, address=address, queue_capacity=queue_capacity
        )
        self._attach_backbone(node)
        return node

    def attach(self, node: Node, queue_capacity: int = 512) -> None:
        """Attach an existing node (e.g. a container ghost node)."""
        if self._is_leaf_name(node.name):
            self._attach_leaf(node, queue_capacity)
            return
        self.backbone.attach(node, queue_capacity=queue_capacity)
        self._attach_backbone(node)

    def add_probe(self, probe: PacketProbe) -> PacketProbe:
        """Install a promiscuous capture tap on the backbone segment."""
        self.backbone.add_probe(probe)
        return probe

    def remove_probe(self, probe: PacketProbe) -> None:
        self.backbone.remove_probe(probe)

    def remove_host(self, node: Node) -> None:
        """Detach a node's devices from whichever segment holds it."""
        for lan in (self.backbone, *self.segments):
            if node in lan.nodes:
                lan.remove_host(node)
                break
        else:
            for iface in node.interfaces:
                iface.device.detach()
        if node in self.nodes:
            self.nodes.remove(node)

    def segment_of(self, node: Node) -> CsmaLan | None:
        """The leaf segment holding ``node`` (None for backbone residents)."""
        for lan in self.segments:
            if node in lan.nodes:
                return lan
        return None
