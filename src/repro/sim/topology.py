"""Topology helpers: assemble LANs the way the testbed's scripts do.

DDoShield-IoT's network is a single CSMA segment joining the Attacker,
the Devs, the TServer, and the IDS tap.  :class:`CsmaLan` wraps channel
creation, MAC/IP assignment, and node attachment behind one call per
host, mirroring NS-3's ``CsmaHelper`` + ``Ipv4AddressHelper`` pair.
"""

from __future__ import annotations

from repro.sim.address import Ipv4Address, Ipv4Network, MacAllocator
from repro.sim.channel import CsmaChannel
from repro.sim.core import Simulator
from repro.sim.node import Node, connect_to_lan
from repro.sim.tracing import PacketProbe


class CsmaLan:
    """A CSMA segment with automatic MAC and IPv4 assignment."""

    def __init__(
        self,
        sim: Simulator,
        subnet: str = "10.0.0.0",
        prefix_len: int = 24,
        data_rate: str | float = "100Mbps",
        delay: str | float = "6.56us",
    ) -> None:
        self.sim = sim
        self.channel = CsmaChannel(sim, data_rate=data_rate, delay=delay)
        self.network = Ipv4Network(subnet, prefix_len)
        self.macs = MacAllocator()
        self.nodes: list[Node] = []

    def add_host(
        self,
        name: str,
        address: Ipv4Address | None = None,
        queue_capacity: int = 512,
    ) -> Node:
        """Create a node, attach it to the LAN, and assign an address."""
        node = Node(self.sim, name)
        connect_to_lan(
            node,
            self.channel,
            self.network,
            self.macs.allocate(),
            address=address,
            queue_capacity=queue_capacity,
        )
        self.nodes.append(node)
        return node

    def attach(self, node: Node, queue_capacity: int = 512) -> None:
        """Attach an existing node (e.g. a container ghost node)."""
        connect_to_lan(
            node,
            self.channel,
            self.network,
            self.macs.allocate(),
            queue_capacity=queue_capacity,
        )
        self.nodes.append(node)

    def add_probe(self, probe: PacketProbe) -> PacketProbe:
        """Install a promiscuous capture tap on the segment."""
        self.channel.add_probe(probe)
        return probe

    def remove_probe(self, probe: PacketProbe) -> None:
        """Detach a tap added with :meth:`add_probe` (symmetry restored)."""
        self.channel.remove_probe(probe)

    def remove_host(self, node: Node) -> None:
        """Detach a node's devices from the LAN (device churn)."""
        for iface in node.interfaces:
            iface.device.detach()
        if node in self.nodes:
            self.nodes.remove(node)


class Router:
    """A node forwarding between several LANs (an IoT gateway).

    The testbed's single-segment topology matches the paper; this helper
    supports the multi-segment deployments its threats-to-validity
    section calls for (e.g. an IoT LAN behind a gateway with the TServer
    on a separate server LAN)::

        router = Router(sim, "gw")
        router.join(iot_lan)
        router.join(server_lan)
        for host in iot_lan.nodes:
            host.default_gateway = router.address_on(iot_lan)
    """

    def __init__(self, sim: Simulator, name: str = "router") -> None:
        self.node = Node(sim, name)
        self.node.is_router = True
        self._lan_addresses: dict[int, Ipv4Address] = {}

    def join(self, lan: CsmaLan, queue_capacity: int = 512) -> Ipv4Address:
        """Attach an interface on ``lan``; returns the router's address there."""
        iface = connect_to_lan(
            self.node,
            lan.channel,
            lan.network,
            lan.macs.allocate(),
            queue_capacity=queue_capacity,
        )
        lan.nodes.append(self.node)
        self._lan_addresses[id(lan)] = iface.address
        return iface.address

    def address_on(self, lan: CsmaLan) -> Ipv4Address:
        """The router's address on ``lan`` (for hosts' default gateway)."""
        try:
            return self._lan_addresses[id(lan)]
        except KeyError:
            raise ValueError(f"router {self.node.name} has not joined that LAN") from None


def set_default_gateway(lan: CsmaLan, router: Router) -> None:
    """Point every current host on ``lan`` at ``router``."""
    gateway = router.address_on(lan)
    for node in lan.nodes:
        if node is not router.node:
            node.default_gateway = gateway
