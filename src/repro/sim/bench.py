"""Event-kernel benchmark: scalar packets vs batched trains at scale.

Builds the same flood scene twice per node count — ``n`` attacker nodes
SYN-flooding one victim, same seeds — once with scalar per-packet
emission and once with :class:`~repro.sim.packet.PacketBatch` trains,
and measures wall-clock, executed events, and delivered packets for
each.  Before any timing is reported the two runs are checked for
*equivalence*, because a fast kernel that changes detection outcomes is
not an optimisation.  The guarantee is tiered by load:

* emission is exact — per-seed packet counts and payload draws are
  identical (hard assert);
* per-window detection verdicts are identical (hard assert);
* delivered records are bit-identical below queue saturation; at loads
  that overflow transmit queues the drop *boundary* may shift by a few
  frames (a 200-frame train arrives back-to-back where scalar frames
  interleave — the same burst-structure difference real NIC batching
  introduces), so bit-identity is reported, not asserted.

Node counts default to the urban-IoT sweep {16, 64, 256, 1024}; at the
top end the batched kernel must clear the issue's ≥5× packets/s bar.
Results are written as JSON (``BENCH_sim.json``) so the kernel's perf
trajectory is recorded run over run.

Run via ``python benchmarks/bench_sim.py`` or ``ddoshield bench-sim``.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.botnet.attacks import make_attack
from repro.sim.core import Simulator
from repro.sim.topology import CsmaLan, SegmentedLan
from repro.sim.tracing import PacketProbe

#: Per-window malicious share above which a window is ruled an attack
#: window (the verdict the scalar/batch equivalence check compares).
VERDICT_THRESHOLD = 0.5


def build_and_run_flood(
    n_nodes: int,
    batch: bool,
    pps_per_node: float,
    duration: float,
    seed: int,
    attack: str,
    devices_per_segment: int,
) -> dict:
    """One flood run; returns counters, records, and wall time.

    Public so ``ddoshield profile`` can drive the canonical flood scene
    under a profiling scope without duplicating the topology setup.
    """
    sim = Simulator()
    if devices_per_segment > 0:
        lan: CsmaLan | SegmentedLan = SegmentedLan(
            sim, devices_per_segment=devices_per_segment
        )
    else:
        lan = CsmaLan(sim)
    victim = lan.add_host("tserver")
    victim.tcp.seed(seed + 1)
    listener = victim.tcp.listen(80, on_accept=lambda sock: None)
    probe = lan.add_probe(PacketProbe())
    attackers = [lan.add_host(f"dev-{i}") for i in range(n_nodes)]
    modules = [
        make_attack(
            attack,
            node,
            sim,
            victim.address,
            80,
            pps_per_node,
            duration,
            seed=seed * 1000 + i,
            batch=batch,
        )
        for i, node in enumerate(attackers)
    ]
    started = time.perf_counter()
    for module in modules:
        sim.schedule(0.0, module.start)
    sim.run(until=duration + 1.0)
    wall = time.perf_counter() - started
    packets_sent = sum(m.packets_sent for m in modules)
    return {
        "wall_seconds": wall,
        "events": sim.events_executed,
        "packets_sent": packets_sent,
        "records": probe.records,
        "syn_dropped": listener.syn_dropped,
        "half_open": len(listener.half_open),
        "unroutable": victim.packets_unroutable,
    }


def _window_verdicts(records, window_seconds: float) -> list[tuple[int, int, bool]]:
    """Per-window (total, malicious, attack?) rows from capture records."""
    verdicts: dict[int, list[int]] = {}
    for record in records:
        bucket = verdicts.setdefault(int(record.timestamp // window_seconds), [0, 0])
        bucket[0] += 1
        bucket[1] += record.label
    return [
        (total, bad, bad / total >= VERDICT_THRESHOLD)
        for _, (total, bad) in sorted(verdicts.items())
    ]


def run_sim_benchmark(
    node_counts: Sequence[int] = (16, 64, 256, 1024),
    pps_per_node: float = 20000.0,
    duration: float = 0.05,
    seed: int = 7,
    attack: str = "syn",
    window_seconds: float = 0.01,
    devices_per_segment: int = 64,
) -> dict:
    """Scalar-vs-batch kernel sweep; returns results with equivalence.

    The defaults stress the kernel hard enough that batching matters:
    20 k pps/node means 200-frame trains per 10 ms emission tick, which
    is where bucket-drain dispatch and whole-train wire service pay off.
    ``devices_per_segment=64`` routes the sweep through the hierarchical
    topology (a flat /24 cannot hold 1024 hosts anyway); pass ``0`` for
    a flat LAN at small node counts.
    """
    runs = []
    for n in node_counts:
        scalar = build_and_run_flood(
            n, False, pps_per_node, duration, seed, attack, devices_per_segment
        )
        batched = build_and_run_flood(
            n, True, pps_per_node, duration, seed, attack, devices_per_segment
        )
        bit_identical = scalar["records"] == batched["records"]
        verdicts_s = _window_verdicts(scalar["records"], window_seconds)
        verdicts_b = _window_verdicts(batched["records"], window_seconds)
        flags_s = [attackish for _, _, attackish in verdicts_s]
        flags_b = [attackish for _, _, attackish in verdicts_b]
        equivalence = {
            "packets_sent_equal": scalar["packets_sent"] == batched["packets_sent"],
            "records_bit_identical": bit_identical,
            "window_verdicts_identical": flags_s == flags_b,
            "windows": len(verdicts_s),
            "records": [len(scalar["records"]), len(batched["records"])],
            "syn_dropped": [scalar["syn_dropped"], batched["syn_dropped"]],
            "half_open": [scalar["half_open"], batched["half_open"]],
        }
        if not equivalence["packets_sent_equal"]:
            raise AssertionError(
                f"batched kernel changed emission at {n} nodes: "
                f"{scalar['packets_sent']} != {batched['packets_sent']} packets sent"
            )
        if not equivalence["window_verdicts_identical"]:
            raise AssertionError(
                f"batched kernel changed window verdicts at {n} nodes: "
                f"{verdicts_s} != {verdicts_b}"
            )
        # The capture lists are the dominant allocation at 1024 nodes;
        # drop them before the next (larger) pair of runs.
        scalar["records"] = batched["records"] = None
        row = {"nodes": n}
        for label, run in (("scalar", scalar), ("batch", batched)):
            row[label] = {
                "wall_seconds": run["wall_seconds"],
                "events": run["events"],
                "events_per_second": run["events"] / run["wall_seconds"],
                "packets_sent": run["packets_sent"],
                "packets_per_second": run["packets_sent"] / run["wall_seconds"],
            }
        row["event_reduction"] = scalar["events"] / max(1, batched["events"])
        row["speedup_packets_per_second"] = (
            row["batch"]["packets_per_second"] / row["scalar"]["packets_per_second"]
        )
        row["equivalence"] = equivalence
        runs.append(row)
    return {
        "node_counts": list(node_counts),
        "pps_per_node": pps_per_node,
        "duration_seconds": duration,
        "window_seconds": window_seconds,
        "seed": seed,
        "attack": attack,
        "devices_per_segment": devices_per_segment,
        "runs": runs,
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def _build_and_run_benign(
    n_devices: int,
    batch: bool,
    duration: float,
    seed: int,
    mean_session_interval: float,
    mean_dns_interval: float,
    devices_per_segment: int,
    weights: tuple[float, float, float],
    rtmp_bitrate_bps: float,
    rtmp_chunk_interval: float,
    ftp_file_bytes: tuple[int, int],
    data_rate: str,
) -> dict:
    """One benign-only testbed run; returns counters, records, and wall.

    Builds the full Figure 1 testbed (TServer apps, device profiles,
    UDP chatter) but never infects, so every packet on the wire is the
    benign plane — exactly the traffic the ``batch_benign`` refactor
    vectorizes.  Wall-clock covers the simulation only, not assembly.
    """
    # Local import: repro.testbed imports repro.sim, so the testbed can
    # only be pulled in lazily from inside the sim package.
    from repro.apps import UdpChatter
    from repro.testbed.builder import Testbed
    from repro.testbed.scenario import Scenario

    http_w, ftp_w, rtmp_w = weights
    scenario = Scenario(
        n_devices=n_devices,
        seed=seed,
        devices_per_segment=devices_per_segment,
        mean_session_interval=mean_session_interval,
        mean_dns_interval=mean_dns_interval,
        http_weight=http_w,
        ftp_weight=ftp_w,
        rtmp_weight=rtmp_w,
        rtmp_bitrate_bps=rtmp_bitrate_bps,
        rtmp_chunk_interval=rtmp_chunk_interval,
        ftp_min_file_bytes=ftp_file_bytes[0],
        ftp_max_file_bytes=ftp_file_bytes[1],
        data_rate=data_rate,
        batch_benign=batch,
    )
    testbed = Testbed(scenario).build()
    probe = testbed.lan.add_probe(PacketProbe())
    started = time.perf_counter()
    testbed.sim.run(until=duration)
    wall = time.perf_counter() - started
    chatters = [
        process
        for dev in testbed.devices
        for process in dev.processes
        if isinstance(process, UdpChatter)
    ]
    assert testbed.tserver is not None
    return {
        "wall_seconds": wall,
        "events": testbed.sim.events_executed,
        "delivered": probe.count,
        "records": probe.records,
        "sessions_started": sum(p.sessions_started for p in testbed.profiles),
        "queries_sent": sum(c.queries_sent for c in chatters),
        "responses_received": sum(c.responses_received for c in chatters),
        "victim_payload_bytes": testbed.tserver.node.tcp.payload_bytes_sent,
    }


def _attack_windows(records, window_seconds: float) -> list[int]:
    """Window indices a threshold IDS would flag, from capture records."""
    totals: dict[int, list[int]] = {}
    for record in records:
        bucket = totals.setdefault(int(record.timestamp // window_seconds), [0, 0])
        bucket[0] += 1
        bucket[1] += record.label
    return sorted(
        index
        for index, (total, bad) in totals.items()
        if bad / total >= VERDICT_THRESHOLD
    )


def run_benign_benchmark(
    node_counts: Sequence[int] = (64, 256, 1024),
    duration: float = 8.0,
    seed: int = 7,
    mean_session_interval: float = 6.0,
    mean_dns_interval: float = 2.0,
    window_seconds: float = 1.0,
    devices_per_segment: int = 64,
    weights: tuple[float, float, float] = (0.10, 0.45, 0.45),
    rtmp_bitrate_bps: float = 1_600_000.0,
    rtmp_chunk_interval: float = 0.3,
    ftp_file_bytes: tuple[int, int] = (200_000, 800_000),
    data_rate: str = "1Gbps",
) -> dict:
    """Benign-plane sweep: scalar TCP/chatter vs the batched twin.

    The workload is benign-dominated by construction (no infection runs,
    so it is 100 % benign): HTTP page fetches, bulk FTP downloads, RTMP
    streams, and DNS/NTP chatter from every device against the TServer.
    Equivalence is asserted on the emission side — session launches and
    chatter datagrams are RNG twins, so their counts must match exactly —
    and on per-window attack verdicts (trivially all-benign, but a batch
    bug that mislabels provenance would trip it).  Delivered counts can
    drift by the few frames still riding an in-flight train when the
    clock stops (train delivery lands at the train's *last* frame
    instant), so bit-identity of the capture is reported, not asserted.
    """
    runs = []
    for n in node_counts:
        scalar = _build_and_run_benign(
            n, False, duration, seed, mean_session_interval,
            mean_dns_interval, devices_per_segment, weights,
            rtmp_bitrate_bps, rtmp_chunk_interval, ftp_file_bytes, data_rate,
        )
        batched = _build_and_run_benign(
            n, True, duration, seed, mean_session_interval,
            mean_dns_interval, devices_per_segment, weights,
            rtmp_bitrate_bps, rtmp_chunk_interval, ftp_file_bytes, data_rate,
        )
        equivalence = {
            "sessions_equal": scalar["sessions_started"] == batched["sessions_started"],
            "queries_equal": scalar["queries_sent"] == batched["queries_sent"],
            "attack_windows_identical": (
                _attack_windows(scalar["records"], window_seconds)
                == _attack_windows(batched["records"], window_seconds)
            ),
            "records_bit_identical": scalar["records"] == batched["records"],
            "delivered": [scalar["delivered"], batched["delivered"]],
            "responses_received": [
                scalar["responses_received"], batched["responses_received"],
            ],
            "victim_payload_bytes": [
                scalar["victim_payload_bytes"], batched["victim_payload_bytes"],
            ],
        }
        if not equivalence["sessions_equal"]:
            raise AssertionError(
                f"batched benign plane changed session launches at {n} devices: "
                f"{scalar['sessions_started']} != {batched['sessions_started']}"
            )
        if not equivalence["queries_equal"]:
            raise AssertionError(
                f"batched benign plane changed chatter emission at {n} devices: "
                f"{scalar['queries_sent']} != {batched['queries_sent']}"
            )
        if not equivalence["attack_windows_identical"]:
            raise AssertionError(
                f"batched benign plane changed window verdicts at {n} devices"
            )
        scalar["records"] = batched["records"] = None
        row: dict = {"nodes": n}
        for label, run in (("scalar", scalar), ("batch", batched)):
            row[label] = {
                "wall_seconds": run["wall_seconds"],
                "events": run["events"],
                "events_per_second": run["events"] / run["wall_seconds"],
                "packets_delivered": run["delivered"],
                "packets_per_second": run["delivered"] / run["wall_seconds"],
                "sessions_started": run["sessions_started"],
                "queries_sent": run["queries_sent"],
            }
        row["event_reduction"] = scalar["events"] / max(1, batched["events"])
        row["speedup_packets_per_second"] = (
            row["batch"]["packets_per_second"] / row["scalar"]["packets_per_second"]
        )
        row["equivalence"] = equivalence
        runs.append(row)
    return {
        "workload": "benign",
        "node_counts": list(node_counts),
        "duration_seconds": duration,
        "window_seconds": window_seconds,
        "seed": seed,
        "mean_session_interval": mean_session_interval,
        "mean_dns_interval": mean_dns_interval,
        "devices_per_segment": devices_per_segment,
        "weights": {"http": weights[0], "ftp": weights[1], "rtmp": weights[2]},
        "rtmp_bitrate_bps": rtmp_bitrate_bps,
        "rtmp_chunk_interval": rtmp_chunk_interval,
        "ftp_file_bytes": list(ftp_file_bytes),
        "data_rate": data_rate,
        "runs": runs,
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def format_benign_benchmark(result: dict) -> str:
    """Human-readable one-screen summary of a benign-plane result."""
    lines = [
        f"benign-plane benchmark — HTTP/FTP/RTMP/DNS mix, "
        f"{result['duration_seconds']:g}s sim, "
        f"session interval {result['mean_session_interval']:g}s"
    ]
    for row in result["runs"]:
        eq = row["equivalence"]
        tag = "bit-identical" if eq["records_bit_identical"] else "verdict-identical"
        lines.append(
            f"  {row['nodes']:>5} devices: scalar {row['scalar']['packets_per_second']:>9.0f} pkt/s "
            f"→ batch {row['batch']['packets_per_second']:>9.0f} pkt/s "
            f"({row['speedup_packets_per_second']:.1f}×, "
            f"{row['event_reduction']:.1f}× fewer events, {tag})"
        )
    return "\n".join(lines)


def write_benchmark(result: dict, path: str | Path) -> Path:
    """Persist benchmark results as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(result, indent=2) + "\n")
    return path


def merge_benchmark(result: dict, path: str | Path, section: str) -> Path:
    """Record one section (``"flood"`` or ``"benign"``) into a BENCH history.

    Results append to the ``ddoshield-bench-history/v1`` store (keyed by
    git sha, date, and config fingerprint) instead of overwriting, so
    ``ddoshield bench-compare`` can diff runs across commits.  Legacy
    single-run files are upgraded in place on first append.
    """
    from repro.obs.regress import record_benchmark

    path = Path(path)
    record_benchmark(result, path, section)
    return path


def format_benchmark(result: dict) -> str:
    """Human-readable one-screen summary of a benchmark result."""
    lines = [
        f"event-kernel benchmark — {result['attack']} flood, "
        f"{result['pps_per_node']:.0f} pps/node × {result['duration_seconds']:g}s"
        + (
            f", {result['devices_per_segment']} devs/segment"
            if result["devices_per_segment"]
            else ", flat LAN"
        )
    ]
    for row in result["runs"]:
        eq = row["equivalence"]
        tag = "bit-identical" if eq["records_bit_identical"] else "verdict-identical"
        lines.append(
            f"  {row['nodes']:>5} nodes: scalar {row['scalar']['packets_per_second']:>10.0f} pkt/s "
            f"→ batch {row['batch']['packets_per_second']:>10.0f} pkt/s "
            f"({row['speedup_packets_per_second']:.1f}×, "
            f"{row['event_reduction']:.0f}× fewer events, {tag})"
        )
    return "\n".join(lines)
