"""Event-kernel benchmark: scalar packets vs batched trains at scale.

Builds the same flood scene twice per node count — ``n`` attacker nodes
SYN-flooding one victim, same seeds — once with scalar per-packet
emission and once with :class:`~repro.sim.packet.PacketBatch` trains,
and measures wall-clock, executed events, and delivered packets for
each.  Before any timing is reported the two runs are checked for
*equivalence*, because a fast kernel that changes detection outcomes is
not an optimisation.  The guarantee is tiered by load:

* emission is exact — per-seed packet counts and payload draws are
  identical (hard assert);
* per-window detection verdicts are identical (hard assert);
* delivered records are bit-identical below queue saturation; at loads
  that overflow transmit queues the drop *boundary* may shift by a few
  frames (a 200-frame train arrives back-to-back where scalar frames
  interleave — the same burst-structure difference real NIC batching
  introduces), so bit-identity is reported, not asserted.

Node counts default to the urban-IoT sweep {16, 64, 256, 1024}; at the
top end the batched kernel must clear the issue's ≥5× packets/s bar.
Results are written as JSON (``BENCH_sim.json``) so the kernel's perf
trajectory is recorded run over run.

Run via ``python benchmarks/bench_sim.py`` or ``ddoshield bench-sim``.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.botnet.attacks import make_attack
from repro.sim.core import Simulator
from repro.sim.topology import CsmaLan, SegmentedLan
from repro.sim.tracing import PacketProbe

#: Per-window malicious share above which a window is ruled an attack
#: window (the verdict the scalar/batch equivalence check compares).
VERDICT_THRESHOLD = 0.5


def _build_and_run(
    n_nodes: int,
    batch: bool,
    pps_per_node: float,
    duration: float,
    seed: int,
    attack: str,
    devices_per_segment: int,
) -> dict:
    """One flood run; returns counters, records, and wall time."""
    sim = Simulator()
    if devices_per_segment > 0:
        lan: CsmaLan | SegmentedLan = SegmentedLan(
            sim, devices_per_segment=devices_per_segment
        )
    else:
        lan = CsmaLan(sim)
    victim = lan.add_host("tserver")
    victim.tcp.seed(seed + 1)
    listener = victim.tcp.listen(80, on_accept=lambda sock: None)
    probe = lan.add_probe(PacketProbe())
    attackers = [lan.add_host(f"dev-{i}") for i in range(n_nodes)]
    modules = [
        make_attack(
            attack,
            node,
            sim,
            victim.address,
            80,
            pps_per_node,
            duration,
            seed=seed * 1000 + i,
            batch=batch,
        )
        for i, node in enumerate(attackers)
    ]
    started = time.perf_counter()
    for module in modules:
        sim.schedule(0.0, module.start)
    sim.run(until=duration + 1.0)
    wall = time.perf_counter() - started
    packets_sent = sum(m.packets_sent for m in modules)
    return {
        "wall_seconds": wall,
        "events": sim.events_executed,
        "packets_sent": packets_sent,
        "records": probe.records,
        "syn_dropped": listener.syn_dropped,
        "half_open": len(listener.half_open),
        "unroutable": victim.packets_unroutable,
    }


def _window_verdicts(records, window_seconds: float) -> list[tuple[int, int, bool]]:
    """Per-window (total, malicious, attack?) rows from capture records."""
    verdicts: dict[int, list[int]] = {}
    for record in records:
        bucket = verdicts.setdefault(int(record.timestamp // window_seconds), [0, 0])
        bucket[0] += 1
        bucket[1] += record.label
    return [
        (total, bad, bad / total >= VERDICT_THRESHOLD)
        for _, (total, bad) in sorted(verdicts.items())
    ]


def run_sim_benchmark(
    node_counts: Sequence[int] = (16, 64, 256, 1024),
    pps_per_node: float = 20000.0,
    duration: float = 0.05,
    seed: int = 7,
    attack: str = "syn",
    window_seconds: float = 0.01,
    devices_per_segment: int = 64,
) -> dict:
    """Scalar-vs-batch kernel sweep; returns results with equivalence.

    The defaults stress the kernel hard enough that batching matters:
    20 k pps/node means 200-frame trains per 10 ms emission tick, which
    is where bucket-drain dispatch and whole-train wire service pay off.
    ``devices_per_segment=64`` routes the sweep through the hierarchical
    topology (a flat /24 cannot hold 1024 hosts anyway); pass ``0`` for
    a flat LAN at small node counts.
    """
    runs = []
    for n in node_counts:
        scalar = _build_and_run(
            n, False, pps_per_node, duration, seed, attack, devices_per_segment
        )
        batched = _build_and_run(
            n, True, pps_per_node, duration, seed, attack, devices_per_segment
        )
        bit_identical = scalar["records"] == batched["records"]
        verdicts_s = _window_verdicts(scalar["records"], window_seconds)
        verdicts_b = _window_verdicts(batched["records"], window_seconds)
        flags_s = [attackish for _, _, attackish in verdicts_s]
        flags_b = [attackish for _, _, attackish in verdicts_b]
        equivalence = {
            "packets_sent_equal": scalar["packets_sent"] == batched["packets_sent"],
            "records_bit_identical": bit_identical,
            "window_verdicts_identical": flags_s == flags_b,
            "windows": len(verdicts_s),
            "records": [len(scalar["records"]), len(batched["records"])],
            "syn_dropped": [scalar["syn_dropped"], batched["syn_dropped"]],
            "half_open": [scalar["half_open"], batched["half_open"]],
        }
        if not equivalence["packets_sent_equal"]:
            raise AssertionError(
                f"batched kernel changed emission at {n} nodes: "
                f"{scalar['packets_sent']} != {batched['packets_sent']} packets sent"
            )
        if not equivalence["window_verdicts_identical"]:
            raise AssertionError(
                f"batched kernel changed window verdicts at {n} nodes: "
                f"{verdicts_s} != {verdicts_b}"
            )
        # The capture lists are the dominant allocation at 1024 nodes;
        # drop them before the next (larger) pair of runs.
        scalar["records"] = batched["records"] = None
        row = {"nodes": n}
        for label, run in (("scalar", scalar), ("batch", batched)):
            row[label] = {
                "wall_seconds": run["wall_seconds"],
                "events": run["events"],
                "events_per_second": run["events"] / run["wall_seconds"],
                "packets_sent": run["packets_sent"],
                "packets_per_second": run["packets_sent"] / run["wall_seconds"],
            }
        row["event_reduction"] = scalar["events"] / max(1, batched["events"])
        row["speedup_packets_per_second"] = (
            row["batch"]["packets_per_second"] / row["scalar"]["packets_per_second"]
        )
        row["equivalence"] = equivalence
        runs.append(row)
    return {
        "node_counts": list(node_counts),
        "pps_per_node": pps_per_node,
        "duration_seconds": duration,
        "window_seconds": window_seconds,
        "seed": seed,
        "attack": attack,
        "devices_per_segment": devices_per_segment,
        "runs": runs,
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def write_benchmark(result: dict, path: str | Path) -> Path:
    """Persist benchmark results as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(result, indent=2) + "\n")
    return path


def format_benchmark(result: dict) -> str:
    """Human-readable one-screen summary of a benchmark result."""
    lines = [
        f"event-kernel benchmark — {result['attack']} flood, "
        f"{result['pps_per_node']:.0f} pps/node × {result['duration_seconds']:g}s"
        + (
            f", {result['devices_per_segment']} devs/segment"
            if result["devices_per_segment"]
            else ", flat LAN"
        )
    ]
    for row in result["runs"]:
        eq = row["equivalence"]
        tag = "bit-identical" if eq["records_bit_identical"] else "verdict-identical"
        lines.append(
            f"  {row['nodes']:>5} nodes: scalar {row['scalar']['packets_per_second']:>10.0f} pkt/s "
            f"→ batch {row['batch']['packets_per_second']:>10.0f} pkt/s "
            f"({row['speedup_packets_per_second']:.1f}×, "
            f"{row['event_reduction']:.0f}× fewer events, {tag})"
        )
    return "\n".join(lines)
