"""Human-friendly unit parsing for rates, sizes, and times.

Scenario configs speak in ``"100Mbps"`` and ``"50ms"`` like NS-3 attribute
strings; the simulator core works in bits-per-second and seconds.
"""

from __future__ import annotations

_RATE_SUFFIXES = {
    "bps": 1.0,
    "kbps": 1e3,
    "mbps": 1e6,
    "gbps": 1e9,
}

_TIME_SUFFIXES = {
    "s": 1.0,
    "ms": 1e-3,
    "us": 1e-6,
    "ns": 1e-9,
    "min": 60.0,
    "h": 3600.0,
}

_SIZE_SUFFIXES = {
    "b": 1,
    "kb": 1_000,
    "mb": 1_000_000,
    "gb": 1_000_000_000,
    "kib": 1024,
    "mib": 1024**2,
    "gib": 1024**3,
}


def _parse(text: str | float, suffixes: dict[str, float], kind: str) -> float:
    if isinstance(text, (int, float)):
        return float(text)
    cleaned = text.strip().lower().replace(" ", "")
    for suffix in sorted(suffixes, key=len, reverse=True):
        if cleaned.endswith(suffix):
            number = cleaned[: -len(suffix)]
            try:
                return float(number) * suffixes[suffix]
            except ValueError as exc:
                raise ValueError(f"malformed {kind}: {text!r}") from exc
    try:
        return float(cleaned)
    except ValueError as exc:
        raise ValueError(f"malformed {kind}: {text!r}") from exc


def parse_rate(text: str | float) -> float:
    """Parse a data rate like ``"100Mbps"`` into bits per second."""
    return _parse(text, _RATE_SUFFIXES, "data rate")


def parse_time(text: str | float) -> float:
    """Parse a duration like ``"50ms"`` or ``"2min"`` into seconds."""
    return _parse(text, _TIME_SUFFIXES, "duration")


def parse_size(text: str | float) -> int:
    """Parse a byte size like ``"10MB"`` into bytes."""
    return int(_parse(text, _SIZE_SUFFIXES, "size"))
