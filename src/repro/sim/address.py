"""IPv4 and MAC addressing for the simulated network.

Addresses are thin immutable wrappers over integers so they hash and
compare cheaply (packet records store millions of them) while printing in
the familiar dotted-quad / colon-hex forms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


class AddressError(ValueError):
    """Raised for malformed address strings or exhausted allocators."""


@dataclass(frozen=True, slots=True)
class Ipv4Address:
    """An IPv4 address stored as a 32-bit unsigned integer."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 0xFFFFFFFF:
            raise AddressError(f"IPv4 value out of range: {self.value}")

    @classmethod
    def parse(cls, text: str) -> "Ipv4Address":
        """Parse a dotted-quad string such as ``"10.0.0.1"``."""
        parts = text.strip().split(".")
        if len(parts) != 4:
            raise AddressError(f"malformed IPv4 address: {text!r}")
        value = 0
        for part in parts:
            if not part.isdigit():
                raise AddressError(f"malformed IPv4 address: {text!r}")
            octet = int(part)
            if octet > 255:
                raise AddressError(f"octet out of range in {text!r}")
            value = (value << 8) | octet
        return cls(value)

    def __str__(self) -> str:
        v = self.value
        return f"{(v >> 24) & 0xFF}.{(v >> 16) & 0xFF}.{(v >> 8) & 0xFF}.{v & 0xFF}"

    def __repr__(self) -> str:
        return f"Ipv4Address({str(self)!r})"

    def __int__(self) -> int:
        return self.value


#: The all-zero address, used as "unspecified" in socket binds.
ANY_ADDRESS = Ipv4Address(0)


@dataclass(frozen=True, slots=True)
class MacAddress:
    """A 48-bit MAC address."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 0xFFFFFFFFFFFF:
            raise AddressError(f"MAC value out of range: {self.value}")

    @classmethod
    def parse(cls, text: str) -> "MacAddress":
        """Parse a colon-separated hex string such as ``"02:00:00:00:00:01"``."""
        parts = text.strip().split(":")
        if len(parts) != 6:
            raise AddressError(f"malformed MAC address: {text!r}")
        value = 0
        for part in parts:
            try:
                octet = int(part, 16)
            except ValueError as exc:
                raise AddressError(f"malformed MAC address: {text!r}") from exc
            if not 0 <= octet <= 255:
                raise AddressError(f"octet out of range in {text!r}")
            value = (value << 8) | octet
        return cls(value)

    def __str__(self) -> str:
        octets = [(self.value >> shift) & 0xFF for shift in range(40, -8, -8)]
        return ":".join(f"{o:02x}" for o in octets)

    def __repr__(self) -> str:
        return f"MacAddress({str(self)!r})"


#: Broadcast MAC address (all ones).
BROADCAST_MAC = MacAddress(0xFFFFFFFFFFFF)


class MacAllocator:
    """Hands out locally-administered MAC addresses sequentially."""

    _BASE = 0x020000000000  # locally administered, unicast

    def __init__(self) -> None:
        self._next = 1

    def allocate(self) -> MacAddress:
        mac = MacAddress(self._BASE | self._next)
        self._next += 1
        return mac


class Ipv4Network:
    """An IPv4 subnet with a sequential host-address allocator.

    Mirrors NS-3's ``Ipv4AddressHelper``: the testbed carves one /24 (or
    other prefix) per LAN and assigns hosts in join order.
    """

    def __init__(self, base: str | Ipv4Address, prefix_len: int) -> None:
        if not 0 <= prefix_len <= 32:
            raise AddressError(f"prefix length out of range: {prefix_len}")
        base_addr = Ipv4Address.parse(base) if isinstance(base, str) else base
        self.prefix_len = prefix_len
        self.mask = (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF if prefix_len else 0
        self.network = Ipv4Address(base_addr.value & self.mask)
        self._next_host = 1
        self._broadcast = Ipv4Address(self.network.value | (~self.mask & 0xFFFFFFFF))

    @property
    def broadcast(self) -> Ipv4Address:
        """The subnet's directed-broadcast address."""
        return self._broadcast

    def contains(self, address: Ipv4Address) -> bool:
        """Whether ``address`` falls inside this subnet."""
        return (address.value & self.mask) == self.network.value

    def allocate(self) -> Ipv4Address:
        """Return the next free host address in the subnet."""
        host_bits = 32 - self.prefix_len
        max_host = (1 << host_bits) - 2 if host_bits >= 2 else (1 << host_bits) - 1
        if self._next_host > max_host:
            raise AddressError(f"subnet {self} exhausted")
        address = Ipv4Address(self.network.value | self._next_host)
        self._next_host += 1
        return address

    def hosts(self) -> Iterator[Ipv4Address]:
        """Iterate every usable host address in the subnet (scan target set)."""
        host_bits = 32 - self.prefix_len
        max_host = (1 << host_bits) - 2 if host_bits >= 2 else (1 << host_bits) - 1
        for host in range(1, max_host + 1):
            yield Ipv4Address(self.network.value | host)

    def __str__(self) -> str:
        return f"{self.network}/{self.prefix_len}"

    def __repr__(self) -> str:
        return f"Ipv4Network({str(self)!r})"
