"""Transmit queues for net devices.

CSMA devices enqueue frames while the channel is busy.  Under a DDoS
flood the queue overflows and drops packets — the mechanism by which the
simulated TServer's goodput collapses, exactly as on a real congested
link.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro import obs
from repro.sim.packet import Packet


class DropTailQueue:
    """Fixed-capacity FIFO that drops arrivals when full."""

    def __init__(self, capacity: int = 100) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._items: deque[Packet] = deque()
        self.enqueued = 0
        self.dropped = 0
        self.dequeued = 0
        self.flushed = 0
        # Telemetry stays no-op until bind_obs() — a bare queue (unit
        # tests) registers nothing; owners label it once they know its
        # name and clock.
        self._obs_enqueued = obs.NULL_INSTRUMENT
        self._obs_dropped = obs.NULL_INSTRUMENT
        self._obs_flushed = obs.NULL_INSTRUMENT
        self._obs_events = obs.current().events
        self._obs_name = ""
        self._obs_clock: Callable[[], float] | None = None

    def bind_obs(self, name: str, clock: Callable[[], float]) -> None:
        """Attach a queue name and sim clock for labeled, timestamped telemetry."""
        ctx = obs.current()
        self._obs_enqueued = ctx.registry.counter("queue.enqueued", queue=name)
        self._obs_dropped = ctx.registry.counter("queue.dropped", queue=name)
        self._obs_flushed = ctx.registry.counter("queue.flushed", queue=name)
        self._obs_name = name
        self._obs_clock = clock

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    def enqueue(self, packet: Packet) -> bool:
        """Append ``packet``; return False (and count a drop) when full."""
        if self.is_full:
            self.dropped += 1
            self._obs_dropped.inc()
            if self._obs_events.enabled and self._obs_clock is not None:
                self._obs_events.record(
                    self._obs_clock(), "queue.drop", detail=self._obs_name
                )
            return False
        self._items.append(packet)
        self.enqueued += 1
        self._obs_enqueued.inc()
        return True

    def dequeue(self) -> Packet | None:
        """Pop the oldest packet, or None when empty."""
        if not self._items:
            return None
        self.dequeued += 1
        return self._items.popleft()

    def peek(self) -> Packet | None:
        """Look at the oldest packet without removing it."""
        return self._items[0] if self._items else None

    def conservation_error(self) -> str | None:
        """Describe a packet-conservation breach, or None when conserved.

        The invariant (checked by the runtime sanitizers): every packet
        ever accepted is either dequeued, flushed, or still queued —
        ``enqueued == dequeued + flushed + len(queue)``.
        """
        accounted = self.dequeued + self.flushed + len(self._items)
        if self.enqueued == accounted:
            return None
        return (
            f"enqueued={self.enqueued} != dequeued={self.dequeued} + "
            f"flushed={self.flushed} + backlog={len(self._items)}"
        )

    def clear(self) -> None:
        """Discard all queued packets, accounting them as flushed.

        Flushes happen on link partition or container kill; counting them
        keeps queue statistics conserved:
        ``enqueued == dequeued + flushed + len(queue)``
        (``dropped`` counts rejected arrivals, which were never enqueued).
        """
        self._obs_flushed.inc(len(self._items))
        self.flushed += len(self._items)
        self._items.clear()
