"""Transmit queues for net devices.

CSMA devices enqueue frames while the channel is busy.  Under a DDoS
flood the queue overflows and drops packets — the mechanism by which the
simulated TServer's goodput collapses, exactly as on a real congested
link.

Capacity is counted in *packets*: a :class:`~repro.sim.packet.PacketBatch`
of ``n`` frames occupies ``n`` slots, and a batch that only partially
fits is split at the boundary (the head is accepted, the tail dropped)
so batched and scalar floods see identical drop behaviour.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Union

from repro import obs
from repro.sim.packet import Packet, PacketBatch

#: A queue entry: one packet, or a struct-of-arrays batch of packets.
QueueUnit = Union[Packet, PacketBatch]


class DropTailQueue:
    """Fixed-capacity FIFO that drops arrivals when full."""

    def __init__(self, capacity: int = 100) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._items: deque[QueueUnit] = deque()
        self._size = 0  # packets queued (batches count their length)
        self.enqueued = 0
        self.dropped = 0
        self.dequeued = 0
        self.flushed = 0
        # Telemetry stays no-op until bind_obs() — a bare queue (unit
        # tests) registers nothing; owners label it once they know its
        # name and clock.
        self._obs_enqueued = obs.NULL_INSTRUMENT
        self._obs_dropped = obs.NULL_INSTRUMENT
        self._obs_flushed = obs.NULL_INSTRUMENT
        self._obs_splits = obs.NULL_INSTRUMENT
        self._obs_events = obs.current().events
        self._obs_name = ""
        self._obs_clock: Callable[[], float] | None = None

    def bind_obs(self, name: str, clock: Callable[[], float]) -> None:
        """Attach a queue name and sim clock for labeled, timestamped telemetry."""
        ctx = obs.current()
        self._obs_enqueued = ctx.registry.counter("queue.enqueued", queue=name)
        self._obs_dropped = ctx.registry.counter("queue.dropped", queue=name)
        self._obs_flushed = ctx.registry.counter("queue.flushed", queue=name)
        self._obs_splits = ctx.registry.counter("queue.batch_splits", queue=name)
        self._obs_name = name
        self._obs_clock = clock

    def __len__(self) -> int:
        return self._size

    @property
    def is_empty(self) -> bool:
        return self._size == 0

    @property
    def is_full(self) -> bool:
        return self._size >= self.capacity

    def _record_drop_event(self) -> None:
        if self._obs_events.enabled and self._obs_clock is not None:
            self._obs_events.record(
                self._obs_clock(), "queue.drop", detail=self._obs_name
            )

    def enqueue(self, packet: Packet) -> bool:
        """Append ``packet``; return False (and count a drop) when full."""
        if self.is_full:
            self.dropped += 1
            self._obs_dropped.inc()
            self._record_drop_event()
            return False
        self._items.append(packet)
        self._size += 1
        self.enqueued += 1
        self._obs_enqueued.inc()
        return True

    def enqueue_batch(self, batch: PacketBatch) -> int:
        """Append as much of ``batch`` as fits; return the accepted count.

        A batch that only partially fits is *split* at the free-slot
        boundary — the head is accepted, the overflow dropped — matching
        what the scalar path does packet by packet.
        """
        n = len(batch)
        if n == 0:
            return 0
        free = self.capacity - self._size
        if free <= 0:
            self.dropped += n
            self._obs_dropped.inc(n)
            self._record_drop_event()
            return 0
        if n > free:
            batch, _tail = batch.split(free)
            self._obs_splits.inc()
            self.dropped += n - free
            self._obs_dropped.inc(n - free)
            self._record_drop_event()
            n = free
        self._items.append(batch)
        self._size += n
        self.enqueued += n
        self._obs_enqueued.inc(n)
        return n

    def dequeue(self) -> Packet | None:
        """Pop the oldest *packet*, splitting it off a head batch if needed."""
        unit = self.dequeue_unit(allow_batch=False)
        assert unit is None or isinstance(unit, Packet)
        return unit

    def dequeue_unit(self, allow_batch: bool = True) -> QueueUnit | None:
        """Pop the oldest unit (packet, or whole batch when allowed).

        With ``allow_batch=False`` a head batch yields exactly one
        materialised packet and the remainder stays queued — the scalar
        fallback used when fault injectors or legacy filters need
        per-frame treatment.
        """
        if not self._items:
            return None
        head = self._items[0]
        if isinstance(head, Packet):
            self._items.popleft()
            self._size -= 1
            self.dequeued += 1
            return head
        if allow_batch:
            self._items.popleft()
            n = len(head)
            self._size -= n
            self.dequeued += n
            return head
        packet = head.packet(0)
        if len(head) == 1:
            self._items.popleft()
        else:
            self._items[0] = head.slice(1)
        self._size -= 1
        self.dequeued += 1
        return packet

    def peek(self) -> QueueUnit | None:
        """Look at the oldest unit without removing it."""
        return self._items[0] if self._items else None

    def conservation_error(self) -> str | None:
        """Describe a packet-conservation breach, or None when conserved.

        The invariant (checked by the runtime sanitizers): every packet
        ever accepted is either dequeued, flushed, or still queued —
        ``enqueued == dequeued + flushed + len(queue)``.  Batches count
        as their packet lengths throughout.
        """
        actual = sum(
            len(unit) if isinstance(unit, PacketBatch) else 1
            for unit in self._items
        )
        accounted = self.dequeued + self.flushed + actual
        if self.enqueued != accounted:
            return (
                f"enqueued={self.enqueued} != dequeued={self.dequeued} + "
                f"flushed={self.flushed} + backlog={actual}"
            )
        if actual != self._size:
            return f"cached size {self._size} != live backlog {actual}"
        return None

    def clear(self) -> None:
        """Discard all queued packets, accounting them as flushed.

        Flushes happen on link partition or container kill; counting them
        keeps queue statistics conserved:
        ``enqueued == dequeued + flushed + len(queue)``
        (``dropped`` counts rejected arrivals, which were never enqueued).
        """
        self._obs_flushed.inc(self._size)
        self.flushed += self._size
        self._items.clear()
        self._size = 0
