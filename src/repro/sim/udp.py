"""UDP datagram sockets for the simulated network."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.sim.address import Ipv4Address
from repro.sim.packet import PROTO_UDP, Ipv4Header, Packet, PacketBatch, Provenance, UdpHeader

if TYPE_CHECKING:
    from repro.sim.node import Node

#: Receive callback: (socket, payload bytes, virtual length, src ip, src port).
RecvFn = Callable[["UdpSocket", bytes, int, Ipv4Address, int], None]

#: Batch receive callback: (socket, train of datagrams bound to this port).
RecvBatchFn = Callable[["UdpSocket", PacketBatch], None]


class UdpSocket:
    """A bound UDP endpoint; datagrams are fire-and-forget."""

    def __init__(self, stack: "UdpStack", port: int) -> None:
        self.stack = stack
        self.port = port
        self.on_receive: RecvFn | None = None
        self.on_receive_batch: RecvBatchFn | None = None
        self.provenance: Provenance | None = None
        self.datagrams_sent = 0
        self.datagrams_received = 0

    def send_to(
        self,
        dst: Ipv4Address,
        dst_port: int,
        payload: bytes = b"",
        length: int | None = None,
        app_data: object | None = None,
    ) -> bool:
        """Send one datagram; returns False if the TX queue dropped it."""
        self.datagrams_sent += 1
        return self.stack.send_datagram(
            src_port=self.port,
            dst=dst,
            dst_port=dst_port,
            payload=payload,
            payload_len=length,
            app_data=app_data,
            provenance=self.provenance,
        )

    def send_to_batch(self, batch: PacketBatch) -> int:
        """Send a pre-built train from this socket; returns frames accepted.

        The train's ``src_port`` column must already equal this socket's
        port; provenance falls back to the socket's like :meth:`send_to`.
        """
        n = len(batch)
        if n == 0:
            return 0
        self.datagrams_sent += n
        if self.provenance is not None and batch.provenance is not self.provenance:
            batch = batch._replace_columns(provenance=self.provenance)
        return self.stack.send_datagram_batch(batch)

    def handle(self, packet: Packet) -> None:
        assert packet.ip is not None and packet.udp is not None
        self.datagrams_received += 1
        if self.on_receive is not None:
            self.on_receive(
                self,
                packet.payload,
                packet.data_len,
                packet.ip.src,
                packet.udp.src_port,
            )

    def handle_batch(self, batch: PacketBatch) -> None:
        """Consume a train bound to this port in one callback when the
        app installed ``on_receive_batch``; per-row fallback otherwise."""
        n = len(batch)
        if n == 0:
            return
        self.datagrams_received += n
        if self.on_receive_batch is not None:
            self.on_receive_batch(self, batch)
            return
        if self.on_receive is not None:
            for packet in batch.packets():
                assert packet.ip is not None and packet.udp is not None
                self.on_receive(
                    self,
                    packet.payload,
                    packet.data_len,
                    packet.ip.src,
                    packet.udp.src_port,
                )

    def close(self) -> None:
        self.stack.sockets.pop(self.port, None)


class UdpStack:
    """Per-node UDP demultiplexer."""

    def __init__(self, node: "Node") -> None:
        self.node = node
        self.sockets: dict[int, UdpSocket] = {}
        self._next_port = 49152
        self.unreachable = 0
        self.default_provenance: Provenance | None = None

    def bind(self, port: int = 0) -> UdpSocket:
        """Bind a socket; ``port=0`` picks an ephemeral port."""
        if port == 0:
            while self._next_port in self.sockets:
                self._next_port += 1
            port = self._next_port
            self._next_port += 1
        if port in self.sockets:
            raise RuntimeError(f"UDP port {port} already bound on {self.node.name}")
        sock = UdpSocket(self, port)
        self.sockets[port] = sock
        return sock

    def receive(self, packet: Packet) -> None:
        assert packet.udp is not None
        sock = self.sockets.get(packet.udp.dst_port)
        if sock is None:
            # A real host answers ICMP port-unreachable; we only count it.
            # UDP floods aimed at closed ports still congest the victim's
            # link, which is the effect the testbed observes.
            self.unreachable += 1
            return
        sock.handle(packet)

    def receive_batch(self, batch: PacketBatch) -> None:
        """Demultiplex a train: consecutive same-port runs reach their
        socket as one :meth:`UdpSocket.handle_batch` call (the shape of
        batched chatter), misses count vectorized."""
        n = len(batch)
        if n == 0:
            return
        if not self.sockets:
            self.unreachable += n
            return
        dports = batch.dst_port
        p0 = int(dports[0])
        if int(dports[-1]) == p0 and bool((dports == p0).all()):
            # Uniform destination port — one dict probe, no isin/regroup.
            sock = self.sockets.get(p0)
            if sock is None:
                self.unreachable += n
                return
            sock.handle_batch(batch)
            return
        bound = np.asarray(sorted(self.sockets), dtype=np.int64)
        hits = np.isin(batch.dst_port, bound)
        self.unreachable += int((~hits).sum())
        if not hits.any():
            return
        hit_idx = np.flatnonzero(hits)
        ports = batch.dst_port[hit_idx]
        starts = [0] + (np.flatnonzero(ports[1:] != ports[:-1]) + 1).tolist()
        starts.append(int(ports.shape[0]))
        for a, b in zip(starts[:-1], starts[1:]):
            sock = self.sockets.get(int(ports[a]))
            if sock is None:
                self.unreachable += b - a  # closed by an earlier run
                continue
            sock.handle_batch(batch.take(hit_idx[a:b]))

    def send_datagram_batch(self, batch: PacketBatch) -> int:
        """Route a pre-built UDP train; returns frames accepted."""
        if len(batch) == 0:
            return 0
        return self.node.send_ipv4_batch(batch)

    def send_datagram(
        self,
        src_port: int,
        dst: Ipv4Address,
        dst_port: int,
        payload: bytes = b"",
        payload_len: int | None = None,
        app_data: object | None = None,
        provenance: Provenance | None = None,
        src: Ipv4Address | None = None,
    ) -> bool:
        header = UdpHeader(src_port=src_port, dst_port=dst_port)
        ip = Ipv4Header(
            src=src if src is not None else self.node.address,
            dst=dst,
            protocol=PROTO_UDP,
        )
        prov = provenance or self.default_provenance
        packet = Packet(
            ip=ip,
            udp=header,
            payload=payload,
            payload_len=payload_len,
            app_data=app_data,
            provenance=prov if prov is not None else Provenance(),
        )
        return self.node.send_ipv4(packet)
