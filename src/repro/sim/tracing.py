"""Traffic capture: in-memory packet records and libpcap-format files.

The IDS container in the paper sniffs the simulated network and feeds the
capture to its feature pipeline.  Here a :class:`PacketProbe` registered
on a channel produces :class:`PacketRecord` rows — the flat per-packet
facts the feature extractor consumes — and can simultaneously stream the
raw frames to a :class:`PcapWriter`, which emits genuine libpcap files
readable by Wireshark/tcpdump (DDoSim's external-analysis workflow).
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Callable, Iterator, NamedTuple

import numpy as np

from repro.sim.packet import PROTO_TCP, PROTO_UDP, Packet, PacketBatch, TcpFlags

PCAP_MAGIC = 0xA1B2C3D2  # nanosecond-resolution variant
PCAP_LINKTYPE_ETHERNET = 1


class PacketRecord(NamedTuple):
    """One captured packet, flattened for feature extraction.

    ``label`` is ground truth taken from packet provenance (which process
    emitted it) — never from anything the wire carries — and is used only
    for training labels and accuracy scoring.

    A named tuple rather than a dataclass: captures materialise millions
    of rows per run, and tuple construction is the difference between
    the probe dominating a batched run's profile and disappearing from
    it.  Field access, keyword construction, and equality are unchanged.
    """

    timestamp: float
    src_ip: int
    dst_ip: int
    protocol: int
    src_port: int
    dst_port: int
    size: int
    tcp_flags: int
    seq: int
    label: int  # 1 = malicious, 0 = benign
    attack: str | None = None

    @classmethod
    def from_packet(cls, packet: Packet, timestamp: float) -> "PacketRecord":
        if packet.ip is None:
            raise ValueError("cannot record a packet without an IPv4 header")
        src_port = dst_port = 0
        tcp_flags = seq = 0
        if packet.tcp is not None:
            src_port = packet.tcp.src_port
            dst_port = packet.tcp.dst_port
            tcp_flags = int(packet.tcp.flags)
            seq = packet.tcp.seq
        elif packet.udp is not None:
            src_port = packet.udp.src_port
            dst_port = packet.udp.dst_port
        return cls(
            timestamp=timestamp,
            src_ip=packet.ip.src.value,
            dst_ip=packet.ip.dst.value,
            protocol=packet.ip.protocol,
            src_port=src_port,
            dst_port=dst_port,
            size=packet.size,
            tcp_flags=tcp_flags,
            seq=seq,
            label=1 if packet.provenance.malicious else 0,
            attack=packet.provenance.attack,
        )

    @property
    def is_tcp(self) -> bool:
        return self.protocol == PROTO_TCP

    @property
    def is_udp(self) -> bool:
        return self.protocol == PROTO_UDP

    @property
    def is_syn(self) -> bool:
        return bool(self.tcp_flags & TcpFlags.SYN) and not bool(
            self.tcp_flags & TcpFlags.ACK
        )

    @property
    def is_ack(self) -> bool:
        return bool(self.tcp_flags & TcpFlags.ACK)

    @property
    def is_fin(self) -> bool:
        return bool(self.tcp_flags & TcpFlags.FIN)

    @property
    def flow_key(self) -> tuple[int, int, int, int, int]:
        """The connection 5-tuple this packet belongs to."""
        return (self.src_ip, self.src_port, self.dst_ip, self.dst_port, self.protocol)


class PacketProbe:
    """Promiscuous channel tap collecting :class:`PacketRecord` rows.

    Optional ``sink`` callbacks receive each record as it is captured —
    this is how the real-time IDS subscribes to live traffic.

    Train captures are **lazily materialised**: with no live sinks,
    ``observe_batch`` stashes the train's columns and row objects are
    only built when :attr:`records` is read.  A multi-minute batched run
    therefore pays list conversions inside the simulation loop but
    defers the per-row tuple constructions — the capture's dominant
    cost — to analysis time, where the same work is no longer on the
    simulator's critical path.  Row order is exactly scalar-equivalent:
    any scalar capture (or a sink subscription) flushes pending trains
    first.
    """

    def __init__(
        self,
        pcap: "PcapWriter | None" = None,
        keep_records: bool = True,
    ) -> None:
        self._records: list[PacketRecord] = []
        self._pending: list[tuple] = []
        self.pcap = pcap
        self.keep_records = keep_records
        self.sinks: list[Callable[[PacketRecord], None]] = []
        self.count = 0

    @property
    def records(self) -> list[PacketRecord]:
        """Captured rows, materialising any pending trains first."""
        if self._pending:
            self._flush_pending()
        return self._records

    @staticmethod
    def _rows(columns: tuple) -> list[PacketRecord]:
        times, srcs, dsts, sports, dports, sizes, seqs, protocol, flags, label, attack = columns
        return [
            PacketRecord(
                ts, src, dst, protocol, sport, dport, size, flags, seq, label, attack
            )
            for ts, src, dst, sport, dport, size, seq in zip(
                times, srcs, dsts, sports, dports, sizes, seqs
            )
        ]

    def _flush_pending(self) -> None:
        pending, self._pending = self._pending, []
        for columns in pending:
            self._records.extend(self._rows(columns))

    def __call__(self, packet: Packet, timestamp: float) -> None:
        if packet.ip is None:
            return
        record = PacketRecord.from_packet(packet, timestamp)
        self.count += 1
        if self.keep_records:
            if self._pending:
                self._flush_pending()
            self._records.append(record)
        if self.pcap is not None:
            self.pcap.write(packet, timestamp)
        for sink in self.sinks:
            sink(record)

    def observe_batch(self, batch: PacketBatch, times: np.ndarray) -> None:
        """Record a delivered train using its exact per-frame instants.

        Produces the same :class:`PacketRecord` rows, in the same order,
        as ``n`` scalar calls would — but builds them from the batch's
        int64 columns without materialising packets (unless a pcap writer
        needs the wire bytes), and defers even the row objects until
        :attr:`records` is read when no live sink needs them now.
        """
        n = len(batch)
        if n == 0:
            return
        self.count += n
        if self.keep_records or self.sinks:
            flags = int(batch.flags) if batch.protocol == PROTO_TCP else 0
            seq_col = (
                batch.seq.tolist()
                if (batch.protocol == PROTO_TCP and batch.seq is not None)
                else [0] * n
            )
            columns = (
                times.tolist(),
                batch.src_ip.tolist(),
                batch.dst_ip.tolist(),
                batch.src_port.tolist(),
                batch.dst_port.tolist(),
                batch.sizes.tolist(),
                seq_col,
                batch.protocol,
                flags,
                1 if batch.provenance.malicious else 0,
                batch.provenance.attack,
            )
            if self.sinks:
                records = self._rows(columns)
                if self.keep_records:
                    if self._pending:
                        self._flush_pending()
                    self._records.extend(records)
                for sink in self.sinks:
                    for record in records:
                        sink(record)
            elif self.keep_records:
                self._pending.append(columns)
        if self.pcap is not None:
            for i in range(n):
                self.pcap.write(batch.packet(i), float(times[i]))

    def subscribe(self, sink: Callable[[PacketRecord], None]) -> None:
        self.sinks.append(sink)

    def clear(self) -> None:
        self._records.clear()
        self._pending.clear()


class PcapWriter:
    """Writes frames to a libpcap file (nanosecond timestamps, Ethernet).

    Designed to survive an experiment dying mid-capture: each record
    (header + frame bytes) is written in one ``write()`` call so a crash
    cannot leave a record header without its data, :meth:`flush` pushes
    buffered records to the OS so readers see everything captured so
    far, and :meth:`close` is idempotent.  Use as a context manager —
    the file is flushed and closed even when the body raises.
    """

    def __init__(self, path: str | Path, snaplen: int = 65535) -> None:
        self.path = Path(path)
        self.snaplen = snaplen
        self._fh = open(self.path, "wb")
        self._fh.write(
            struct.pack(
                "<IHHiIII",
                PCAP_MAGIC,
                2,
                4,
                0,
                0,
                snaplen,
                PCAP_LINKTYPE_ETHERNET,
            )
        )
        self.packets_written = 0

    @property
    def closed(self) -> bool:
        return self._fh.closed

    def write(self, packet: Packet, timestamp: float) -> None:
        if self._fh.closed:
            raise ValueError(f"write() on closed pcap {self.path}")
        data = packet.to_bytes()[: self.snaplen]
        seconds = int(timestamp)
        nanos = int(round((timestamp - seconds) * 1e9))
        record = (
            struct.pack("<IIII", seconds, nanos, len(data), packet.size) + data
        )
        self._fh.write(record)
        self.packets_written += 1

    def flush(self) -> None:
        """Push buffered records to the OS (a readable capture prefix)."""
        if not self._fh.closed:
            self._fh.flush()

    def close(self) -> None:
        """Flush and close (idempotent)."""
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class PcapReader:
    """Reads frames back from a libpcap file written by :class:`PcapWriter`."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def __iter__(self) -> Iterator[tuple[float, Packet]]:
        with open(self.path, "rb") as fh:
            header = fh.read(24)
            if len(header) < 24:
                raise ValueError(f"{self.path} is not a pcap file")
            (magic,) = struct.unpack("<I", header[:4])
            if magic not in (PCAP_MAGIC, 0xA1B2C3D4):
                raise ValueError(f"{self.path}: unknown pcap magic {magic:#x}")
            nanos_resolution = magic == PCAP_MAGIC
            while True:
                record_header = fh.read(16)
                if len(record_header) < 16:
                    return
                seconds, frac, caplen, _origlen = struct.unpack("<IIII", record_header)
                data = fh.read(caplen)
                if len(data) < caplen:
                    # Truncated trailing record (writer died mid-flush):
                    # every complete record before it is still valid.
                    return
                scale = 1e-9 if nanos_resolution else 1e-6
                yield seconds + frac * scale, Packet.from_bytes(data)
