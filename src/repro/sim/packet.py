"""Packets and protocol headers.

A :class:`Packet` is a stack of typed headers plus an opaque payload.
Headers serialize to their real wire layouts (Ethernet II, IPv4, TCP, UDP)
so captures written by :class:`repro.sim.tracing.PcapWriter` open in any
standard pcap tool, and header sizes contribute correctly to transmission
delay on simulated channels.

Packets also carry out-of-band ``provenance`` metadata (which process
created them, and whether that process was a botnet attack module).  The
provenance never appears on the wire or in any feature the IDS sees; it
exists solely so captures can be ground-truth labelled, mirroring how the
paper labels traffic by knowing which container emitted it.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field, replace

from repro.sim.address import Ipv4Address, MacAddress

ETHERTYPE_IPV4 = 0x0800
PROTO_TCP = 6
PROTO_UDP = 17

ETHERNET_HEADER_LEN = 14
IPV4_HEADER_LEN = 20
TCP_HEADER_LEN = 20
UDP_HEADER_LEN = 8


class TcpFlags(enum.IntFlag):
    """TCP control flags (subset used by the testbed and the IDS features)."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20


@dataclass(frozen=True, slots=True)
class EthernetHeader:
    """Ethernet II frame header."""

    src: MacAddress
    dst: MacAddress
    ethertype: int = ETHERTYPE_IPV4

    size = ETHERNET_HEADER_LEN

    def to_bytes(self) -> bytes:
        return struct.pack(
            "!6s6sH",
            self.dst.value.to_bytes(6, "big"),
            self.src.value.to_bytes(6, "big"),
            self.ethertype,
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "EthernetHeader":
        dst, src, ethertype = struct.unpack("!6s6sH", data[:ETHERNET_HEADER_LEN])
        return cls(
            src=MacAddress(int.from_bytes(src, "big")),
            dst=MacAddress(int.from_bytes(dst, "big")),
            ethertype=ethertype,
        )


@dataclass(frozen=True, slots=True)
class Ipv4Header:
    """IPv4 header (no options)."""

    src: Ipv4Address
    dst: Ipv4Address
    protocol: int
    ttl: int = 64
    identification: int = 0
    total_length: int = 0  # filled by serialization when zero

    size = IPV4_HEADER_LEN

    def to_bytes(self, payload_len: int = 0) -> bytes:
        total = self.total_length or (IPV4_HEADER_LEN + payload_len)
        header = struct.pack(
            "!BBHHHBBH4s4s",
            0x45,  # version 4, IHL 5
            0,  # DSCP/ECN
            total,
            self.identification & 0xFFFF,
            0,  # flags/fragment offset
            self.ttl,
            self.protocol,
            0,  # checksum placeholder
            self.src.value.to_bytes(4, "big"),
            self.dst.value.to_bytes(4, "big"),
        )
        checksum = _ipv4_checksum(header)
        return header[:10] + struct.pack("!H", checksum) + header[12:]

    @classmethod
    def from_bytes(cls, data: bytes) -> "Ipv4Header":
        (_vihl, _tos, total, ident, _frag, ttl, proto, _ck, src, dst) = struct.unpack(
            "!BBHHHBBH4s4s", data[:IPV4_HEADER_LEN]
        )
        return cls(
            src=Ipv4Address(int.from_bytes(src, "big")),
            dst=Ipv4Address(int.from_bytes(dst, "big")),
            protocol=proto,
            ttl=ttl,
            identification=ident,
            total_length=total,
        )


@dataclass(frozen=True, slots=True)
class TcpHeader:
    """TCP header (no options)."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: TcpFlags = TcpFlags(0)
    window: int = 65535

    size = TCP_HEADER_LEN

    def to_bytes(self) -> bytes:
        return struct.pack(
            "!HHIIBBHHH",
            self.src_port,
            self.dst_port,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            (TCP_HEADER_LEN // 4) << 4,
            int(self.flags),
            self.window,
            0,  # checksum (not computed; pcap tools tolerate zero)
            0,  # urgent pointer
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "TcpHeader":
        (sport, dport, seq, ack, _off, flags, window, _ck, _urg) = struct.unpack(
            "!HHIIBBHHH", data[:TCP_HEADER_LEN]
        )
        return cls(sport, dport, seq, ack, TcpFlags(flags), window)


@dataclass(frozen=True, slots=True)
class UdpHeader:
    """UDP header."""

    src_port: int
    dst_port: int
    length: int = UDP_HEADER_LEN

    size = UDP_HEADER_LEN

    def to_bytes(self) -> bytes:
        return struct.pack("!HHHH", self.src_port, self.dst_port, self.length, 0)

    @classmethod
    def from_bytes(cls, data: bytes) -> "UdpHeader":
        sport, dport, length, _ck = struct.unpack("!HHHH", data[:UDP_HEADER_LEN])
        return cls(sport, dport, length)


def _ipv4_checksum(header: bytes) -> int:
    """Standard ones-complement sum over 16-bit words."""
    total = 0
    for i in range(0, len(header), 2):
        total += (header[i] << 8) | header[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


@dataclass(frozen=True, slots=True)
class Provenance:
    """Out-of-band origin tag used only for ground-truth labelling."""

    origin: str = "unknown"
    malicious: bool = False
    attack: str | None = None


BENIGN = Provenance(origin="app", malicious=False)


@dataclass(frozen=True, slots=True)
class Packet:
    """An immutable packet: Ethernet/IPv4/transport headers + payload.

    ``payload`` is application data as bytes; ``payload_len`` lets bulk
    transfers model large payloads without materialising the bytes (the
    wire format pads with zeros on serialization).
    """

    eth: EthernetHeader | None = None
    ip: Ipv4Header | None = None
    tcp: TcpHeader | None = None
    udp: UdpHeader | None = None
    payload: bytes = b""
    payload_len: int | None = None
    provenance: Provenance = BENIGN
    app_data: object | None = field(default=None, compare=False)

    @property
    def data_len(self) -> int:
        """Length of the application payload in bytes."""
        return self.payload_len if self.payload_len is not None else len(self.payload)

    @property
    def size(self) -> int:
        """Total on-wire size in bytes, headers included."""
        size = self.data_len
        for header in (self.eth, self.ip, self.tcp, self.udp):
            if header is not None:
                size += header.size
        return size

    def with_eth(self, eth: EthernetHeader) -> "Packet":
        """Return a copy with the Ethernet header replaced (L2 framing)."""
        return replace(self, eth=eth)

    def to_bytes(self) -> bytes:
        """Serialize to real wire format (for pcap export)."""
        body = self.payload + b"\x00" * (self.data_len - len(self.payload))
        if self.tcp is not None:
            segment = self.tcp.to_bytes() + body
        elif self.udp is not None:
            udp = replace(self.udp, length=UDP_HEADER_LEN + len(body))
            segment = udp.to_bytes() + body
        else:
            segment = body
        if self.ip is not None:
            segment = self.ip.to_bytes(payload_len=len(segment)) + segment
        if self.eth is not None:
            segment = self.eth.to_bytes() + segment
        return segment

    @classmethod
    def from_bytes(cls, data: bytes) -> "Packet":
        """Parse a wire-format frame back into structured headers."""
        eth = EthernetHeader.from_bytes(data)
        offset = ETHERNET_HEADER_LEN
        ip = tcp = udp = None
        if eth.ethertype == ETHERTYPE_IPV4:
            ip = Ipv4Header.from_bytes(data[offset:])
            offset += IPV4_HEADER_LEN
            if ip.protocol == PROTO_TCP:
                tcp = TcpHeader.from_bytes(data[offset:])
                offset += TCP_HEADER_LEN
            elif ip.protocol == PROTO_UDP:
                udp = UdpHeader.from_bytes(data[offset:])
                offset += UDP_HEADER_LEN
        return cls(eth=eth, ip=ip, tcp=tcp, udp=udp, payload=data[offset:])
