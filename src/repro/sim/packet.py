"""Packets and protocol headers.

A :class:`Packet` is a stack of typed headers plus an opaque payload.
Headers serialize to their real wire layouts (Ethernet II, IPv4, TCP, UDP)
so captures written by :class:`repro.sim.tracing.PcapWriter` open in any
standard pcap tool, and header sizes contribute correctly to transmission
delay on simulated channels.

Packets also carry out-of-band ``provenance`` metadata (which process
created them, and whether that process was a botnet attack module).  The
provenance never appears on the wire or in any feature the IDS sees; it
exists solely so captures can be ground-truth labelled, mirroring how the
paper labels traffic by knowing which container emitted it.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field, replace
from typing import Iterator

import numpy as np

from repro.sim.address import Ipv4Address, MacAddress

ETHERTYPE_IPV4 = 0x0800
PROTO_TCP = 6
PROTO_UDP = 17

ETHERNET_HEADER_LEN = 14
IPV4_HEADER_LEN = 20
TCP_HEADER_LEN = 20
UDP_HEADER_LEN = 8


class TcpFlags(enum.IntFlag):
    """TCP control flags (subset used by the testbed and the IDS features)."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20


@dataclass(frozen=True, slots=True)
class EthernetHeader:
    """Ethernet II frame header."""

    src: MacAddress
    dst: MacAddress
    ethertype: int = ETHERTYPE_IPV4

    size = ETHERNET_HEADER_LEN

    def to_bytes(self) -> bytes:
        return struct.pack(
            "!6s6sH",
            self.dst.value.to_bytes(6, "big"),
            self.src.value.to_bytes(6, "big"),
            self.ethertype,
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "EthernetHeader":
        dst, src, ethertype = struct.unpack("!6s6sH", data[:ETHERNET_HEADER_LEN])
        return cls(
            src=MacAddress(int.from_bytes(src, "big")),
            dst=MacAddress(int.from_bytes(dst, "big")),
            ethertype=ethertype,
        )


@dataclass(frozen=True, slots=True)
class Ipv4Header:
    """IPv4 header (no options)."""

    src: Ipv4Address
    dst: Ipv4Address
    protocol: int
    ttl: int = 64
    identification: int = 0
    total_length: int = 0  # filled by serialization when zero

    size = IPV4_HEADER_LEN

    def to_bytes(self, payload_len: int = 0) -> bytes:
        total = self.total_length or (IPV4_HEADER_LEN + payload_len)
        header = struct.pack(
            "!BBHHHBBH4s4s",
            0x45,  # version 4, IHL 5
            0,  # DSCP/ECN
            total,
            self.identification & 0xFFFF,
            0,  # flags/fragment offset
            self.ttl,
            self.protocol,
            0,  # checksum placeholder
            self.src.value.to_bytes(4, "big"),
            self.dst.value.to_bytes(4, "big"),
        )
        checksum = _ipv4_checksum(header)
        return header[:10] + struct.pack("!H", checksum) + header[12:]

    @classmethod
    def from_bytes(cls, data: bytes) -> "Ipv4Header":
        (_vihl, _tos, total, ident, _frag, ttl, proto, _ck, src, dst) = struct.unpack(
            "!BBHHHBBH4s4s", data[:IPV4_HEADER_LEN]
        )
        return cls(
            src=Ipv4Address(int.from_bytes(src, "big")),
            dst=Ipv4Address(int.from_bytes(dst, "big")),
            protocol=proto,
            ttl=ttl,
            identification=ident,
            total_length=total,
        )


@dataclass(frozen=True, slots=True)
class TcpHeader:
    """TCP header (no options)."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: TcpFlags = TcpFlags(0)
    window: int = 65535

    size = TCP_HEADER_LEN

    def to_bytes(self) -> bytes:
        return struct.pack(
            "!HHIIBBHHH",
            self.src_port,
            self.dst_port,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            (TCP_HEADER_LEN // 4) << 4,
            int(self.flags),
            self.window,
            0,  # checksum (not computed; pcap tools tolerate zero)
            0,  # urgent pointer
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "TcpHeader":
        (sport, dport, seq, ack, _off, flags, window, _ck, _urg) = struct.unpack(
            "!HHIIBBHHH", data[:TCP_HEADER_LEN]
        )
        return cls(sport, dport, seq, ack, TcpFlags(flags), window)


@dataclass(frozen=True, slots=True)
class UdpHeader:
    """UDP header."""

    src_port: int
    dst_port: int
    length: int = UDP_HEADER_LEN

    size = UDP_HEADER_LEN

    def to_bytes(self) -> bytes:
        return struct.pack("!HHHH", self.src_port, self.dst_port, self.length, 0)

    @classmethod
    def from_bytes(cls, data: bytes) -> "UdpHeader":
        sport, dport, length, _ck = struct.unpack("!HHHH", data[:UDP_HEADER_LEN])
        return cls(sport, dport, length)


def _ipv4_checksum(header: bytes) -> int:
    """Standard ones-complement sum over 16-bit words."""
    total = 0
    for i in range(0, len(header), 2):
        total += (header[i] << 8) | header[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


@dataclass(frozen=True, slots=True)
class Provenance:
    """Out-of-band origin tag used only for ground-truth labelling."""

    origin: str = "unknown"
    malicious: bool = False
    attack: str | None = None


BENIGN = Provenance(origin="app", malicious=False)


@dataclass(frozen=True, slots=True)
class Packet:
    """An immutable packet: Ethernet/IPv4/transport headers + payload.

    ``payload`` is application data as bytes; ``payload_len`` lets bulk
    transfers model large payloads without materialising the bytes (the
    wire format pads with zeros on serialization).
    """

    eth: EthernetHeader | None = None
    ip: Ipv4Header | None = None
    tcp: TcpHeader | None = None
    udp: UdpHeader | None = None
    payload: bytes = b""
    payload_len: int | None = None
    provenance: Provenance = BENIGN
    app_data: object | None = field(default=None, compare=False)

    @property
    def data_len(self) -> int:
        """Length of the application payload in bytes."""
        return self.payload_len if self.payload_len is not None else len(self.payload)

    @property
    def size(self) -> int:
        """Total on-wire size in bytes, headers included."""
        size = self.data_len
        for header in (self.eth, self.ip, self.tcp, self.udp):
            if header is not None:
                size += header.size
        return size

    def with_eth(self, eth: EthernetHeader) -> "Packet":
        """Return a copy with the Ethernet header replaced (L2 framing)."""
        return replace(self, eth=eth)

    def to_bytes(self) -> bytes:
        """Serialize to real wire format (for pcap export)."""
        body = self.payload + b"\x00" * (self.data_len - len(self.payload))
        if self.tcp is not None:
            segment = self.tcp.to_bytes() + body
        elif self.udp is not None:
            udp = replace(self.udp, length=UDP_HEADER_LEN + len(body))
            segment = udp.to_bytes() + body
        else:
            segment = body
        if self.ip is not None:
            segment = self.ip.to_bytes(payload_len=len(segment)) + segment
        if self.eth is not None:
            segment = self.eth.to_bytes() + segment
        return segment

    @classmethod
    def from_bytes(cls, data: bytes) -> "Packet":
        """Parse a wire-format frame back into structured headers."""
        eth = EthernetHeader.from_bytes(data)
        offset = ETHERNET_HEADER_LEN
        ip = tcp = udp = None
        if eth.ethertype == ETHERTYPE_IPV4:
            ip = Ipv4Header.from_bytes(data[offset:])
            offset += IPV4_HEADER_LEN
            if ip.protocol == PROTO_TCP:
                tcp = TcpHeader.from_bytes(data[offset:])
                offset += TCP_HEADER_LEN
            elif ip.protocol == PROTO_UDP:
                udp = UdpHeader.from_bytes(data[offset:])
                offset += UDP_HEADER_LEN
        return cls(eth=eth, ip=ip, tcp=tcp, udp=udp, payload=data[offset:])


#: app_data marker for frames whose next hop MAC could not be resolved
#: (set by the node L3 send path, dropped on receive).
UNRESOLVED_MARKER = "__unresolved__"


def _column(value: object, n: int) -> np.ndarray:
    """Coerce a scalar or sequence into an ``int64`` column of length ``n``."""
    arr = np.asarray(value, dtype=np.int64)
    if arr.ndim == 0:
        return np.full(n, int(arr), dtype=np.int64)
    if arr.shape != (n,):
        raise ValueError(f"column shape {arr.shape} != ({n},)")
    return arr


def _object_column(value: object, n: int) -> tuple | None:
    """Coerce an optional per-row object sequence into a tuple of length ``n``."""
    if value is None:
        return None
    values = tuple(value)  # type: ignore[call-overload]
    if len(values) != n:
        raise ValueError(f"object column length {len(values)} != {n}")
    return values


def _take_objects(values: tuple, selector: object, n: int) -> tuple:
    """Apply a numpy-style selector (slice/mask/indices) to a tuple column."""
    if isinstance(selector, slice):
        return values[selector]
    indices = np.arange(n)[selector]
    return tuple(values[int(i)] for i in indices)


@dataclass(slots=True)
class PacketBatch:
    """Struct-of-arrays view of many same-shaped packets (the flood path).

    One batch models ``n`` packets that share every *structural* attribute
    (protocol, TCP flags, TTL, provenance, L2 framing) while the per-packet
    fields (addresses, ports, sequence numbers, payload lengths) live in
    int64 numpy columns.  Attack modules emit batches; queues and channels
    move them as units; :meth:`packet` materialises any row back into an
    ordinary :class:`Packet` so scalar consumers stay correct.

    IP addresses are stored as raw 32-bit values (``Ipv4Address.value``)
    and MACs as shared scalars — flood frames from one device always carry
    one ``(src_mac, dst_mac)`` pair.

    The benign plane additionally threads literal payload bytes and
    application metadata through ``payloads``/``app_data``: optional
    per-row tuple columns that materialise back onto scalar
    :class:`Packet` rows bit-for-bit (``None`` means every row has an
    empty payload / no app metadata, the flood-path common case).
    """

    protocol: int
    src_ip: np.ndarray
    dst_ip: np.ndarray
    src_port: np.ndarray
    dst_port: np.ndarray
    payload_len: np.ndarray
    seq: np.ndarray | None = None
    ack: np.ndarray | None = None
    flags: TcpFlags = TcpFlags(0)
    ttl: int = 64
    provenance: Provenance = BENIGN
    src_mac: MacAddress | None = None
    dst_mac: MacAddress | None = None
    unresolved: bool = False
    payloads: tuple | None = None
    app_data: tuple | None = None

    # ------------------------------------------------------------------
    # Construction helpers

    @classmethod
    def tcp_batch(
        cls,
        n: int,
        *,
        src_ip: object,
        dst_ip: object,
        src_port: object,
        dst_port: object,
        seq: object = 0,
        ack: object = 0,
        flags: TcpFlags = TcpFlags(0),
        payload_len: object = 0,
        ttl: int = 64,
        provenance: Provenance = BENIGN,
        payloads: object = None,
        app_data: object = None,
    ) -> "PacketBatch":
        return cls(
            protocol=PROTO_TCP,
            src_ip=_column(src_ip, n),
            dst_ip=_column(dst_ip, n),
            src_port=_column(src_port, n),
            dst_port=_column(dst_port, n),
            payload_len=_column(payload_len, n),
            seq=_column(seq, n),
            ack=_column(ack, n),
            flags=flags,
            ttl=ttl,
            provenance=provenance,
            payloads=_object_column(payloads, n),
            app_data=_object_column(app_data, n),
        )

    @classmethod
    def udp_batch(
        cls,
        n: int,
        *,
        src_ip: object,
        dst_ip: object,
        src_port: object,
        dst_port: object,
        payload_len: object = 0,
        ttl: int = 64,
        provenance: Provenance = BENIGN,
        payloads: object = None,
        app_data: object = None,
    ) -> "PacketBatch":
        return cls(
            protocol=PROTO_UDP,
            src_ip=_column(src_ip, n),
            dst_ip=_column(dst_ip, n),
            src_port=_column(src_port, n),
            dst_port=_column(dst_port, n),
            payload_len=_column(payload_len, n),
            ttl=ttl,
            provenance=provenance,
            payloads=_object_column(payloads, n),
            app_data=_object_column(app_data, n),
        )

    # ------------------------------------------------------------------
    # Shape and sizes

    def __len__(self) -> int:
        return int(self.src_ip.shape[0])

    @property
    def header_size(self) -> int:
        """Per-packet header bytes (identical across the batch)."""
        size = IPV4_HEADER_LEN
        size += TCP_HEADER_LEN if self.protocol == PROTO_TCP else UDP_HEADER_LEN
        if self.src_mac is not None:
            size += ETHERNET_HEADER_LEN
        return size

    @property
    def sizes(self) -> np.ndarray:
        """On-wire size of each packet in bytes (int64 column)."""
        return self.payload_len + self.header_size

    @property
    def size(self) -> int:
        """Total on-wire bytes across the batch."""
        return int(self.sizes.sum())

    # ------------------------------------------------------------------
    # Transformations (all return new batches sharing columns when possible)

    def _replace_columns(self, **overrides: object) -> "PacketBatch":
        kwargs = dict(
            protocol=self.protocol,
            src_ip=self.src_ip,
            dst_ip=self.dst_ip,
            src_port=self.src_port,
            dst_port=self.dst_port,
            payload_len=self.payload_len,
            seq=self.seq,
            ack=self.ack,
            flags=self.flags,
            ttl=self.ttl,
            provenance=self.provenance,
            src_mac=self.src_mac,
            dst_mac=self.dst_mac,
            unresolved=self.unresolved,
            payloads=self.payloads,
            app_data=self.app_data,
        )
        kwargs.update(overrides)
        return PacketBatch(**kwargs)  # type: ignore[arg-type]

    def with_macs(
        self,
        src_mac: MacAddress,
        dst_mac: MacAddress,
        *,
        unresolved: bool = False,
    ) -> "PacketBatch":
        """L2-frame the batch (adds Ethernet header bytes to ``sizes``)."""
        return self._replace_columns(
            src_mac=src_mac, dst_mac=dst_mac, unresolved=unresolved
        )

    def with_ttl(self, ttl: int) -> "PacketBatch":
        """Return a copy with a new TTL and the L2 framing stripped."""
        return self._replace_columns(ttl=ttl, src_mac=None, dst_mac=None)

    def _index(self, selector: object) -> "PacketBatch":
        n = len(self)
        return self._replace_columns(
            src_ip=self.src_ip[selector],
            dst_ip=self.dst_ip[selector],
            src_port=self.src_port[selector],
            dst_port=self.dst_port[selector],
            payload_len=self.payload_len[selector],
            seq=None if self.seq is None else self.seq[selector],
            ack=None if self.ack is None else self.ack[selector],
            payloads=(
                None
                if self.payloads is None
                else _take_objects(self.payloads, selector, n)
            ),
            app_data=(
                None
                if self.app_data is None
                else _take_objects(self.app_data, selector, n)
            ),
        )

    def slice(self, start: int, stop: int | None = None) -> "PacketBatch":
        return self._index(np.s_[start:stop])

    def split(self, k: int) -> tuple["PacketBatch", "PacketBatch"]:
        """Split into the first ``k`` packets and the remainder."""
        return self.slice(0, k), self.slice(k)

    def compress(self, mask: np.ndarray) -> "PacketBatch":
        """Keep only packets where ``mask`` is True."""
        return self._index(mask)

    def take(self, indices: np.ndarray) -> "PacketBatch":
        return self._index(indices)

    # ------------------------------------------------------------------
    # Materialisation back to scalar packets

    def packet(self, i: int) -> Packet:
        """Materialise row ``i`` as an ordinary :class:`Packet`."""
        ip = Ipv4Header(
            src=Ipv4Address(int(self.src_ip[i])),
            dst=Ipv4Address(int(self.dst_ip[i])),
            protocol=self.protocol,
            ttl=self.ttl,
        )
        tcp = udp = None
        if self.protocol == PROTO_TCP:
            tcp = TcpHeader(
                src_port=int(self.src_port[i]),
                dst_port=int(self.dst_port[i]),
                seq=0 if self.seq is None else int(self.seq[i]),
                ack=0 if self.ack is None else int(self.ack[i]),
                flags=self.flags,
            )
        else:
            udp = UdpHeader(
                src_port=int(self.src_port[i]),
                dst_port=int(self.dst_port[i]),
                length=UDP_HEADER_LEN + int(self.payload_len[i]),
            )
        eth = None
        if self.src_mac is not None and self.dst_mac is not None:
            eth = EthernetHeader(src=self.src_mac, dst=self.dst_mac)
        app_data: object | None
        if self.unresolved:
            app_data = UNRESOLVED_MARKER
        elif self.app_data is not None:
            app_data = self.app_data[i]
        else:
            app_data = None
        return Packet(
            eth=eth,
            ip=ip,
            tcp=tcp,
            udp=udp,
            payload=b"" if self.payloads is None else self.payloads[i],
            payload_len=int(self.payload_len[i]),
            provenance=self.provenance,
            app_data=app_data,
        )

    def packets(self) -> Iterator[Packet]:
        for i in range(len(self)):
            yield self.packet(i)
