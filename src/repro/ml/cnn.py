"""The 1-D CNN intrusion detector (the paper's TensorFlow model).

Packet feature vectors are treated as 1-channel signals; two
conv/ReLU/pool blocks extract local co-occurrence patterns across the
feature dimension, and a dense head classifies benign vs malicious.
Training is mini-batch Adam over softmax cross-entropy.
"""

from __future__ import annotations

import numpy as np

from repro.ml.layers import (
    Adam,
    Conv1D,
    Dense,
    Dropout,
    Flatten,
    Layer,
    MaxPool1D,
    ReLU,
    SoftmaxCrossEntropy,
)
from repro.ml.preprocessing import NotFittedError


class Sequential:
    """A plain layer stack with Adam training and weight (de)serialisation."""

    def __init__(self, layers: list[Layer]) -> None:
        self.layers = layers
        self.loss = SoftmaxCrossEntropy()
        self.history: list[float] = []

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad: np.ndarray) -> None:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)

    def params(self) -> list[np.ndarray]:
        out: list[np.ndarray] = []
        for layer in self.layers:
            out.extend(layer.params())
        return out

    def grads(self) -> list[np.ndarray]:
        out: list[np.ndarray] = []
        for layer in self.layers:
            out.extend(layer.grads())
        return out

    def n_parameters(self) -> int:
        return sum(p.size for p in self.params())

    def get_weights(self) -> list[np.ndarray]:
        """Copies of all trainable arrays (for federated averaging)."""
        return [p.copy() for p in self.params()]

    def set_weights(self, weights: list[np.ndarray]) -> None:
        params = self.params()
        if len(weights) != len(params):
            raise ValueError(
                f"weight count mismatch: {len(weights)} given, {len(params)} expected"
            )
        for param, weight in zip(params, weights):
            if param.shape != weight.shape:
                raise ValueError(f"shape mismatch: {weight.shape} vs {param.shape}")
            param[...] = weight

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        epochs: int = 5,
        batch_size: int = 128,
        lr: float = 1e-3,
        seed: int = 0,
        verbose: bool = False,
    ) -> "Sequential":
        rng = np.random.default_rng(seed)
        optimizer = Adam(self.params(), lr=lr)
        n = len(X)
        for epoch in range(epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                logits = self.forward(X[idx], training=True)
                loss, _ = self.loss.forward(logits, y[idx])
                self.backward(self.loss.backward())
                optimizer.step(self.grads())
                epoch_loss += loss
                batches += 1
            mean_loss = epoch_loss / max(batches, 1)
            self.history.append(mean_loss)
            if verbose:
                print(f"epoch {epoch + 1}/{epochs} loss={mean_loss:.4f}")
        return self

    def predict(self, X: np.ndarray, batch_size: int = 1024) -> np.ndarray:
        return np.argmax(self.predict_proba(X, batch_size=batch_size), axis=1)

    def predict_proba(self, X: np.ndarray, batch_size: int = 1024) -> np.ndarray:
        chunks = []
        for start in range(0, len(X), batch_size):
            logits = self.forward(X[start : start + batch_size], training=False)
            shifted = logits - logits.max(axis=1, keepdims=True)
            exp = np.exp(shifted)
            chunks.append(exp / exp.sum(axis=1, keepdims=True))
        return np.vstack(chunks)


class CnnClassifier:
    """The IDS-facing CNN: accepts flat feature matrices.

    Architecture (for ``n_features`` input columns)::

        reshape (n, 1, F)
        Conv1D(1 -> c1, k=3, same) -> ReLU -> MaxPool(2)
        Conv1D(c1 -> c2, k=3, same) -> ReLU -> MaxPool(2)
        Flatten -> Dense(hidden) -> ReLU -> Dropout -> Dense(2)
    """

    def __init__(
        self,
        n_features: int,
        conv_channels: tuple[int, int] = (16, 32),
        hidden: int = 128,
        dropout: float = 0.3,
        epochs: int = 6,
        batch_size: int = 128,
        lr: float = 1e-3,
        inference_batch: int = 64,
        random_state: int = 0,
    ) -> None:
        self.n_features = n_features
        self.conv_channels = conv_channels
        self.hidden = hidden
        self.dropout = dropout
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        # Small inference batches bound the im2col working set — the
        # memory-constrained-IoT deployment posture Table II measures.
        self.inference_batch = inference_batch
        self.random_state = random_state
        self.net: Sequential | None = None

    def _build(self) -> Sequential:
        rng = np.random.default_rng(self.random_state)
        c1, c2 = self.conv_channels
        pooled = (self.n_features // 2) // 2
        if pooled < 1:
            raise ValueError(
                f"n_features={self.n_features} too small for two pooling stages"
            )
        return Sequential(
            [
                Conv1D(1, c1, kernel_size=3, rng=rng, padding="same"),
                ReLU(),
                MaxPool1D(2),
                Conv1D(c1, c2, kernel_size=3, rng=rng, padding="same"),
                ReLU(),
                MaxPool1D(2),
                Flatten(),
                Dense(pooled * c2, self.hidden, rng=rng),
                ReLU(),
                Dropout(self.dropout, rng=rng),
                Dense(self.hidden, 2, rng=rng),
            ]
        )

    @staticmethod
    def _as_signal(X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        return X.reshape(len(X), 1, X.shape[1])

    def fit(self, X: np.ndarray, y: np.ndarray) -> "CnnClassifier":
        self.net = self._build()
        self.net.fit(
            self._as_signal(X),
            np.asarray(y, dtype=int),
            epochs=self.epochs,
            batch_size=self.batch_size,
            lr=self.lr,
            seed=self.random_state,
        )
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.net is None:
            raise NotFittedError("CnnClassifier.predict before fit")
        return self.net.predict(self._as_signal(X), batch_size=self.inference_batch)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.net is None:
            raise NotFittedError("CnnClassifier.predict_proba before fit")
        return self.net.predict_proba(self._as_signal(X), batch_size=self.inference_batch)

    def n_parameters(self) -> int:
        net = self.net if self.net is not None else self._build()
        return net.n_parameters()
