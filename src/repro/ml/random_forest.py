"""Random Forest: bagged CART trees with per-node feature subsampling.

Follows the construction the paper describes (§IV-B): bootstrap-sampled
training sets per tree, random feature subsets per split, and majority
voting at prediction time.
"""

from __future__ import annotations

import numpy as np

from repro.ml.preprocessing import NotFittedError
from repro.ml.tree import DecisionTreeClassifier


class RandomForestClassifier:
    """An ensemble of :class:`DecisionTreeClassifier` with majority vote."""

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: int | None = 12,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "sqrt",
        bootstrap: bool = True,
        random_state: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.trees_: list[DecisionTreeClassifier] = []
        self.n_classes_: int = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        self.n_classes_ = int(y.max()) + 1
        rng = np.random.default_rng(self.random_state)
        self.trees_ = []
        n = len(X)
        for i in range(self.n_estimators):
            if self.bootstrap:
                idx = rng.integers(0, n, size=n)
            else:
                idx = np.arange(n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2**31)),
            )
            tree.fit(X[idx], y[idx])
            self.trees_.append(tree)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Mean of the trees' leaf class frequencies."""
        if not self.trees_:
            raise NotFittedError("RandomForestClassifier.predict before fit")
        X = np.asarray(X, dtype=float)
        proba = np.zeros((len(X), self.n_classes_))
        for tree in self.trees_:
            proba += tree.predict_proba(X)
        return proba / self.n_estimators

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Majority vote across trees."""
        if not self.trees_:
            raise NotFittedError("RandomForestClassifier.predict before fit")
        X = np.asarray(X, dtype=float)
        votes = np.zeros((len(X), self.n_classes_), dtype=int)
        for tree in self.trees_:
            predictions = tree.predict(X)
            votes[np.arange(len(X)), predictions] += 1
        return np.argmax(votes, axis=1)

    @property
    def total_nodes_(self) -> int:
        """Sum of node counts across trees (model-size proxy)."""
        return sum(tree.node_count_ for tree in self.trees_)
