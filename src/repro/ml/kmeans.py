"""K-Means clustering, including the unsupervised variant the paper cites.

Three layers:

* :class:`KMeans` — classic Lloyd iteration with k-means++ seeding;
* :class:`UnsupervisedKMeans` — the entropy-penalised U-k-means of
  Sinaga & Yang (2020), the paper's §IV-B reference: it starts from many
  candidate clusters, penalises each cluster's mixing proportion through
  an entropy term, and discards starved clusters, so the number of
  clusters is learned rather than given;
* :class:`KMeansDetector` — the IDS adapter: clusters the training
  features, labels each cluster by its majority ground-truth class, and
  classifies new packets by nearest centroid.
"""

from __future__ import annotations

import numpy as np

from repro.ml.preprocessing import NotFittedError


def _pairwise_sq_dists(X: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, (n_samples, n_centers)."""
    x_sq = np.sum(X**2, axis=1)[:, None]
    c_sq = np.sum(centers**2, axis=1)[None, :]
    return np.maximum(x_sq + c_sq - 2.0 * X @ centers.T, 0.0)


def _nearest_center(X: np.ndarray, centers: np.ndarray, chunk: int = 256) -> np.ndarray:
    """argmin over centers, computed in row chunks to bound the working set
    (the IDS meters per-window peak memory, Table II)."""
    out = np.empty(len(X), dtype=int)
    for start in range(0, len(X), chunk):
        block = X[start : start + chunk]
        out[start : start + chunk] = np.argmin(_pairwise_sq_dists(block, centers), axis=1)
    return out


def _kmeans_pp_init(X: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centers by D² sampling."""
    n = len(X)
    centers = np.empty((k, X.shape[1]))
    centers[0] = X[rng.integers(n)]
    closest = _pairwise_sq_dists(X, centers[:1]).ravel()
    for i in range(1, k):
        total = closest.sum()
        if total <= 0:
            centers[i:] = X[rng.integers(n, size=k - i)]
            break
        probabilities = closest / total
        centers[i] = X[rng.choice(n, p=probabilities)]
        closest = np.minimum(closest, _pairwise_sq_dists(X, centers[i : i + 1]).ravel())
    return centers


class KMeans:
    """Lloyd's algorithm with k-means++ initialisation."""

    def __init__(
        self,
        n_clusters: int = 8,
        max_iter: int = 100,
        tol: float = 1e-6,
        random_state: int = 0,
    ) -> None:
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        self.n_clusters = n_clusters
        self.max_iter = max_iter
        self.tol = tol
        self.random_state = random_state
        self.cluster_centers_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float = np.inf
        self.n_iter_: int = 0

    def fit(self, X: np.ndarray) -> "KMeans":
        X = np.asarray(X, dtype=float)
        if len(X) < self.n_clusters:
            raise ValueError(
                f"n_samples={len(X)} < n_clusters={self.n_clusters}"
            )
        rng = np.random.default_rng(self.random_state)
        centers = _kmeans_pp_init(X, self.n_clusters, rng)
        for iteration in range(self.max_iter):
            dists = _pairwise_sq_dists(X, centers)
            labels = np.argmin(dists, axis=1)
            new_centers = centers.copy()
            for cluster in range(self.n_clusters):
                members = X[labels == cluster]
                if len(members):
                    new_centers[cluster] = members.mean(axis=0)
            shift = float(np.max(np.abs(new_centers - centers)))
            centers = new_centers
            self.n_iter_ = iteration + 1
            if shift < self.tol:
                break
        dists = _pairwise_sq_dists(X, centers)
        self.labels_ = np.argmin(dists, axis=1)
        self.inertia_ = float(dists[np.arange(len(X)), self.labels_].sum())
        self.cluster_centers_ = centers
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Nearest-centroid cluster index per row."""
        if self.cluster_centers_ is None:
            raise NotFittedError("KMeans.predict before fit")
        X = np.asarray(X, dtype=float)
        return _nearest_center(X, self.cluster_centers_)

    def __getstate__(self) -> dict:
        # Per-sample training assignments are a fit artefact; dropping
        # them keeps saved models at centroid size (Table II).
        state = dict(self.__dict__)
        state["labels_"] = None
        return state


class UnsupervisedKMeans:
    """U-k-means (Sinaga & Yang 2020): learns the number of clusters.

    Each iteration assigns points to the cluster minimising
    ``||x - a_k||^2 - gamma * ln(alpha_k)`` where ``alpha_k`` are mixing
    proportions updated from the assignments; the entropy penalty starves
    clusters that explain little data, and clusters whose proportion
    drops below ``1/n`` are discarded.  ``gamma`` decays each iteration so
    the procedure converges to plain k-means on the surviving clusters.
    """

    def __init__(
        self,
        max_clusters: int = 20,
        max_iter: int = 60,
        gamma_decay: float = 0.9,
        gamma_scale: float = 0.5,
        tol: float = 1e-6,
        random_state: int = 0,
    ) -> None:
        if max_clusters < 2:
            raise ValueError(f"max_clusters must be >= 2, got {max_clusters}")
        if gamma_scale < 0:
            raise ValueError(f"gamma_scale must be >= 0, got {gamma_scale}")
        self.max_clusters = max_clusters
        self.max_iter = max_iter
        self.gamma_decay = gamma_decay
        self.gamma_scale = gamma_scale
        self.tol = tol
        self.random_state = random_state
        self.cluster_centers_: np.ndarray | None = None
        self.mixing_proportions_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.n_clusters_: int = 0
        self.n_iter_: int = 0

    def _entropy_rate(self, iteration: int) -> float:
        """Strength of the mixing-proportion entropy push (decays)."""
        return self.gamma_decay**iteration

    def fit(self, X: np.ndarray) -> "UnsupervisedKMeans":
        X = np.asarray(X, dtype=float)
        n = len(X)
        k = min(self.max_clusters, n)
        rng = np.random.default_rng(self.random_state)
        centers = _kmeans_pp_init(X, k, rng)
        alpha = np.full(k, 1.0 / k)
        # gamma is set from the scale of actual point-to-centre squared
        # distances so the -gamma*ln(alpha) penalty competes with them:
        # large clusters then absorb points whose distance margin is
        # smaller than the penalty gap (the paper's rich-get-richer
        # mechanism that starves spurious clusters).
        d2 = _pairwise_sq_dists(X, centers)
        gamma = self.gamma_scale * float(np.mean(d2.min(axis=1))) + 1e-12
        labels = np.zeros(n, dtype=int)
        for iteration in range(self.max_iter):
            penalty = -gamma * np.log(np.maximum(alpha, 1e-12))
            cost = _pairwise_sq_dists(X, centers) + penalty[None, :]
            new_labels = np.argmin(cost, axis=1)
            counts = np.bincount(new_labels, minlength=len(centers)).astype(float)
            proportions = counts / n
            # Entropy-penalised mixing update (Sinaga & Yang eq. 20):
            # clusters whose ln(alpha) falls below the mixture's mean
            # log-proportion are pushed further down and eventually
            # drop below the 1/n discard line.
            safe = np.maximum(proportions, 1e-12)
            mean_log = float(np.sum(safe * np.log(safe)))
            alpha = proportions + self._entropy_rate(iteration) * safe * (
                np.log(safe) - mean_log
            )
            alpha = np.maximum(alpha, 0.0)
            keep = alpha >= (1.0 / n)
            if keep.sum() < 1:
                keep = counts == counts.max()
            if not keep.all():
                centers = centers[keep]
                alpha = alpha[keep]
                total = alpha.sum()
                alpha = alpha / total if total > 0 else np.full(len(centers), 1.0 / len(centers))
                cost = _pairwise_sq_dists(X, centers) - gamma * np.log(
                    np.maximum(alpha, 1e-12)
                )[None, :]
                new_labels = np.argmin(cost, axis=1)
            new_centers = centers.copy()
            for cluster in range(len(centers)):
                members = X[new_labels == cluster]
                if len(members):
                    new_centers[cluster] = members.mean(axis=0)
            shift = float(np.max(np.abs(new_centers - centers))) if len(centers) else 0.0
            stable = np.array_equal(new_labels, labels) and shift < self.tol
            centers = new_centers
            labels = new_labels
            gamma *= self.gamma_decay
            self.n_iter_ = iteration + 1
            if stable and iteration > 0:
                break
        self.cluster_centers_ = centers
        self.mixing_proportions_ = np.bincount(
            labels, minlength=len(centers)
        ).astype(float) / n
        self.labels_ = labels
        self.n_clusters_ = len(centers)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Nearest-centroid cluster index per row."""
        if self.cluster_centers_ is None:
            raise NotFittedError("UnsupervisedKMeans.predict before fit")
        X = np.asarray(X, dtype=float)
        return _nearest_center(X, self.cluster_centers_)

    def __getstate__(self) -> dict:
        # See KMeans.__getstate__: keep saved models centroid-sized.
        state = dict(self.__dict__)
        state["labels_"] = None
        return state


class KMeansDetector:
    """Clusters traffic features, then labels clusters by majority class.

    This is the paper's K-Means IDS: unsupervised structure discovery
    with a thin supervised mapping from cluster to benign/malicious.
    With ``auto_k=True`` (default) it uses :class:`UnsupervisedKMeans`;
    otherwise plain :class:`KMeans` with ``n_clusters``.
    """

    def __init__(
        self,
        n_clusters: int = 8,
        auto_k: bool = True,
        max_clusters: int = 20,
        gamma_scale: float = 0.5,
        random_state: int = 0,
    ) -> None:
        self.n_clusters = n_clusters
        self.auto_k = auto_k
        self.max_clusters = max_clusters
        self.gamma_scale = gamma_scale
        self.random_state = random_state
        self.clusterer_: KMeans | UnsupervisedKMeans | None = None
        self.cluster_labels_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KMeansDetector":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        if self.auto_k:
            self.clusterer_ = UnsupervisedKMeans(
                max_clusters=self.max_clusters,
                gamma_scale=self.gamma_scale,
                random_state=self.random_state,
            )
        else:
            self.clusterer_ = KMeans(
                n_clusters=self.n_clusters, random_state=self.random_state
            )
        self.clusterer_.fit(X)
        assignments = self.clusterer_.labels_
        assert assignments is not None
        n_found = (
            self.clusterer_.n_clusters_
            if isinstance(self.clusterer_, UnsupervisedKMeans)
            else self.n_clusters
        )
        labels = np.zeros(n_found, dtype=int)
        overall_majority = int(np.bincount(y).argmax())
        for cluster in range(n_found):
            members = y[assignments == cluster]
            labels[cluster] = (
                int(np.bincount(members).argmax()) if len(members) else overall_majority
            )
        self.cluster_labels_ = labels
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Benign/malicious label via nearest labelled centroid."""
        if self.clusterer_ is None or self.cluster_labels_ is None:
            raise NotFittedError("KMeansDetector.predict before fit")
        return self.cluster_labels_[self.clusterer_.predict(X)]

    @property
    def n_clusters_(self) -> int:
        if self.cluster_labels_ is None:
            raise NotFittedError("detector not fitted")
        return len(self.cluster_labels_)
