"""Feature scaling and dataset splitting utilities."""

from __future__ import annotations

import numpy as np


class NotFittedError(RuntimeError):
    """Raised when transform/predict is called before fit."""


class StandardScaler:
    """Zero-mean unit-variance scaling; constant columns pass through."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"expected 2-D matrix, got shape {X.shape}")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0  # constant features stay constant, not NaN
        self.scale_ = std
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler.transform before fit")
        return (np.asarray(X, dtype=float) - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler.inverse_transform before fit")
        return np.asarray(X, dtype=float) * self.scale_ + self.mean_


class MinMaxScaler:
    """Scale features to [0, 1]; constant columns map to 0."""

    def __init__(self) -> None:
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"expected 2-D matrix, got shape {X.shape}")
        self.min_ = X.min(axis=0)
        span = X.max(axis=0) - self.min_
        span[span == 0.0] = 1.0
        self.range_ = span
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.min_ is None or self.range_ is None:
            raise NotFittedError("MinMaxScaler.transform before fit")
        return (np.asarray(X, dtype=float) - self.min_) / self.range_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.3,
    seed: int = 0,
    stratify: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle-split into train/test, optionally preserving class balance."""
    X = np.asarray(X)
    y = np.asarray(y)
    if len(X) != len(y):
        raise ValueError(f"X and y disagree on length: {len(X)} vs {len(y)}")
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = np.random.default_rng(seed)
    if stratify:
        train_idx: list[int] = []
        test_idx: list[int] = []
        for label in np.unique(y):
            members = np.flatnonzero(y == label)
            rng.shuffle(members)
            cut = int(round(len(members) * (1.0 - test_fraction)))
            train_idx.extend(members[:cut])
            test_idx.extend(members[cut:])
        train = np.array(sorted(train_idx))
        test = np.array(sorted(test_idx))
    else:
        order = rng.permutation(len(X))
        cut = int(round(len(X) * (1.0 - test_fraction)))
        train, test = np.sort(order[:cut]), np.sort(order[cut:])
    return X[train], X[test], y[train], y[test]


def one_hot(y: np.ndarray, n_classes: int) -> np.ndarray:
    """Integer labels -> one-hot rows."""
    y = np.asarray(y, dtype=int)
    out = np.zeros((len(y), n_classes))
    out[np.arange(len(y)), y] = 1.0
    return out
