"""Isolation Forest anomaly detector (paper §V future work).

Standard iForest: random axis-aligned splits isolate anomalies in short
paths.  The anomaly score follows Liu et al.'s ``2^(-E[h]/c(n))``
normalisation.  As a detector it can run fully unsupervised (threshold
from ``contamination``) or calibrate its threshold from labelled data.
"""

from __future__ import annotations

import math

import numpy as np

from repro.ml.preprocessing import NotFittedError


def _average_path_length(n: int) -> float:
    """c(n): average unsuccessful-search path length in a BST of n nodes."""
    if n <= 1:
        return 0.0
    if n == 2:
        return 1.0
    harmonic = math.log(n - 1) + 0.5772156649
    return 2.0 * harmonic - 2.0 * (n - 1) / n


class _IsolationTree:
    """One random isolation tree stored as parallel arrays."""

    __slots__ = ("feature", "threshold", "left", "right", "size")

    def __init__(self) -> None:
        self.feature: list[int] = []
        self.threshold: list[float] = []
        self.left: list[int] = []
        self.right: list[int] = []
        self.size: list[int] = []

    def build(self, X: np.ndarray, rng: np.random.Generator, max_depth: int) -> int:
        node = len(self.feature)
        self.feature.append(-1)
        self.threshold.append(0.0)
        self.left.append(-1)
        self.right.append(-1)
        self.size.append(len(X))
        if len(X) <= 1 or max_depth <= 0:
            return node
        spans = X.max(axis=0) - X.min(axis=0)
        candidates = np.flatnonzero(spans > 0)
        if candidates.size == 0:
            return node
        feature = int(rng.choice(candidates))
        low, high = X[:, feature].min(), X[:, feature].max()
        threshold = float(rng.uniform(low, high))
        mask = X[:, feature] < threshold
        if not mask.any() or mask.all():
            return node
        self.feature[node] = feature
        self.threshold[node] = threshold
        self.left[node] = self.build(X[mask], rng, max_depth - 1)
        self.right[node] = self.build(X[~mask], rng, max_depth - 1)
        return node

    def path_length(self, x: np.ndarray) -> float:
        node = 0
        depth = 0.0
        while self.feature[node] >= 0:
            node = (
                self.left[node]
                if x[self.feature[node]] < self.threshold[node]
                else self.right[node]
            )
            depth += 1.0
        return depth + _average_path_length(self.size[node])


class IsolationForestDetector:
    """iForest with optional supervised threshold calibration."""

    def __init__(
        self,
        n_estimators: int = 50,
        max_samples: int = 256,
        contamination: float = 0.5,
        random_state: int = 0,
    ) -> None:
        if not 0.0 < contamination < 1.0:
            raise ValueError(f"contamination must be in (0, 1), got {contamination}")
        self.n_estimators = n_estimators
        self.max_samples = max_samples
        self.contamination = contamination
        self.random_state = random_state
        self.trees_: list[_IsolationTree] = []
        self.sample_size_: int = 0
        self.threshold_: float = 0.5

    def fit(self, X: np.ndarray, y: np.ndarray | None = None) -> "IsolationForestDetector":
        """Fit the forest; with labels, profile benign traffic only.

        When ``y`` is given the trees are built from the *benign* rows
        (the IDS usage: model normal traffic, attacks of any volume then
        isolate quickly) and the threshold is chosen to best separate the
        labelled classes.  Unlabelled fits follow classic iForest with a
        ``contamination`` quantile threshold.
        """
        X = np.asarray(X, dtype=float)
        if y is not None:
            y = np.asarray(y, dtype=int)
            fit_pool = X[y == 0] if (y == 0).sum() >= 8 else X
        else:
            fit_pool = X
        rng = np.random.default_rng(self.random_state)
        self.sample_size_ = min(self.max_samples, len(fit_pool))
        max_depth = int(np.ceil(np.log2(max(self.sample_size_, 2))))
        self.trees_ = []
        for _ in range(self.n_estimators):
            idx = rng.choice(len(fit_pool), size=self.sample_size_, replace=False)
            tree = _IsolationTree()
            tree.build(fit_pool[idx], rng, max_depth)
            self.trees_.append(tree)
        scores = self.score_samples(X)
        if y is not None:
            # Supervised calibration: pick the threshold separating the
            # labelled classes best (scan candidate quantiles).
            best_acc, best_thr = 0.0, 0.5
            for q in np.linspace(0.02, 0.98, 49):
                thr = float(np.quantile(scores, q))
                acc = float(np.mean((scores >= thr).astype(int) == y))
                if acc > best_acc:
                    best_acc, best_thr = acc, thr
            self.threshold_ = best_thr
        else:
            self.threshold_ = float(np.quantile(scores, 1.0 - self.contamination))
        return self

    def score_samples(self, X: np.ndarray) -> np.ndarray:
        """Anomaly scores in (0, 1); higher = more anomalous."""
        if not self.trees_:
            raise NotFittedError("IsolationForestDetector.score_samples before fit")
        X = np.asarray(X, dtype=float)
        c = _average_path_length(self.sample_size_)
        depths = np.zeros(len(X))
        for tree in self.trees_:
            depths += np.array([tree.path_length(x) for x in X])
        depths /= len(self.trees_)
        return np.power(2.0, -depths / max(c, 1e-9))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """1 = anomalous (malicious), 0 = normal."""
        return (self.score_samples(X) >= self.threshold_).astype(int)
