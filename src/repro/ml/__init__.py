"""From-scratch machine learning (the scikit-learn / TensorFlow substitute).

Implements every model the paper evaluates — Random Forest
(:mod:`repro.ml.random_forest`), the entropy-penalised unsupervised
K-Means of Sinaga & Yang cited by the paper (:mod:`repro.ml.kmeans`), and
a 1-D CNN with Adam (:mod:`repro.ml.cnn`) — plus the future-work models
from §V (linear SVM, Isolation Forest, autoencoder) and the §VI federated
learning emulation (:mod:`repro.ml.federated`).  Shared infrastructure:
classification metrics (:mod:`repro.ml.metrics`), scalers and splits
(:mod:`repro.ml.preprocessing`), and PKL persistence with size metering
(:mod:`repro.ml.serialization`).
"""

from repro.ml.autoencoder import AutoencoderDetector
from repro.ml.cnn import CnnClassifier, Sequential
from repro.ml.isolation_forest import IsolationForestDetector
from repro.ml.kmeans import KMeans, KMeansDetector, UnsupervisedKMeans
from repro.ml.metrics import (
    ClassificationReport,
    accuracy_score,
    confusion_matrix,
    evaluate_classifier,
    f1_score,
    precision_score,
    recall_score,
)
from repro.ml.preprocessing import StandardScaler, train_test_split
from repro.ml.random_forest import RandomForestClassifier
from repro.ml.serialization import (
    ModelBundle,
    load_model,
    load_model_bundle,
    model_size_kb,
    save_model,
    save_model_bundle,
)
from repro.ml.svm import LinearSVM
from repro.ml.tree import DecisionTreeClassifier

__all__ = [
    "AutoencoderDetector",
    "ClassificationReport",
    "CnnClassifier",
    "DecisionTreeClassifier",
    "IsolationForestDetector",
    "KMeans",
    "KMeansDetector",
    "LinearSVM",
    "ModelBundle",
    "RandomForestClassifier",
    "Sequential",
    "StandardScaler",
    "UnsupervisedKMeans",
    "accuracy_score",
    "confusion_matrix",
    "evaluate_classifier",
    "f1_score",
    "load_model",
    "load_model_bundle",
    "model_size_kb",
    "precision_score",
    "recall_score",
    "save_model",
    "save_model_bundle",
    "train_test_split",
]
