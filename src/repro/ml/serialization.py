"""Model persistence: the paper's PKL files, plus size metering.

After training, each model is pickled ("we save each model in a PKL
file") and its on-disk size in kilobytes is one of Table II's
sustainability metrics.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Any


def save_model(model: Any, path: str | Path) -> int:
    """Pickle ``model`` to ``path``; returns the file size in bytes."""
    path = Path(path)
    with open(path, "wb") as fh:
        pickle.dump(model, fh, protocol=pickle.HIGHEST_PROTOCOL)
    return path.stat().st_size


def load_model(path: str | Path) -> Any:
    """Load a model previously written by :func:`save_model`.

    Only call on files this library itself produced — pickle executes
    arbitrary code on load, so never load untrusted model files.
    """
    with open(path, "rb") as fh:
        return pickle.load(fh)


def model_size_kb(model: Any) -> float:
    """In-memory pickled size in kilobytes (Table II's "Model Size")."""
    return len(pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)) / 1000.0
