"""Model persistence: the paper's PKL files, plus size metering.

After training, each model is pickled ("we save each model in a PKL
file") and its on-disk size in kilobytes is one of Table II's
sustainability metrics.

A :class:`ModelBundle` extends the bare PKL with everything needed to
*serve* the model: the fitted scaler, the feature-extractor
configuration, and arbitrary JSON metadata (training metrics, fit time,
model name).  Bundles are the trained-model artifact format of the
staged experiment pipeline (:mod:`repro.pipeline`).
"""

from __future__ import annotations

import json
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any


def save_model(model: Any, path: str | Path) -> int:
    """Pickle ``model`` to ``path``; returns the file size in bytes."""
    path = Path(path)
    with open(path, "wb") as fh:
        pickle.dump(model, fh, protocol=pickle.HIGHEST_PROTOCOL)
    return path.stat().st_size


def load_model(path: str | Path) -> Any:
    """Load a model previously written by :func:`save_model`.

    Only call on files this library itself produced — pickle executes
    arbitrary code on load, so never load untrusted model files.
    """
    with open(path, "rb") as fh:
        return pickle.load(fh)


def model_size_kb(model: Any) -> float:
    """In-memory pickled size in kilobytes (Table II's "Model Size")."""
    return len(pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)) / 1000.0


# ----------------------------------------------------------------------
# Model bundles (pipeline artifacts)

_BUNDLE_MODEL = "model.pkl"
_BUNDLE_SCALER = "scaler.pkl"
_BUNDLE_META = "bundle.json"


@dataclass
class ModelBundle:
    """A trained model plus everything needed to serve it.

    ``extractor_config`` is the JSON configuration of the
    :class:`~repro.features.pipeline.FeatureExtractor` the model was
    trained with (``FeatureExtractor.to_config()``); ``metadata`` holds
    arbitrary JSON (model name, training metrics, fit seconds).
    """

    model: Any
    scaler: Any = None
    extractor_config: dict | None = None
    metadata: dict = field(default_factory=dict)


def save_model_bundle(bundle: ModelBundle, path: str | Path) -> Path:
    """Write a :class:`ModelBundle` into directory ``path``.

    Layout: ``model.pkl``, optional ``scaler.pkl``, and ``bundle.json``
    holding the extractor config and metadata.  Returns the directory.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    save_model(bundle.model, path / _BUNDLE_MODEL)
    if bundle.scaler is not None:
        save_model(bundle.scaler, path / _BUNDLE_SCALER)
    payload = {
        "extractor_config": bundle.extractor_config,
        "metadata": bundle.metadata,
        "has_scaler": bundle.scaler is not None,
    }
    (path / _BUNDLE_META).write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_model_bundle(path: str | Path) -> ModelBundle:
    """Reload a bundle written by :func:`save_model_bundle`.

    Same trust caveat as :func:`load_model`: only load bundles this
    library itself produced.
    """
    path = Path(path)
    payload = json.loads((path / _BUNDLE_META).read_text())
    scaler = load_model(path / _BUNDLE_SCALER) if payload["has_scaler"] else None
    return ModelBundle(
        model=load_model(path / _BUNDLE_MODEL),
        scaler=scaler,
        extractor_config=payload["extractor_config"],
        metadata=payload["metadata"],
    )
