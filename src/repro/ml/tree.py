"""CART decision trees with vectorised Gini splitting.

The building block of the Random Forest.  Split search is fully
vectorised: for each candidate feature the labels are ordered by feature
value and per-class prefix sums give the Gini impurity of every possible
threshold in O(n) after the sort.
"""

from __future__ import annotations

import numpy as np

from repro.ml.preprocessing import NotFittedError


class _Node:
    """One tree node (internal or leaf)."""

    __slots__ = ("feature", "threshold", "left", "right", "prediction", "counts")

    def __init__(self) -> None:
        self.feature: int = -1
        self.threshold: float = 0.0
        self.left: "_Node | None" = None
        self.right: "_Node | None" = None
        self.prediction: int = 0
        self.counts: np.ndarray | None = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini_best_split(
    x: np.ndarray, y_onehot: np.ndarray, min_samples_leaf: int
) -> tuple[float, float] | None:
    """Best (gain-proxy, threshold) for one feature column, or None.

    Returns the *negative weighted Gini* (higher is better) so callers
    can compare across features without re-deriving parent impurity.
    """
    order = np.argsort(x, kind="stable")
    x_sorted = x[order]
    n = len(x_sorted)
    cum = np.cumsum(y_onehot[order], axis=0)  # per-class prefix counts
    total = cum[-1]
    # Candidate split after position i (left = [0..i]), i in [0, n-2].
    left_counts = cum[:-1]
    right_counts = total - left_counts
    n_left = np.arange(1, n)
    n_right = n - n_left
    valid = (x_sorted[1:] != x_sorted[:-1])
    valid &= (n_left >= min_samples_leaf) & (n_right >= min_samples_leaf)
    if not valid.any():
        return None
    gini_left = 1.0 - np.sum((left_counts / n_left[:, None]) ** 2, axis=1)
    gini_right = 1.0 - np.sum((right_counts / n_right[:, None]) ** 2, axis=1)
    weighted = (n_left * gini_left + n_right * gini_right) / n
    weighted[~valid] = np.inf
    best = int(np.argmin(weighted))
    if not np.isfinite(weighted[best]):
        return None
    threshold = 0.5 * (x_sorted[best] + x_sorted[best + 1])
    return -float(weighted[best]), float(threshold)


class DecisionTreeClassifier:
    """A binary-split CART classifier.

    Parameters mirror scikit-learn: ``max_depth``, ``min_samples_split``,
    ``min_samples_leaf``, and ``max_features`` (``None``, an int, or
    ``"sqrt"`` for the forest's per-node feature subsampling).
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        random_state: int = 0,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.root_: _Node | None = None
        self.n_classes_: int = 0
        self.n_features_: int = 0
        self.node_count_: int = 0

    def _n_candidate_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        return min(int(self.max_features), n_features)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        if X.ndim != 2 or len(X) != len(y):
            raise ValueError("X must be 2-D and aligned with y")
        self.n_classes_ = int(y.max()) + 1 if y.size else 1
        self.n_features_ = X.shape[1]
        self.node_count_ = 0
        rng = np.random.default_rng(self.random_state)
        y_onehot = np.zeros((len(y), self.n_classes_))
        y_onehot[np.arange(len(y)), y] = 1.0
        self.root_ = self._build(X, y_onehot, depth=0, rng=rng)
        return self

    def _build(self, X: np.ndarray, y_onehot: np.ndarray, depth: int, rng) -> _Node:
        node = _Node()
        self.node_count_ += 1
        counts = y_onehot.sum(axis=0)
        node.counts = counts
        node.prediction = int(np.argmax(counts))
        n = len(X)
        pure = counts.max() == n
        too_deep = self.max_depth is not None and depth >= self.max_depth
        if pure or too_deep or n < self.min_samples_split:
            return node
        k = self._n_candidate_features(self.n_features_)
        features = (
            np.arange(self.n_features_)
            if k == self.n_features_
            else rng.choice(self.n_features_, size=k, replace=False)
        )
        best_score = -np.inf
        best_feature = -1
        best_threshold = 0.0
        for feature in features:
            result = _gini_best_split(X[:, feature], y_onehot, self.min_samples_leaf)
            if result is not None and result[0] > best_score:
                best_score, best_threshold = result
                best_feature = int(feature)
        if best_feature < 0:
            return node
        mask = X[:, best_feature] <= best_threshold
        node.feature = best_feature
        node.threshold = best_threshold
        node.left = self._build(X[mask], y_onehot[mask], depth + 1, rng)
        node.right = self._build(X[~mask], y_onehot[~mask], depth + 1, rng)
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted class for each row."""
        proba = self.predict_proba(X)
        return np.argmax(proba, axis=1)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Leaf class-frequency estimates for each row."""
        if self.root_ is None:
            raise NotFittedError("DecisionTreeClassifier.predict before fit")
        X = np.asarray(X, dtype=float)
        out = np.zeros((len(X), self.n_classes_))
        # Iterative mask-based traversal: each (node, indices) pair routes
        # its rows left/right in one vectorised comparison.
        stack: list[tuple[_Node, np.ndarray]] = [(self.root_, np.arange(len(X)))]
        while stack:
            node, idx = stack.pop()
            if idx.size == 0:
                continue
            if node.is_leaf:
                assert node.counts is not None
                total = node.counts.sum()
                out[idx] = node.counts / total if total else 0.0
                continue
            mask = X[idx, node.feature] <= node.threshold
            assert node.left is not None and node.right is not None
            stack.append((node.left, idx[mask]))
            stack.append((node.right, idx[~mask]))
        return out

    @property
    def depth_(self) -> int:
        """Actual depth of the fitted tree."""
        if self.root_ is None:
            raise NotFittedError("tree not fitted")

        def depth(node: _Node) -> int:
            if node.is_leaf:
                return 0
            assert node.left is not None and node.right is not None
            return 1 + max(depth(node.left), depth(node.right))

        return depth(self.root_)
