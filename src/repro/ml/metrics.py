"""Classification metrics: accuracy, precision, recall, F1, confusion matrix.

The paper evaluates training with all four metrics and real-time
detection with accuracy only (because pure-benign or pure-malicious
windows make precision/recall divide by zero — see §IV-D); the
``zero_division`` argument mirrors that concern explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _validate(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("empty label arrays")
    return y_true, y_pred


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of correct predictions."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred, n_classes: int = 2) -> np.ndarray:
    """``M[i, j]`` = count of true class ``i`` predicted as class ``j``."""
    y_true, y_pred = _validate(y_true, y_pred)
    matrix = np.zeros((n_classes, n_classes), dtype=int)
    for true, pred in zip(y_true.astype(int), y_pred.astype(int)):
        matrix[true, pred] += 1
    return matrix


def precision_score(y_true, y_pred, positive: int = 1, zero_division: float = 0.0) -> float:
    """TP / (TP + FP); ``zero_division`` when nothing was predicted positive."""
    y_true, y_pred = _validate(y_true, y_pred)
    predicted_positive = y_pred == positive
    if not predicted_positive.any():
        return zero_division
    return float(np.mean(y_true[predicted_positive] == positive))


def recall_score(y_true, y_pred, positive: int = 1, zero_division: float = 0.0) -> float:
    """TP / (TP + FN); ``zero_division`` when no true positives exist."""
    y_true, y_pred = _validate(y_true, y_pred)
    actual_positive = y_true == positive
    if not actual_positive.any():
        return zero_division
    return float(np.mean(y_pred[actual_positive] == positive))


def f1_score(y_true, y_pred, positive: int = 1, zero_division: float = 0.0) -> float:
    """Harmonic mean of precision and recall."""
    precision = precision_score(y_true, y_pred, positive, zero_division)
    recall = recall_score(y_true, y_pred, positive, zero_division)
    if precision + recall == 0:
        return zero_division
    return 2 * precision * recall / (precision + recall)


@dataclass(frozen=True)
class ClassificationReport:
    """The four training-phase metrics plus the confusion matrix."""

    accuracy: float
    precision: float
    recall: float
    f1: float
    confusion: np.ndarray

    def __str__(self) -> str:
        tn, fp, fn, tp = self.confusion.ravel()
        return (
            f"accuracy={self.accuracy:.4f} precision={self.precision:.4f} "
            f"recall={self.recall:.4f} f1={self.f1:.4f} "
            f"(tp={tp} tn={tn} fp={fp} fn={fn})"
        )

    def to_dict(self) -> dict:
        """JSON-serializable form (confusion matrix as nested lists)."""
        return {
            "accuracy": self.accuracy,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "confusion": self.confusion.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ClassificationReport":
        """Rebuild a report from :meth:`to_dict`."""
        return cls(
            accuracy=payload["accuracy"],
            precision=payload["precision"],
            recall=payload["recall"],
            f1=payload["f1"],
            confusion=np.asarray(payload["confusion"], dtype=int),
        )


def evaluate_classifier(y_true, y_pred) -> ClassificationReport:
    """Compute the full training-phase report for binary labels."""
    return ClassificationReport(
        accuracy=accuracy_score(y_true, y_pred),
        precision=precision_score(y_true, y_pred),
        recall=recall_score(y_true, y_pred),
        f1=f1_score(y_true, y_pred),
        confusion=confusion_matrix(y_true, y_pred),
    )
