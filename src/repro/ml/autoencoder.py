"""Autoencoder anomaly detector (stand-in for the paper's §V VAE idea).

A dense bottleneck autoencoder trained on benign traffic only; packets
whose reconstruction error exceeds a benign-quantile threshold are
flagged malicious.  This is the classic anomaly-IDS shape the paper
lists among models to explore (VAE); a deterministic AE exercises the
same pipeline without the reparameterisation machinery.
"""

from __future__ import annotations

import numpy as np

from repro.ml.layers import Adam, Dense, Layer, ReLU
from repro.ml.preprocessing import NotFittedError


class _MseHead:
    """Mean-squared-error loss for reconstruction."""

    def forward(self, output: np.ndarray, target: np.ndarray) -> float:
        self._diff = output - target
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        return 2.0 * self._diff / self._diff.size


class AutoencoderDetector:
    """Benign-profile anomaly detector via reconstruction error."""

    def __init__(
        self,
        n_features: int,
        hidden: int = 16,
        bottleneck: int = 8,
        epochs: int = 10,
        batch_size: int = 128,
        lr: float = 1e-3,
        quantile: float = 0.995,
        random_state: int = 0,
    ) -> None:
        self.n_features = n_features
        self.hidden = hidden
        self.bottleneck = bottleneck
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.quantile = quantile
        self.random_state = random_state
        self.layers_: list[Layer] | None = None
        self.threshold_: float = np.inf

    def _build(self) -> list[Layer]:
        rng = np.random.default_rng(self.random_state)
        return [
            Dense(self.n_features, self.hidden, rng),
            ReLU(),
            Dense(self.hidden, self.bottleneck, rng),
            ReLU(),
            Dense(self.bottleneck, self.hidden, rng),
            ReLU(),
            Dense(self.hidden, self.n_features, rng),
        ]

    def _forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        assert self.layers_ is not None
        for layer in self.layers_:
            x = layer.forward(x, training=training)
        return x

    def fit(self, X: np.ndarray, y: np.ndarray) -> "AutoencoderDetector":
        """Train on the benign subset of (X, y); calibrate the threshold."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        benign = X[y == 0]
        if len(benign) < 10:
            raise ValueError("need at least 10 benign samples to profile")
        self.layers_ = self._build()
        params: list[np.ndarray] = []
        for layer in self.layers_:
            params.extend(layer.params())
        optimizer = Adam(params, lr=self.lr)
        loss_head = _MseHead()
        rng = np.random.default_rng(self.random_state)
        n = len(benign)
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = benign[order[start : start + self.batch_size]]
                out = self._forward(batch, training=True)
                loss_head.forward(out, batch)
                grad = loss_head.backward()
                for layer in reversed(self.layers_):
                    grad = layer.backward(grad)
                grads: list[np.ndarray] = []
                for layer in self.layers_:
                    grads.extend(layer.grads())
                optimizer.step(grads)
        errors = self.reconstruction_error(benign)
        self.threshold_ = float(np.quantile(errors, self.quantile))
        return self

    def reconstruction_error(self, X: np.ndarray) -> np.ndarray:
        """Per-sample mean squared reconstruction error."""
        if self.layers_ is None:
            raise NotFittedError("AutoencoderDetector before fit")
        X = np.asarray(X, dtype=float)
        out = self._forward(X, training=False)
        return np.mean((out - X) ** 2, axis=1)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """1 = anomalous (malicious), 0 = fits the benign profile."""
        return (self.reconstruction_error(X) > self.threshold_).astype(int)
