"""Federated learning emulation (paper §VI future work).

FedAvg over weight-exposing models: each simulated device trains on its
local traffic shard, a coordinator averages the weights (optionally
weighted by shard size), and the global model is pushed back.  Works with
any model exposing ``get_weights()``/``set_weights()`` and ``fit`` —
in this repo the CNN's :class:`~repro.ml.cnn.Sequential` and
:class:`~repro.ml.svm.LinearSVM`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol, Sequence

import numpy as np


class WeightedModel(Protocol):
    """A model FedAvg can aggregate."""

    def get_weights(self) -> list[np.ndarray]: ...

    def set_weights(self, weights: list[np.ndarray]) -> None: ...


def fedavg(
    weight_sets: Sequence[list[np.ndarray]],
    sample_counts: Sequence[int] | None = None,
) -> list[np.ndarray]:
    """Weighted average of aligned weight lists."""
    if not weight_sets:
        raise ValueError("need at least one client's weights")
    n_clients = len(weight_sets)
    if sample_counts is None:
        coefficients = np.full(n_clients, 1.0 / n_clients)
    else:
        if len(sample_counts) != n_clients:
            raise ValueError("sample_counts misaligned with weight_sets")
        total = float(sum(sample_counts))
        if total <= 0:
            raise ValueError("sample_counts must sum to a positive value")
        coefficients = np.array(sample_counts, dtype=float) / total
    averaged = []
    for arrays in zip(*weight_sets):
        stacked = np.stack(arrays)
        averaged.append(
            np.tensordot(coefficients, stacked, axes=(0, 0))
        )
    return averaged


@dataclass
class FederatedClient:
    """One device's local trainer."""

    name: str
    model: WeightedModel
    X: np.ndarray
    y: np.ndarray
    train_fn: Callable[[WeightedModel, np.ndarray, np.ndarray], None]

    @property
    def n_samples(self) -> int:
        return len(self.X)

    def local_round(self, global_weights: list[np.ndarray]) -> list[np.ndarray]:
        """Sync to the global weights, train locally, return new weights."""
        self.model.set_weights(global_weights)
        self.train_fn(self.model, self.X, self.y)
        return self.model.get_weights()


@dataclass
class FederatedCoordinator:
    """Runs FedAvg rounds across clients."""

    clients: list[FederatedClient]
    global_weights: list[np.ndarray]
    weight_by_samples: bool = True
    rounds_completed: int = 0
    round_history: list[float] = field(default_factory=list)

    def run_round(self) -> None:
        """One synchronous FedAvg round over every client."""
        updates = [c.local_round(self.global_weights) for c in self.clients]
        counts = [c.n_samples for c in self.clients] if self.weight_by_samples else None
        self.global_weights = fedavg(updates, counts)
        self.rounds_completed += 1

    def run(self, rounds: int, evaluate: Callable[[list[np.ndarray]], float] | None = None) -> None:
        """Run several rounds, optionally recording a metric per round."""
        for _ in range(rounds):
            self.run_round()
            if evaluate is not None:
                self.round_history.append(evaluate(self.global_weights))


def shard_by_client(
    X: np.ndarray, y: np.ndarray, client_ids: np.ndarray
) -> dict[object, tuple[np.ndarray, np.ndarray]]:
    """Split (X, y) into per-client shards by an id column (e.g. src_ip)."""
    shards: dict[object, tuple[np.ndarray, np.ndarray]] = {}
    for client in np.unique(client_ids):
        mask = client_ids == client
        shards[client] = (X[mask], y[mask])
    return shards
