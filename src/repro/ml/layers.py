"""Neural-network layers with numpy forward/backward passes.

The building blocks for the CNN IDS (and the autoencoder): Conv1D with
im2col vectorisation, max pooling, dense layers, ReLU, dropout, a fused
softmax/cross-entropy head, and the Adam optimiser.  Backprop is exact
(verified by numeric gradient checks in the test suite).
"""

from __future__ import annotations

import numpy as np


class Layer:
    """Base layer: ``forward`` caches what ``backward`` needs.

    Underscore-prefixed attributes are transient forward caches, and
    gradient buffers (``dW``/``db``) are re-derivable; both are excluded
    from pickling so saved models contain weights only.
    """

    _TRANSIENT = ("dW", "db")

    def __getstate__(self) -> dict:
        return {
            k: v
            for k, v in self.__dict__.items()
            if not k.startswith("_") and k not in self._TRANSIENT
        }

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if "W" in state:
            self.dW = np.zeros_like(state["W"])
        if "b" in state:
            self.db = np.zeros_like(state["b"])

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def params(self) -> list[np.ndarray]:
        """Trainable arrays (shared references, updated in place)."""
        return []

    def grads(self) -> list[np.ndarray]:
        """Gradients aligned with :meth:`params`."""
        return []


class Dense(Layer):
    """Fully connected layer: ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator) -> None:
        scale = np.sqrt(2.0 / in_features)  # He init (ReLU nets)
        self.W = rng.normal(0.0, scale, size=(in_features, out_features))
        self.b = np.zeros(out_features)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._x = x
        return x @ self.W + self.b

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._x is not None
        self.dW[...] = self._x.T @ grad
        self.db[...] = grad.sum(axis=0)
        return grad @ self.W.T

    def params(self) -> list[np.ndarray]:
        return [self.W, self.b]

    def grads(self) -> list[np.ndarray]:
        return [self.dW, self.db]


class Conv1D(Layer):
    """1-D convolution over (batch, channels, length), stride 1.

    ``padding="same"`` keeps the length; ``"valid"`` shrinks it by
    ``kernel_size - 1``.  Implemented with im2col so the convolution is a
    single matrix multiply.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        padding: str = "same",
    ) -> None:
        if padding not in ("same", "valid"):
            raise ValueError(f"unknown padding {padding!r}")
        scale = np.sqrt(2.0 / (in_channels * kernel_size))
        self.W = rng.normal(0.0, scale, size=(out_channels, in_channels, kernel_size))
        self.b = np.zeros(out_channels)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self.padding = padding
        self.kernel_size = kernel_size
        self._cols: np.ndarray | None = None
        self._x_shape: tuple | None = None

    def _pad_amounts(self) -> tuple[int, int]:
        if self.padding == "valid":
            return 0, 0
        total = self.kernel_size - 1
        return total // 2, total - total // 2

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, length = x.shape
        left, right = self._pad_amounts()
        xp = np.pad(x, ((0, 0), (0, 0), (left, right)))
        out_len = xp.shape[2] - self.kernel_size + 1
        # im2col: (n, c*k, out_len)
        idx = np.arange(self.kernel_size)[None, :] + np.arange(out_len)[:, None]
        cols = xp[:, :, idx]  # (n, c, out_len, k)
        cols = cols.transpose(0, 2, 1, 3).reshape(n, out_len, c * self.kernel_size)
        self._cols = cols
        self._x_shape = (n, c, length)
        w2 = self.W.reshape(self.W.shape[0], -1)  # (F, c*k)
        out = cols @ w2.T + self.b  # (n, out_len, F)
        return out.transpose(0, 2, 1)  # (n, F, out_len)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._cols is not None and self._x_shape is not None
        n, c, length = self._x_shape
        g = grad.transpose(0, 2, 1)  # (n, out_len, F)
        out_len = g.shape[1]
        w2 = self.W.reshape(self.W.shape[0], -1)
        self.dW[...] = (
            np.einsum("nof,nok->fk", g, self._cols)
        ).reshape(self.W.shape)
        self.db[...] = g.sum(axis=(0, 1))
        dcols = g @ w2  # (n, out_len, c*k)
        dcols = dcols.reshape(n, out_len, c, self.kernel_size).transpose(0, 2, 1, 3)
        left, right = self._pad_amounts()
        dxp = np.zeros((n, c, length + left + right))
        idx = np.arange(self.kernel_size)[None, :] + np.arange(out_len)[:, None]
        np.add.at(dxp, (slice(None), slice(None), idx), dcols)
        return dxp[:, :, left : left + length]

    def params(self) -> list[np.ndarray]:
        return [self.W, self.b]

    def grads(self) -> list[np.ndarray]:
        return [self.dW, self.db]


class MaxPool1D(Layer):
    """Non-overlapping max pooling along the length axis."""

    def __init__(self, pool_size: int = 2) -> None:
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        self.pool_size = pool_size
        self._mask: np.ndarray | None = None
        self._x_shape: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, length = x.shape
        p = self.pool_size
        out_len = length // p
        trimmed = x[:, :, : out_len * p].reshape(n, c, out_len, p)
        out = trimmed.max(axis=3)
        self._mask = trimmed == out[..., None]
        # break ties: keep only the first max per pool
        cum = np.cumsum(self._mask, axis=3)
        self._mask &= cum == 1
        self._x_shape = (n, c, length)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._mask is not None and self._x_shape is not None
        n, c, length = self._x_shape
        p = self.pool_size
        out_len = grad.shape[2]
        dx = np.zeros((n, c, length))
        expanded = self._mask * grad[..., None]
        dx[:, :, : out_len * p] = expanded.reshape(n, c, out_len * p)
        return dx


class ReLU(Layer):
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._mask


class Flatten(Layer):
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(len(x), -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad.reshape(self._shape)


class Dropout(Layer):
    """Inverted dropout; identity at inference time."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask


class SoftmaxCrossEntropy:
    """Fused softmax + cross-entropy head (numerically stable)."""

    def __getstate__(self) -> dict:
        return {k: v for k, v in self.__dict__.items() if not k.startswith("_")}

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def forward(self, logits: np.ndarray, y: np.ndarray) -> tuple[float, np.ndarray]:
        """Returns (mean loss, probabilities)."""
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        proba = exp / exp.sum(axis=1, keepdims=True)
        n = len(y)
        loss = -float(np.mean(np.log(proba[np.arange(n), y] + 1e-12)))
        self._proba = proba
        self._y = y
        return loss, proba

    def backward(self) -> np.ndarray:
        n = len(self._y)
        grad = self._proba.copy()
        grad[np.arange(n), self._y] -= 1.0
        return grad / n


class Adam:
    """Adam optimiser over a flat list of parameter arrays."""

    def __init__(
        self,
        params: list[np.ndarray],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        self.params = params
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.m = [np.zeros_like(p) for p in params]
        self.v = [np.zeros_like(p) for p in params]
        self.t = 0

    def step(self, grads: list[np.ndarray]) -> None:
        self.t += 1
        for i, (param, grad) in enumerate(zip(self.params, grads)):
            self.m[i] = self.beta1 * self.m[i] + (1 - self.beta1) * grad
            self.v[i] = self.beta2 * self.v[i] + (1 - self.beta2) * grad**2
            m_hat = self.m[i] / (1 - self.beta1**self.t)
            v_hat = self.v[i] / (1 - self.beta2**self.t)
            param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
