"""Linear SVM trained with SGD on the hinge loss (paper §V future work)."""

from __future__ import annotations

import numpy as np

from repro.ml.preprocessing import NotFittedError


class LinearSVM:
    """L2-regularised linear SVM (Pegasos-style SGD).

    Labels are {0, 1} at the API surface and mapped to {-1, +1}
    internally.
    """

    def __init__(
        self,
        epochs: int = 15,
        batch_size: int = 64,
        lr: float = 0.1,
        reg: float = 1e-4,
        random_state: int = 0,
    ) -> None:
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.reg = reg
        self.random_state = random_state
        self.w_: np.ndarray | None = None
        self.b_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVM":
        """Train from scratch (weights reset to zero)."""
        X = np.asarray(X, dtype=float)
        self.w_ = np.zeros(X.shape[1])
        self.b_ = 0.0
        return self.partial_fit(X, y, epochs=self.epochs)

    def partial_fit(self, X: np.ndarray, y: np.ndarray, epochs: int | None = None) -> "LinearSVM":
        """Continue SGD from the current weights (federated local rounds)."""
        X = np.asarray(X, dtype=float)
        y_signed = np.where(np.asarray(y, dtype=int) == 1, 1.0, -1.0)
        n, d = X.shape
        if self.w_ is None:
            self.w_ = np.zeros(d)
            self.b_ = 0.0
        if self.w_.shape[0] != d:
            raise ValueError(f"feature mismatch: model has {self.w_.shape[0]}, X has {d}")
        rng = np.random.default_rng(self.random_state)
        w = self.w_
        b = self.b_
        step = self.lr
        for epoch in range(epochs if epochs is not None else self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                margin = y_signed[idx] * (X[idx] @ w + b)
                active = margin < 1.0
                grad_w = self.reg * w
                grad_b = 0.0
                if active.any():
                    xa = X[idx][active]
                    ya = y_signed[idx][active]
                    grad_w -= (ya[:, None] * xa).mean(axis=0)
                    grad_b -= float(ya.mean())
                w = w - step * grad_w
                b = b - step * grad_b
            step = self.lr / (1.0 + 0.2 * epoch)  # gently decaying schedule
        self.w_ = w
        self.b_ = b
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self.w_ is None:
            raise NotFittedError("LinearSVM.decision_function before fit")
        return np.asarray(X, dtype=float) @ self.w_ + self.b_

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.decision_function(X) >= 0.0).astype(int)

    def get_weights(self) -> list[np.ndarray]:
        """For federated averaging."""
        if self.w_ is None:
            raise NotFittedError("LinearSVM.get_weights before fit")
        return [self.w_.copy(), np.array([self.b_])]

    def set_weights(self, weights: list[np.ndarray]) -> None:
        self.w_ = weights[0].copy()
        self.b_ = float(weights[1][0])
