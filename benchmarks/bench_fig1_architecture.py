"""Figure 1 — the DDoShield-IoT architecture, verified live.

Figure 1 shows the four container roles wired to one simulated network:
the TServer (Apache + Nginx + FTP-Server), the Devs (IoT binaries), the
Attacker (CNC + exploit/infection tooling), and the real-time IDS unit.
This bench times a cold build of the full topology and verifies every
Figure 1 component exists and produces live traffic of its class.
"""

from repro.sim.tracing import PacketProbe
from repro.testbed import Scenario, Testbed

from conftest import write_result


def build_and_boot():
    scenario = Scenario(n_devices=4, seed=31)
    testbed = Testbed(scenario).build()
    testbed.infect_all()
    return testbed


def test_fig1_architecture(benchmark):
    testbed = benchmark.pedantic(build_and_boot, rounds=1, iterations=1)
    inventory = testbed.component_inventory()
    lines = ["Figure 1: live component inventory"]
    for container, processes in sorted(inventory.items()):
        lines.append(f"  {container}: {', '.join(sorted(processes))}")

    # TServer: the three benign servers of Figure 1 (plus UDP services).
    assert {"http-server", "rtmp-server", "ftp-server"} <= set(inventory["tserver"])
    # Attacker: CNC + exploit & infection scripts.
    assert {"cnc", "mirai-scanner", "mirai-loader"} <= set(inventory["attacker"])
    # Devs: vulnerable binary + benign behaviour + (post-infection) bot.
    for i in range(4):
        assert {"telnet", "device-profile", "mirai-bot"} <= set(inventory[f"dev-{i}"])

    # All benign traffic classes flow through the simulated network.
    probe = PacketProbe()
    testbed.lan.add_probe(probe)
    testbed.sim.run(until=testbed.sim.now + 20.0)
    testbed.lan.channel.remove_probe(probe)
    seen_ports = {r.dst_port for r in probe.records} | {r.src_port for r in probe.records}
    for port, service in ((80, "HTTP"), (21, "FTP"), (1935, "RTMP"), (53, "DNS")):
        assert port in seen_ports, f"no {service} traffic on the LAN"
        lines.append(f"  traffic class live: {service} (port {port})")
    write_result("fig1_architecture", lines)
