"""Figure 2 — the IDS component's three stages, with per-stage latency.

Figure 2 decomposes the IDS into (i) real-time traffic monitoring,
(ii) data preprocessing (window aggregation + feature extraction +
scaling), and (iii) attack identification (model inference).  The bench
measures the latency of each stage for one representative 1-second
window per model, confirming the pipeline structure and that a full
window is processed well within its real-time budget.
"""

import time

import numpy as np

from repro.features.window import iter_windows

from conftest import write_result


def stage_latencies(detect_capture, trained, scenario):
    """Per-stage wall latency for the busiest window, per model."""
    windows = list(iter_windows(detect_capture.records, scenario.window_seconds))
    _, busiest = max(windows, key=lambda pair: len(pair[1]))
    rows = []
    for item in trained:
        t0 = time.perf_counter()
        for record in busiest:  # stage 1: monitoring hand-off
            pass
        t1 = time.perf_counter()
        X = item.extractor.transform_window(busiest)  # stage 2a: features
        X = item.scaler.transform(X)  # stage 2b: scaling
        t2 = time.perf_counter()
        predictions = item.model.predict(X)  # stage 3: identification
        t3 = time.perf_counter()
        rows.append(
            (item.name, len(busiest), (t1 - t0) * 1e3, (t2 - t1) * 1e3, (t3 - t2) * 1e3,
             int(np.sum(predictions)))
        )
    return rows


def test_fig2_ids_pipeline(benchmark, detect_capture, trained_models, scenario):
    rows = benchmark.pedantic(
        stage_latencies,
        args=(detect_capture, trained_models, scenario),
        rounds=1,
        iterations=1,
    )
    lines = [
        "Figure 2: IDS stages — monitor / preprocess / identify (busiest window)",
        f"{'Model':<10}{'pkts':>6}{'monitor ms':>12}{'preprocess ms':>15}{'identify ms':>13}",
    ]
    for name, n, monitor_ms, preprocess_ms, identify_ms, flagged in rows:
        lines.append(
            f"{name:<10}{n:>6}{monitor_ms:>12.3f}{preprocess_ms:>15.3f}{identify_ms:>13.3f}"
        )
    write_result("fig2_ids_pipeline", lines)

    for name, n, monitor_ms, preprocess_ms, identify_ms, flagged in rows:
        total_ms = monitor_ms + preprocess_ms + identify_ms
        # Real-time feasibility: a 1 s window processed in far less than 1 s.
        assert total_ms < 1000.0 * scenario.window_seconds
        # The pipeline has real preprocessing and identification stages.
        assert preprocess_ms > 0 and identify_ms > 0
