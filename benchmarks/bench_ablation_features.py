"""Ablation — feature views explain Table I's ordering.

EXPERIMENTS.md claims the paper's published ordering (RF collapses,
K-Means/CNN survive) emerges from per-model feature practice, not from
the algorithms themselves.  This bench demonstrates it by evaluating the
same Random Forest and K-Means under *swapped* views:

* RF on the raw-count view (default)         -> collapses in real time
* RF on the frequency-normalised view        -> largely recovers
* K-Means on the normalised view (default)   -> holds in the 90s
* K-Means on the raw-count view              -> collapses like RF

That is: the live-rate shift breaks whichever model consumes absolute
volume statistics, and spares whichever consumes scale-free ratios.
"""

from repro.ml import KMeansDetector, RandomForestClassifier
from repro.testbed import ModelSpec, run_realtime_detection, train_models

from conftest import write_result


def crossed_specs(seed: int) -> list[ModelSpec]:
    raw_view = dict(stat_set="paper", include_timestamp=True, scale=False)
    norm_view = dict(
        stat_set="normalized",
        include_details=True,
        include_timestamp=False,
        scale=True,
    )
    return [
        ModelSpec("RF/raw-counts",
                  lambda n, s=seed: RandomForestClassifier(
                      n_estimators=30, min_samples_leaf=4, random_state=s),
                  **raw_view),
        ModelSpec("RF/normalized",
                  lambda n, s=seed: RandomForestClassifier(
                      n_estimators=30, min_samples_leaf=4, random_state=s),
                  **norm_view),
        ModelSpec("KM/raw-counts",
                  lambda n, s=seed: KMeansDetector(
                      n_clusters=40, auto_k=False, random_state=s),
                  **raw_view),
        ModelSpec("KM/normalized",
                  lambda n, s=seed: KMeansDetector(
                      n_clusters=40, auto_k=False, random_state=s),
                  **norm_view),
    ]


def run_crossed(train_capture, detect_capture, scenario):
    trained = train_models(
        train_capture,
        specs=crossed_specs(scenario.seed),
        window_seconds=scenario.window_seconds,
        seed=scenario.seed,
    )
    reports = run_realtime_detection(
        detect_capture, trained, window_seconds=scenario.window_seconds
    )
    return {r.model_name: 100 * r.mean_accuracy for r in reports}


def test_ablation_feature_views(benchmark, train_capture, detect_capture, scenario):
    accuracy = benchmark.pedantic(
        run_crossed, args=(train_capture, detect_capture, scenario), rounds=1, iterations=1
    )
    lines = [
        "Ablation: model x feature-view cross (real-time accuracy %)",
        f"{'config':<16}{'realtime %':>12}",
    ]
    for name in ("RF/raw-counts", "RF/normalized", "KM/raw-counts", "KM/normalized"):
        lines.append(f"{name:<16}{accuracy[name]:>12.2f}")
    lines.append(
        "reading: the live-rate shift breaks the raw-count view regardless "
        "of model; the normalized view survives regardless of model."
    )
    write_result("ablation_feature_views", lines)

    # The view, not the model, decides survival under rate shift.
    assert accuracy["RF/raw-counts"] < 82.0
    assert accuracy["KM/raw-counts"] < 90.0
    assert accuracy["RF/normalized"] > accuracy["RF/raw-counts"] + 8.0
    assert accuracy["KM/normalized"] > accuracy["KM/raw-counts"] + 8.0
