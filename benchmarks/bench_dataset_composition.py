"""§IV-D dataset composition — the generated training capture's balance.

Paper: the 10-minute dataset-generation run produced a "nearly balanced"
capture of 3,012,885 malicious and 2,243,634 benign packets (57.3 % /
42.7 %).  The bench times a fresh dataset-generation capture on the
shared testbed and regenerates the composition summary; absolute counts
scale with the simulated run length, but the malicious/benign balance
must match the paper's.
"""

from repro.testbed import Scenario, Testbed

from conftest import write_result

PAPER_MALICIOUS = 3_012_885
PAPER_BENIGN = 2_243_634
PAPER_FRACTION = PAPER_MALICIOUS / (PAPER_MALICIOUS + PAPER_BENIGN)  # 0.5732


def generate(scenario: Scenario, duration: float = 45.0):
    testbed = Testbed(scenario).build()
    testbed.infect_all()
    return testbed.capture(duration, scenario.training_schedule(duration))


def test_dataset_composition(benchmark):
    scenario = Scenario(n_devices=6, seed=13)
    capture = benchmark.pedantic(generate, args=(scenario,), rounds=1, iterations=1)
    summary = capture.summary()
    lines = [
        "Dataset composition (paper: 3,012,885 malicious / 2,243,634 benign = 57.3%/42.7%)",
        f"packets: {summary.total} over {summary.duration:.1f}s (scaled run)",
        f"malicious: {summary.malicious} ({100 * summary.malicious_fraction:.1f}%)",
        f"benign:    {summary.benign} ({100 * (1 - summary.malicious_fraction):.1f}%)",
    ]
    for attack, count in sorted(summary.by_attack.items()):
        lines.append(f"  {attack}: {count}")
    write_result("dataset_composition", lines)

    # Balance matches the paper within a few points.
    assert abs(summary.malicious_fraction - PAPER_FRACTION) < 0.08
    # All three Mirai flood types are present, in comparable volume.
    for attack in ("syn_flood", "ack_flood", "udp_flood"):
        assert summary.by_attack.get(attack, 0) > 0
    counts = [summary.by_attack[a] for a in ("syn_flood", "ack_flood", "udp_flood")]
    assert max(counts) < 2 * min(counts)
