"""Ablation — device churn (DDoSim heritage, §III-A).

DDoSim "enables the assessment of the impact of device mobility and
connectivity on the resilience of TServer to botnet DDoS attacks" by
varying churn rates.  The bench sweeps the churn interval and measures
how much attack traffic the botnet still lands on the TServer while
devices drop off and rejoin the LAN mid-flood.
"""

from repro.testbed import AttackPhase, Scenario, Testbed

from conftest import write_result

CHURN_INTERVALS = (0.0, 6.0, 2.0)  # 0 = no churn; smaller = more churn
RUN_SECONDS = 20.0


def run_with_churn(churn_interval: float):
    scenario = Scenario(
        n_devices=4,
        seed=17,
        churn_interval=churn_interval,
        churn_downtime=4.0,
    )
    testbed = Testbed(scenario).build()
    testbed.infect_all()
    phases = [AttackPhase(start=2.0, kind="udp", duration=15.0, pps_per_bot=100)]
    capture = testbed.capture(RUN_SECONDS, phases)
    summary = capture.summary()
    return summary.by_attack.get("udp_flood", 0), summary.total


def sweep():
    return [(interval, *run_with_churn(interval)) for interval in CHURN_INTERVALS]


def test_ablation_churn(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "Ablation: device churn vs delivered attack volume (DDoSim heritage)",
        f"{'churn interval':>15}{'flood pkts':>12}{'total pkts':>12}",
    ]
    for interval, flood, total in rows:
        label = "none" if interval == 0 else f"{interval:.0f}s"
        lines.append(f"{label:>15}{flood:>12}{total:>12}")
    write_result("ablation_churn", lines)

    no_churn = rows[0][1]
    heavy_churn = rows[-1][1]
    assert no_churn > 0
    # Churned bots go offline mid-attack: delivered flood volume drops.
    assert heavy_churn < no_churn
    # Moderate churn sits between the extremes (allowing sampling noise).
    assert rows[1][1] <= no_churn
