"""Ablation — federated-learning NIDS emulation (paper §VI future work).

"our upcoming objective is to enhance DDoShield-IoT to emulate a
FL-based Network Intrusion Detection System (NIDS)".

Each device runs a local IDS agent sniffing the shared CSMA medium in
promiscuous mode during its own duty-cycle windows (IoT monitors sleep
most of the time, so each agent observes a different — non-IID — slice
of the traffic, often missing whole attack types).  A coordinator runs
FedAvg rounds over the agents' linear-SVM weights; the global model is
evaluated against the centralised model on a held-out slice.  The bench
times the federated rounds and regenerates the round-by-round accuracy
series.
"""

import numpy as np

from repro.features import FeatureExtractor
from repro.ml import LinearSVM, StandardScaler, accuracy_score
from repro.ml.federated import FederatedClient, FederatedCoordinator

from conftest import write_result

ROUNDS = 8


def run_federated(train_capture, detect_capture, testbed, scenario):
    extractor = FeatureExtractor(
        window_seconds=scenario.window_seconds,
        include_details=True,
        include_timestamp=False,
        stat_set="normalized",
    )
    X_all, y_all, window_ids = extractor.transform(train_capture.records)
    scaler = StandardScaler().fit(X_all)
    # Hold out every 4th packet for global evaluation; clients train on
    # the rest of the traffic they observe during their duty cycles.
    holdout = np.zeros(len(X_all), dtype=bool)
    holdout[::4] = True
    X_eval = scaler.transform(X_all[holdout])
    y_eval = y_all[holdout]
    Xs = scaler.transform(X_all)
    y = y_all

    # Duty-cycle sharding: device i's monitor is awake during windows
    # with index ≡ i (mod n_devices) and sees everything on the shared
    # medium in those seconds only.
    n_devices = len(testbed.devices)
    owner = window_ids % n_devices

    def train_fn(model, Xc, yc):
        # Local rounds continue from the synced global weights (FedAvg).
        model.partial_fit(Xc, yc, epochs=4)

    clients = []
    for i in range(n_devices):
        mask = (owner == i) & ~holdout
        if mask.sum() < 100 or len(np.unique(y[mask])) < 2:
            continue
        clients.append(
            FederatedClient(
                f"dev-{i}",
                LinearSVM(epochs=4, random_state=i),
                Xs[mask],
                y[mask],
                train_fn,
            )
        )
    assert len(clients) >= 3, "need several devices with two-class local data"

    def evaluate(weights):
        probe = LinearSVM()
        probe.set_weights(weights)
        return accuracy_score(y_eval, probe.predict(X_eval))

    base = LinearSVM(epochs=1, random_state=0).fit(Xs[~holdout][:200], y[~holdout][:200])
    coordinator = FederatedCoordinator(clients, base.get_weights())
    coordinator.run(ROUNDS, evaluate=evaluate)

    central = LinearSVM(epochs=12, random_state=0).fit(Xs[~holdout], y[~holdout])
    central_accuracy = accuracy_score(y_eval, central.predict(X_eval))
    return coordinator, central_accuracy, len(clients)


def test_ablation_federated(benchmark, train_capture, detect_capture, infected_testbed, scenario):
    testbed, _ = infected_testbed
    coordinator, central_accuracy, n_clients = benchmark.pedantic(
        run_federated,
        args=(train_capture, detect_capture, testbed, scenario),
        rounds=1,
        iterations=1,
    )
    lines = [
        f"Federated NIDS emulation: {n_clients} device clients, FedAvg x{ROUNDS}",
        f"{'round':>6}{'global accuracy':>17}",
    ]
    for i, accuracy in enumerate(coordinator.round_history, start=1):
        lines.append(f"{i:>6}{accuracy:>17.4f}")
    lines.append(f"centralised SVM accuracy: {central_accuracy:.4f}")
    write_result("ablation_federated", lines)

    assert coordinator.rounds_completed == ROUNDS
    final = coordinator.round_history[-1]
    # FedAvg approaches the centralised model on this task.
    assert final > 0.75
    assert final > central_accuracy - 0.15
    # and improves over the first round
    assert final >= coordinator.round_history[0] - 0.02
