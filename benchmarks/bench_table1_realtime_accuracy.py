"""Table I — real-time detection accuracy per model.

Paper (DSN'24, Table I):

    Model     Accuracy (%)
    RF        61.22
    K-Means   94.82
    CNN       95.47

The bench regenerates the same rows: each trained model's real-time IDS
streams the live detection capture window by window and reports the mean
per-window accuracy.  We assert the *shape*: RF collapses far below the
scale-robust models, K-Means and CNN land in the 90s with CNN >= K-Means.
"""

from repro.testbed import run_realtime_detection

from conftest import write_result


def test_table1_realtime_accuracy(benchmark, detect_capture, trained_models, scenario):
    reports = benchmark.pedantic(
        run_realtime_detection,
        args=(detect_capture, trained_models),
        kwargs={"window_seconds": scenario.window_seconds},
        rounds=1,
        iterations=1,
    )
    by_name = {r.model_name: 100.0 * r.mean_accuracy for r in reports}
    lines = ["Table I: ML models performance in real-time detection",
             f"{'Model':<10}{'Accuracy (%)':>14}{'Paper (%)':>12}"]
    paper = {"RF": 61.22, "K-Means": 94.82, "CNN": 95.47}
    for name in ("RF", "K-Means", "CNN"):
        lines.append(f"{name:<10}{by_name[name]:>14.2f}{paper[name]:>12.2f}")
    write_result("table1_realtime_accuracy", lines)

    # Shape assertions: who wins, by roughly what factor.
    assert by_name["RF"] < 80.0, "RF must collapse under live rate shift"
    assert by_name["K-Means"] > 88.0
    assert by_name["CNN"] > 90.0
    assert by_name["CNN"] >= by_name["K-Means"] - 1.0
    assert min(by_name["K-Means"], by_name["CNN"]) - by_name["RF"] > 15.0
