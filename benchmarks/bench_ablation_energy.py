"""Ablation — Green-AI energy profile of the IDS models (paper §VI).

"Green AI initiatives to develop energy-efficient AI systems, potentially
reducing energy consumption in IoT devices used for network monitoring
and analysis ... ensuring high accuracy based on the ML model identified
in our study."

Energy per detection window is derived from the real measured CPU time
scaled to an IoT-class core at :data:`repro.ids.meter.IOT_WATTS`.  The
bench profiles the paper's trio plus the linear SVM (the efficiency
candidate) and ranks accuracy-per-millijoule — the paper's "optimal
algorithm combining high performance and efficient resource consumption".
"""

from repro.ml import LinearSVM
from repro.testbed import ModelSpec, run_realtime_detection, train_models

from conftest import write_result


def specs_with_svm(scenario):
    from repro.testbed import default_model_specs

    specs = default_model_specs(scenario.seed)
    specs.append(
        ModelSpec(
            "SVM",
            lambda n, s=scenario.seed: LinearSVM(epochs=12, random_state=s),
            stat_set="normalized",
            include_details=True,
            include_timestamp=False,
            scale=True,
        )
    )
    return specs


def run_energy(train_capture, detect_capture, scenario):
    trained = train_models(
        train_capture,
        specs=specs_with_svm(scenario),
        window_seconds=scenario.window_seconds,
        seed=scenario.seed,
    )
    return run_realtime_detection(
        detect_capture, trained, window_seconds=scenario.window_seconds
    )


def test_ablation_energy(benchmark, train_capture, detect_capture, scenario):
    reports = benchmark.pedantic(
        run_energy, args=(train_capture, detect_capture, scenario), rounds=1, iterations=1
    )
    rows = []
    for report in reports:
        s = report.sustainability
        assert s is not None
        accuracy = 100 * report.mean_accuracy
        rows.append((report.model_name, accuracy, s.energy_mj_per_window,
                     accuracy / max(s.energy_mj_per_window, 1e-9)))
    lines = [
        "Green-AI energy profile (IoT-class core, 2.5 W active)",
        f"{'Model':<10}{'realtime %':>12}{'mJ/window':>11}{'acc per mJ':>12}",
    ]
    for name, accuracy, energy, efficiency in rows:
        lines.append(f"{name:<10}{accuracy:>12.2f}{energy:>11.1f}{efficiency:>12.2f}")
    by_name = {r[0]: r for r in rows}
    best = max(rows, key=lambda r: r[3])
    lines.append(f"most energy-efficient accurate model: {best[0]}")
    write_result("ablation_energy", lines)

    # Every model's energy is measured and positive.
    assert all(energy > 0 for _, _, energy, _ in rows)
    # The linear SVM is the cheapest per window among accurate models.
    svm = by_name["SVM"]
    assert svm[1] > 90.0
    assert svm[2] <= min(by_name["RF"][2], by_name["CNN"][2])
