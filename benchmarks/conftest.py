"""Shared fixtures for the benchmark harness.

The expensive artefacts — one infected testbed, the training capture,
the trained models, and the detection capture — are built once per
session and shared by every bench.  Each bench times its own piece with
``pytest-benchmark`` and writes the regenerated table/figure rows to
``benchmarks/results/`` so the paper-vs-measured comparison survives the
run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.testbed import (
    Scenario,
    Testbed,
    run_realtime_detection,
    train_models,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: The standard scaled-down analogue of the paper's runs: the paper used
#: a 10-minute dataset run and a 5-minute detection run at hardware
#: packet rates; we keep the 2:1 ratio at simulator scale.
TRAIN_DURATION = 60.0
DETECT_DURATION = 30.0


def write_result(name: str, lines: list[str]) -> None:
    """Persist a bench's regenerated table so it outlives the run."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text("\n".join(lines) + "\n")
    # Also echo to stdout for interactive runs with -s.
    print("\n".join(lines))


@pytest.fixture(scope="session")
def scenario() -> Scenario:
    return Scenario(n_devices=6, seed=7)


@pytest.fixture(scope="session")
def infected_testbed(scenario):
    testbed = Testbed(scenario).build()
    infection_seconds = testbed.infect_all()
    return testbed, infection_seconds


@pytest.fixture(scope="session")
def train_capture(infected_testbed, scenario):
    testbed, _ = infected_testbed
    return testbed.capture(TRAIN_DURATION, scenario.training_schedule(TRAIN_DURATION))


@pytest.fixture(scope="session")
def trained_models(train_capture, scenario):
    return train_models(
        train_capture, window_seconds=scenario.window_seconds, seed=scenario.seed
    )


@pytest.fixture(scope="session")
def detect_capture(infected_testbed, scenario, train_capture):
    # Depends on train_capture so the virtual clock ordering matches the
    # paper: the live run happens after the dataset-generation run.
    testbed, _ = infected_testbed
    return testbed.capture(
        DETECT_DURATION, scenario.detection_schedule(DETECT_DURATION)
    )


@pytest.fixture(scope="session")
def detection_reports(detect_capture, trained_models, scenario):
    return run_realtime_detection(
        detect_capture, trained_models, window_seconds=scenario.window_seconds
    )
