"""Defense evaluation — IDS-driven mitigation restores the victim.

DDoSim positions its measurements as "benchmarks for evaluating the
effectiveness of defense mechanisms, ranging from intrusion detection
systems to traffic filtering and mitigation techniques" (§III-A).  This
bench closes that loop on DDoShield-IoT: the same live attack schedule
runs twice against the TServer — once undefended, once with the K-Means
IDS feeding a blocklist + SYN rate-limit filter — and the victim-impact
series are compared.
"""

import numpy as np

from repro.ids import BlocklistFilter, MitigatingIds, RealTimeIds
from repro.sim.tracing import PacketProbe
from repro.testbed import Scenario, Testbed, attach_victim_monitor, train_models

from conftest import write_result

RUN_SECONDS = 24.0


def run_phase(testbed, scenario, defended: bool, trained):
    monitor = attach_victim_monitor(testbed.tserver)
    filt = None
    ids = None
    if defended:
        km = next(t for t in trained if t.name == "K-Means")
        filt = BlocklistFilter(
            testbed.tserver.node, block_seconds=60.0, syn_rate_limit=50.0, syn_burst=100.0
        ).install()
        ids = RealTimeIds(
            km.model, "K-Means", extractor=km.extractor, scaler=km.scaler,
            window_seconds=scenario.window_seconds,
        )
        MitigatingIds(ids, filt)
        probe = PacketProbe(keep_records=False)
        probe.subscribe(ids.monitor._on_record)
        testbed.lan.add_probe(probe)
    start = testbed.sim.now
    phases = scenario.detection_schedule(RUN_SECONDS, pps_per_bot=80)
    capture = testbed.capture(RUN_SECONDS, phases)
    monitor.stop()
    if defended:
        testbed.lan.channel.remove_probe(probe)
        filt.uninstall()
    return {
        "monitor": monitor.series,
        "start": start,
        "capture": capture,
        "filter_stats": (
            (filt.dropped_by_blocklist, filt.dropped_by_rate_limit, filt.active_blocks)
            if filt
            else (0, 0, 0)
        ),
    }


def run_both():
    scenario = Scenario(n_devices=4, seed=23)
    testbed = Testbed(scenario).build()
    testbed.infect_all()
    train = testbed.capture(40.0, scenario.training_schedule(40.0))
    trained = train_models(train, window_seconds=scenario.window_seconds, seed=scenario.seed)
    undefended = run_phase(testbed, scenario, defended=False, trained=trained)
    defended = run_phase(testbed, scenario, defended=True, trained=trained)
    return undefended, defended


def test_mitigation_restores_victim(benchmark):
    undefended, defended = benchmark.pedantic(run_both, rounds=1, iterations=1)

    def attack_window_rx(result):
        series = result["monitor"]
        start = result["start"]
        # attack seconds per the schedule: three bursts of 15% each
        spans = [(0.10, 0.25), (0.40, 0.55), (0.72, 0.87)]
        rx = []
        for lo, hi in spans:
            rx.extend(
                s.rx_packets
                for s in series.between(start + lo * RUN_SECONDS, start + hi * RUN_SECONDS)
            )
        return float(np.mean(rx)) if rx else 0.0

    rx_open = attack_window_rx(undefended)
    rx_defended = attack_window_rx(defended)
    dropped_blocklist, dropped_rate, active = defended["filter_stats"]

    lines = [
        "Mitigation: IDS-driven blocklist + SYN rate limiting at the victim",
        f"{'configuration':<14}{'attack-window rx pps':>22}",
        f"{'undefended':<14}{rx_open:>22.1f}",
        f"{'defended':<14}{rx_defended:>22.1f}",
        f"filter drops: {dropped_blocklist} by blocklist, {dropped_rate} by SYN rate limit",
        f"active blocks at end: {active}",
    ]
    write_result("mitigation", lines)

    # The defense visibly reduces what reaches the victim during attacks.
    assert dropped_blocklist + dropped_rate > 200
    assert rx_defended < rx_open * 0.8
    assert active >= 1
