"""Ablation — statistical-window period vs CPU cost (§IV-E claim).

The paper: "A strategic approach to mitigate this high CPU usage
involves adjusting the frequency at which statistical features are
computed.  By extending the period for computing these features, a
reduction in CPU utilization can be achieved."

The bench sweeps the window period over {0.5, 1, 2, 5} seconds and
re-runs the K-Means IDS on the same live capture, measuring the metered
CPU percentage for each period (after a warm-up pass, so allocator and
numpy cache effects don't masquerade as a trend).

Reproduction verdict (recorded in EXPERIMENTS.md): in this
implementation the per-*packet* feature cost dominates the per-*window*
overhead, so total CPU per traffic-second is roughly flat in the window
period rather than falling — the paper's mitigation only helps when
fixed per-invocation costs dominate.  The bench therefore asserts
bounded variation and records the sweep, rather than asserting the
paper's direction.
"""

from repro.ids import RealTimeIds
from repro.ml import KMeansDetector, StandardScaler, train_test_split
from repro.testbed import ModelSpec

from conftest import write_result

PERIODS = (0.5, 1.0, 2.0, 5.0)


def sweep(train_capture, detect_capture, seed):
    rows = []
    spec = ModelSpec(
        "K-Means",
        lambda n, s=seed: KMeansDetector(n_clusters=40, auto_k=False, random_state=s),
        stat_set="normalized",
        include_details=True,
        include_timestamp=False,
        scale=True,
    )
    for i, period in enumerate(PERIODS):
        extractor = spec.make_extractor(period)
        X, y, _ = extractor.transform(train_capture.records)
        X_train, X_test, y_train, _ = train_test_split(X, y, seed=seed)
        scaler = StandardScaler().fit(X_train)
        model = spec.factory(X.shape[1])
        model.fit(scaler.transform(X_train), y_train)

        def run_ids():
            ids = RealTimeIds(
                model, f"K-Means@{period}s", extractor=extractor, scaler=scaler,
                window_seconds=period,
            )
            return ids.process(detect_capture.records)

        if i == 0:
            run_ids()  # warm-up: populate numpy/alloc caches once
        report = run_ids()
        assert report.sustainability is not None
        rows.append((period, report.sustainability.cpu_percent, report.mean_accuracy))
    return rows


def test_ablation_window_period_vs_cpu(benchmark, train_capture, detect_capture, scenario):
    rows = benchmark.pedantic(
        sweep, args=(train_capture, detect_capture, scenario.seed), rounds=1, iterations=1
    )
    lines = [
        "Ablation: statistical-window period vs IDS CPU (paper §IV-E)",
        f"{'window (s)':>11}{'CPU (%)':>10}{'accuracy':>10}",
    ]
    for period, cpu, accuracy in rows:
        lines.append(f"{period:>11.1f}{cpu:>10.2f}{accuracy:>10.3f}")
    cpus = [cpu for _, cpu, _ in rows]
    direction = "falls" if cpus[-1] < cpus[0] * 0.8 else "is roughly flat"
    lines.append(
        f"verdict: CPU per traffic-second {direction} with longer windows "
        "(the paper predicts a fall; see EXPERIMENTS.md)"
    )
    write_result("ablation_window", lines)

    # CPU stays bounded across periods (no blow-up from long windows) and
    # never exceeds 2x the cheapest configuration.
    assert max(cpus) < 2.0 * min(cpus)
    # accuracy stays usable across periods
    assert all(acc > 0.7 for _, _, acc in rows)
