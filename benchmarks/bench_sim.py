#!/usr/bin/env python
"""Benchmark the event kernel: scalar packets vs batched trains.

Runs the same seeded scene at each node count twice — scalar per-packet
emission and :class:`~repro.sim.packet.PacketBatch` trains — checks the
two runs are equivalent, and merges the timings into ``BENCH_sim.json``
at the repo root (``flood`` and ``benign`` sections are independent, so
either sweep can be re-run without clobbering the other).

The default sweep is the SYN-flood path; ``--benign`` switches to the
benign plane (HTTP/FTP/RTMP/DNS device mix, no floods), which is the
workload the ``batch_benign`` refactor vectorizes.  ``--smoke`` caps
the sweep at {16, 64} nodes for CI (seconds, exercises batching end to
end); ``--assert-speedup X`` fails the run if the batched kernel is not
at least ``X`` times the scalar packets/s at the largest node count.

    PYTHONPATH=src python benchmarks/bench_sim.py
    PYTHONPATH=src python benchmarks/bench_sim.py --smoke --assert-speedup 1.0
    PYTHONPATH=src python benchmarks/bench_sim.py --benign --nodes 64 256 1024
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.sim.bench import (
    format_benchmark,
    format_benign_benchmark,
    merge_benchmark,
    run_benign_benchmark,
    run_sim_benchmark,
)

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_sim.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, nargs="+", default=[16, 64, 256, 1024])
    parser.add_argument("--pps", type=float, default=20000.0)
    parser.add_argument("--duration", type=float, default=0.05)
    parser.add_argument("--window-seconds", type=float, default=0.01)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--attack", default="syn", choices=["syn", "udp", "ack", "http"])
    parser.add_argument(
        "--segment-size",
        type=int,
        default=64,
        help="devices per CSMA segment (0 = flat LAN, small node counts only)",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--benign",
        action="store_true",
        help="benchmark the benign plane (device HTTP/FTP/RTMP/DNS mix, no "
        "floods) instead of the flood path; writes the 'benign' section",
    )
    parser.add_argument(
        "--benign-duration",
        type=float,
        default=8.0,
        help="sim-seconds per benign run (flood --duration is far too short "
        "for session-scale traffic)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="cap the sweep at {16, 64} nodes for CI: fast, correctness-focused",
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless batch ≥ X× scalar packets/s at the largest node count",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.nodes = [n for n in args.nodes if n <= 64] or [16, 64]
    if args.benign:
        result = run_benign_benchmark(
            node_counts=args.nodes,
            duration=args.benign_duration,
            seed=args.seed,
            devices_per_segment=args.segment_size,
        )
        section, formatted = "benign", format_benign_benchmark(result)
    else:
        result = run_sim_benchmark(
            node_counts=args.nodes,
            pps_per_node=args.pps,
            duration=args.duration,
            seed=args.seed,
            attack=args.attack,
            window_seconds=args.window_seconds,
            devices_per_segment=args.segment_size,
        )
        section, formatted = "flood", format_benchmark(result)
    result["smoke"] = args.smoke
    path = merge_benchmark(result, args.out, section)
    print(formatted)
    print(f"wrote {path}")
    if args.assert_speedup is not None:
        top = result["runs"][-1]
        speedup = top["speedup_packets_per_second"]
        if speedup < args.assert_speedup:
            print(
                f"FAIL: batch kernel is {speedup:.2f}× scalar at "
                f"{top['nodes']} nodes (required ≥ {args.assert_speedup}×)"
            )
            return 1
        print(f"speedup check passed: {speedup:.2f}× ≥ {args.assert_speedup}×")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
