"""Table II — ML model sustainability: CPU %, memory, model size.

Paper (DSN'24, Table II):

    Model     CPU (%)   Memory (Kb)   Model Size (Kb)
    RF        65.46     98.07         712.30
    K-Means   67.88     86.83         11.20
    CNN       65.94     275.85        736.30

The bench regenerates the rows from real measurements: CPU is actual
``process_time`` per window against the documented IoT budget, memory is
the real tracemalloc peak of each window's detection compute, and model
size is the pickled PKL size.  Shape assertions: the K-Means model is by
far the smallest, the CNN occupies the most working memory, and RF/CNN
model sizes are within the same order of magnitude.
"""

from repro.ids import RealTimeIds

from conftest import write_result


def run_one(detect_capture, trained, scenario):
    """Re-run one model's IDS loop (this is what the benchmark times)."""
    item = trained[0]
    ids = RealTimeIds(
        model=item.model,
        model_name=item.name,
        extractor=item.extractor,
        scaler=item.scaler,
        window_seconds=scenario.window_seconds,
    )
    return ids.process(detect_capture.records)


def test_table2_sustainability(benchmark, detect_capture, trained_models, scenario, detection_reports):
    benchmark.pedantic(
        run_one,
        args=(detect_capture, trained_models, scenario),
        rounds=1,
        iterations=1,
    )
    rows = {}
    for report in detection_reports:
        s = report.sustainability
        assert s is not None
        rows[report.model_name] = (s.cpu_percent, s.memory_kb, s.model_size_kb)

    paper = {
        "RF": (65.46, 98.07, 712.30),
        "K-Means": (67.88, 86.83, 11.20),
        "CNN": (65.94, 275.85, 736.30),
    }
    lines = [
        "Table II: ML models sustainability",
        f"{'Model':<10}{'CPU (%)':>10}{'Mem (Kb)':>12}{'Size (Kb)':>12}"
        f"{'paper CPU':>12}{'paper Mem':>12}{'paper Size':>12}",
    ]
    for name in ("RF", "K-Means", "CNN"):
        cpu, mem, size = rows[name]
        pcpu, pmem, psize = paper[name]
        lines.append(
            f"{name:<10}{cpu:>10.2f}{mem:>12.2f}{size:>12.2f}"
            f"{pcpu:>12.2f}{pmem:>12.2f}{psize:>12.2f}"
        )
    write_result("table2_sustainability", lines)

    # Shape assertions.
    assert rows["K-Means"][2] < rows["RF"][2] / 10, "K-Means model far smallest"
    assert rows["K-Means"][2] < rows["CNN"][2] / 10
    assert rows["CNN"][1] > rows["RF"][1], "CNN uses the most working memory"
    assert rows["CNN"][1] > rows["K-Means"][1]
    # RF and CNN PKLs are the two heavyweight models (same order of magnitude).
    ratio = rows["RF"][2] / rows["CNN"][2]
    assert 0.2 < ratio < 5.0
    # every model fits an IoT-class CPU budget within ~2x
    for name in rows:
        assert rows[name][0] < 200.0
