#!/usr/bin/env python
"""Time the feature pipeline: legacy per-record vs vectorized columnar.

Runs offline `FeatureExtractor.transform` and per-window IDS latency on
a synthetic capture (default 100k packets) and appends the results to
the ``BENCH_features.json`` history at the repo root (compare runs
across commits with ``ddoshield bench-compare``).  ``--smoke`` runs a tiny
capture for CI (seconds, exercises the vectorized path end to end
including the legacy-equivalence assertion, but makes no speedup claim).

    PYTHONPATH=src python benchmarks/bench_features.py
    PYTHONPATH=src python benchmarks/bench_features.py --smoke
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.features.bench import format_benchmark, merge_benchmark, run_feature_benchmark

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_features.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--packets", type=int, default=100_000)
    parser.add_argument("--duration", type=float, default=100.0)
    parser.add_argument("--window-seconds", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny capture for CI: fast, correctness-focused, no perf claim",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.packets = min(args.packets, 2_000)
        args.duration = min(args.duration, 20.0)
        args.repeats = 1
    result = run_feature_benchmark(
        n_packets=args.packets,
        duration=args.duration,
        window_seconds=args.window_seconds,
        seed=args.seed,
        repeats=args.repeats,
    )
    result["smoke"] = args.smoke
    path = merge_benchmark(result, args.out, "features")
    print(format_benchmark(result))
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
