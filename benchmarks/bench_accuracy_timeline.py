"""§IV-D per-second accuracy timeline — dips at attack boundaries.

The paper analyses "the accuracy score related to each second during the
simulation" and observes that "the first and the last second of an
attack duration report a drop in the model accuracy", with a minimum of
35 % for the K-Means model, attributing it to the window-level
statistical features shared by every packet in the boundary second.

The bench regenerates the per-second accuracy series for each model and
verifies that (a) boundary windows exist and score markedly below the
models' interior windows, and (b) the worst K-Means window falls in a
transition region.
"""

import numpy as np

from conftest import write_result


def series_for(report):
    return report.accuracy_series()


def test_accuracy_timeline(benchmark, detection_reports, detect_capture):
    km = next(r for r in detection_reports if r.model_name == "K-Means")
    series = benchmark.pedantic(series_for, args=(km,), rounds=1, iterations=1)

    lines = ["Per-second real-time accuracy (detection run)"]
    header = "t(s)      " + "".join(f"{r.model_name:>10}" for r in detection_reports) + "   mix"
    lines.append(header)
    by_index = {}
    for report in detection_reports:
        for window in report.windows:
            by_index.setdefault(window.window_index, {})[report.model_name] = window
    for index in sorted(by_index):
        row = by_index[index]
        any_window = next(iter(row.values()))
        mix = (
            "attack" if any_window.is_pure_malicious
            else "benign" if any_window.is_pure_benign
            else "mixed"
        )
        cells = "".join(
            f"{row[r.model_name].accuracy:>10.2f}" if r.model_name in row else f"{'-':>10}"
            for r in detection_reports
        )
        lines.append(f"{any_window.start_time:<10.0f}{cells}   {mix}")
    write_result("accuracy_timeline", lines)

    # (a) The K-Means timeline has boundary windows, and they are worse
    # than its interior performance.
    boundaries = km.boundary_windows()
    assert boundaries, "no class transitions found in the detection run"
    boundary_indices = {w.window_index for w in boundaries}
    interior = [w.accuracy for w in km.windows if w.window_index not in boundary_indices]
    worst_boundary = min(w.accuracy for w in boundaries)
    assert worst_boundary < np.mean(interior) - 0.1

    # (b) A pronounced dip exists (the paper reports a 35% minimum).
    assert km.min_accuracy < 0.6
    # and the dip belongs to a mixed/transition window, per the paper's
    # statistical-feature-noise explanation.
    worst = min(km.windows, key=lambda w: w.accuracy)
    assert 0 < worst.n_malicious_true < worst.n_packets or worst.window_index in boundary_indices
