"""§IV-D training-phase metrics: accuracy / precision / recall / F1.

The paper reports that after training "all models have attained
[high] values across these evaluation metrics, with a small amount of
false positives and false negatives".  The bench times model training on
the generated dataset and regenerates the per-model metric rows on the
held-out split.
"""

from repro.testbed import train_models

from conftest import write_result


def test_training_metrics(benchmark, train_capture, scenario):
    trained = benchmark.pedantic(
        train_models,
        args=(train_capture,),
        kwargs={"window_seconds": scenario.window_seconds, "seed": scenario.seed},
        rounds=1,
        iterations=1,
    )
    lines = [
        "Training-phase evaluation (held-out 30% split)",
        f"{'Model':<10}{'Accuracy':>10}{'Precision':>11}{'Recall':>9}{'F1':>8}{'fit (s)':>9}",
    ]
    for item in trained:
        r = item.train_report
        lines.append(
            f"{item.name:<10}{r.accuracy:>10.4f}{r.precision:>11.4f}"
            f"{r.recall:>9.4f}{r.f1:>8.4f}{item.fit_seconds:>9.2f}"
        )
    write_result("training_metrics", lines)

    for item in trained:
        r = item.train_report
        assert r.accuracy > 0.95, f"{item.name} training accuracy too low"
        assert r.precision > 0.9
        assert r.recall > 0.9
        assert r.f1 > 0.9
        # "a small amount of false positives and false negatives"
        tn, fp, fn, tp = r.confusion.ravel()
        assert fp + fn < 0.05 * (tn + fp + fn + tp)
