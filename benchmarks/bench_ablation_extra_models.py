"""Ablation — the paper's §V future-work models: SVM, iForest, autoencoder.

"We consider extending the investigation ... additional ML models
representative of the most popular tools used for intrusion detection in
the IoT domain (e.g., Support Vector Machine (SVM), Isolation Forest
(IF), Variational Autoencoder (VAE))."

The bench trains the three extension models on the same dataset and runs
them through the same real-time IDS loop, extending Table I/II with
their rows (the autoencoder stands in for the VAE, see DESIGN.md).
"""

from repro.ml import AutoencoderDetector, IsolationForestDetector, LinearSVM
from repro.testbed import ModelSpec, run_realtime_detection, train_models

from conftest import write_result


def extension_specs(seed: int) -> list[ModelSpec]:
    view = dict(
        stat_set="normalized",
        include_details=True,
        include_timestamp=False,
        scale=True,
    )
    return [
        ModelSpec("SVM", lambda n, s=seed: LinearSVM(epochs=12, random_state=s), **view),
        ModelSpec(
            "iForest",
            lambda n, s=seed: IsolationForestDetector(
                n_estimators=40, random_state=s
            ),
            **view,
        ),
        ModelSpec(
            "Autoencoder",
            lambda n, s=seed: AutoencoderDetector(
                n_features=n, epochs=8, random_state=s
            ),
            **view,
        ),
    ]


def run_extensions(train_capture, detect_capture, scenario):
    trained = train_models(
        train_capture,
        specs=extension_specs(scenario.seed),
        window_seconds=scenario.window_seconds,
        seed=scenario.seed,
    )
    reports = run_realtime_detection(
        detect_capture, trained, window_seconds=scenario.window_seconds
    )
    return trained, reports


def test_ablation_extra_models(benchmark, train_capture, detect_capture, scenario):
    trained, reports = benchmark.pedantic(
        run_extensions, args=(train_capture, detect_capture, scenario), rounds=1, iterations=1
    )
    lines = [
        "Ablation: future-work models (paper SSV) on the same testbed",
        f"{'Model':<13}{'train acc':>10}{'realtime %':>12}{'CPU %':>8}{'Size Kb':>9}",
    ]
    by_name = {}
    for item, report in zip(trained, reports):
        s = report.sustainability
        assert s is not None
        lines.append(
            f"{item.name:<13}{item.train_report.accuracy:>10.3f}"
            f"{100 * report.mean_accuracy:>12.2f}{s.cpu_percent:>8.2f}{s.model_size_kb:>9.2f}"
        )
        by_name[item.name] = (item, report)
    write_result("ablation_extra_models", lines)

    # Supervised SVM trains well on the (mostly linearly separable) view.
    assert by_name["SVM"][0].train_report.accuracy > 0.9
    # The anomaly detectors are usable but weaker than the supervised trio,
    # which is why the paper treats them as future work.
    for name in ("iForest", "Autoencoder"):
        assert by_name[name][1].mean_accuracy > 0.5
    # SVM remains tiny on disk (linear weights only).
    assert by_name["SVM"][0].size_kb < 5.0
