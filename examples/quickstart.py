"""Quickstart: build the testbed, infect the fleet, train an IDS, detect.

Runs the whole DDoShield-IoT loop in about a minute of wall time:

    python examples/quickstart.py
"""

from repro.features import FeatureExtractor
from repro.ids import RealTimeIds
from repro.ml import KMeansDetector, StandardScaler, train_test_split
from repro.testbed import Scenario, Testbed


def main() -> None:
    # 1. Assemble Figure 1: TServer, 4 Devs, Attacker, shared CSMA LAN.
    scenario = Scenario(n_devices=4, seed=42)
    testbed = Testbed(scenario).build()

    # 2. Run the Mirai lifecycle: scan -> crack -> load -> register.
    seconds = testbed.infect_all()
    print(f"botnet assembled: {testbed.bot_count} bots in {seconds:.1f} sim-seconds")

    # 3. Dataset-generation run: benign traffic + three flood bursts.
    train = testbed.capture(40.0, scenario.training_schedule(40.0))
    print(train.summary())

    # 4. Train a K-Means IDS on windowed features.
    extractor = FeatureExtractor(
        window_seconds=1.0,
        stat_set="normalized",
        include_details=True,
        include_timestamp=False,
    )
    X, y, _ = extractor.transform(train.records)
    X_train, X_test, y_train, y_test = train_test_split(X, y, seed=1)
    scaler = StandardScaler().fit(X_train)
    model = KMeansDetector(n_clusters=40, auto_k=False, random_state=1)
    model.fit(scaler.transform(X_train), y_train)
    from repro.ml import evaluate_classifier

    print("training:", evaluate_classifier(y_test, model.predict(scaler.transform(X_test))))

    # 5. Real-time detection on a fresh live run.
    live = testbed.capture(20.0, scenario.detection_schedule(20.0))
    ids = RealTimeIds(model, "K-Means", extractor=extractor, scaler=scaler)
    report = ids.process(live.records)
    print(report)
    print(f"alerts raised in {len(ids.alerts)} windows")


if __name__ == "__main__":
    main()
