"""Bucket-shuffle equivalence check: the runtime event-order race detector.

The event kernel claims equal-``(time, priority)`` bucket mates commute;
``ddoshield check-parity`` (rule ORD002) reasons about that claim
statically, and the shuffle sanitizer tests it dynamically:
``REPRO_SHUFFLE=<seed>`` makes the kernel deterministically permute
every same-bucket drain, so any hidden order dependence changes
observable results.

This script

1. proves the detector is armed — a deliberately order-dependent toy
   workload *must* diverge under shuffling (a vacuous detector would be
   worse than none);
2. runs one small full experiment under several shuffle seeds and
   asserts the result fingerprint (dataset summaries + every per-model
   window verdict) is bit-identical throughout.

    PYTHONPATH=src python examples/shuffle_check.py [seeds...]
"""

import sys

from repro.sim import Simulator
from repro.testbed import Scenario, run_full_experiment


def prove_detector_is_armed() -> None:
    """A last-writer-wins race must be visible under some shuffle seed."""

    def last_writer(shuffle_buckets):
        sim = Simulator(shuffle_buckets=shuffle_buckets)
        state = {"winner": None}
        for tag in range(8):
            sim.schedule(1.0, state.__setitem__, "winner", tag)
        sim.run()
        return state["winner"]

    unshuffled = last_writer(None)
    winners = {seed: last_writer(seed) for seed in range(1, 6)}
    assert set(winners.values()) != {unshuffled}, (
        "shuffle sanitizer is vacuous: an order-dependent workload was "
        "not perturbed by any seed"
    )
    print(f"self-test: order-dependent toy diverges under shuffle "
          f"(unshuffled winner={unshuffled}, shuffled={winners})")


def main() -> None:
    seeds = [int(arg, 0) for arg in sys.argv[1:]] or [1, 2, 3]
    prove_detector_is_armed()

    scenario = Scenario(n_devices=3, seed=11)
    baseline = run_full_experiment(
        scenario, train_duration=20.0, detect_duration=10.0
    )
    reference = baseline.fingerprint()
    print(f"\nunshuffled fingerprint: {reference}")
    for name, accuracy in baseline.table1():
        print(f"  {name:<10} window accuracy {accuracy:6.2f}%")

    for seed in seeds:
        result = run_full_experiment(
            scenario,
            train_duration=20.0,
            detect_duration=10.0,
            shuffle_buckets=seed,
        )
        fingerprint = result.fingerprint()
        status = "OK" if fingerprint == reference else "DIVERGED"
        print(f"shuffle seed {seed:>3}: {fingerprint} {status}")
        assert fingerprint == reference, (
            f"shuffle seed {seed} changed observable results: "
            f"{fingerprint} != {reference} — a same-bucket event race "
            "(see ORD002 in `ddoshield check-parity`)"
        )
    print(f"\nall {len(seeds)} shuffle seeds bit-identical to the "
          "unshuffled run; same-bucket events commute")


if __name__ == "__main__":
    main()
