"""A narrated Mirai campaign: scan, crack, infect, propagate, flood.

Watches the botnet lifecycle stage by stage, including worm-style
self-propagation (each new bot scans for further victims), then launches
the three flood types against the TServer and reports their impact.

    python examples/mirai_campaign.py
"""

from repro.sim import PacketProbe
from repro.testbed import Scenario, Testbed


def main() -> None:
    scenario = Scenario(n_devices=6, seed=99, self_propagate=True)
    testbed = Testbed(scenario).build()
    sim = testbed.sim

    print("=== stage 0: the fleet ===")
    for i, telnet in enumerate(testbed.telnets):
        print(f"  dev-{i} @ {testbed.devices[i].node.address} "
              f"(telnet login {telnet.username}/{telnet.password})")

    print("\n=== stage 1-2: scan & infect (attacker seeds one device; bots spread) ===")
    # Seed infection: only scan the first device; propagation does the rest.
    testbed.scanner.scan([testbed.devices[0].node.address])
    last = -1
    while testbed.bot_count < scenario.n_devices and sim.now < 900:
        sim.run(until=sim.now + 5.0)
        if testbed.bot_count != last:
            last = testbed.bot_count
            print(f"  t={sim.now:6.1f}s bots registered: {testbed.bot_count}"
                  f"  (scanner connections: {testbed.scanner.connections_opened}, "
                  f"loader pushes: {testbed.loader.infections_completed})")

    print("\n=== stage 3: C2 is live ===")
    assert testbed.cnc is not None
    print(f"  CNC controls {testbed.cnc.bot_count} bots "
          f"({testbed.cnc.pings_received} keepalives so far)")

    print("\n=== stage 4: DDoS ===")
    probe = PacketProbe()
    testbed.lan.add_probe(probe)
    tserver = testbed.tserver
    assert tserver is not None
    listener = tserver.node.tcp.listeners[80]
    for kind in ("syn", "ack", "udp"):
        order = testbed.cnc.launch_attack(
            kind, tserver.node.address, 80, duration=5.0, pps=150
        )
        sim.run(until=sim.now + 7.0)
        flood = sum(1 for r in probe.records if r.attack == f"{kind}_flood")
        print(f"  {kind.upper()} flood: {flood} packets on the wire "
              f"(order: {order.encode().decode().strip()})")
        if kind == "syn":
            print(f"    victim backlog: {len(listener.half_open)} half-open, "
                  f"{listener.syn_dropped} SYNs dropped")
        if kind == "ack":
            print(f"    victim sent {tserver.node.tcp.rst_sent} RSTs back")
        if kind == "udp":
            print(f"    victim counted {tserver.node.udp.unreachable} "
                  f"unreachable-port datagrams")
    testbed.lan.channel.remove_probe(probe)
    summary_malicious = sum(1 for r in probe.records if r.label == 1)
    print(f"\ncampaign total: {probe.count} packets captured, "
          f"{summary_malicious} malicious")


if __name__ == "__main__":
    main()
