"""Fault scenario: real-time detection under loss, partition, and a crash.

End-to-end robustness run:

1. assemble the testbed and run the Mirai infection lifecycle;
2. record a clean training capture and fit a K-Means IDS;
3. record the detection capture with the scenario's default fault plan
   armed — 5% Bernoulli loss across the first flood bursts, a link
   partition severing ``dev-0``, and a crash of the last Dev container
   with an ``on-failure`` restart policy;
4. print the fault log, the supervisor's crash/restart decisions, and
   the detection report's healthy-vs-degraded accuracy breakdown.

    PYTHONPATH=src python examples/fault_scenario.py
"""

from repro.testbed import Scenario, default_model_specs, run_fault_experiment


def main() -> None:
    scenario = Scenario(n_devices=3, seed=11)
    specs = [s for s in default_model_specs(scenario.seed) if s.name == "K-Means"]
    result = run_fault_experiment(
        scenario,
        train_duration=40.0,
        detect_duration=20.0,
        specs=specs,
    )

    assert result.fault_plan is not None
    print("fault plan:")
    for spec in result.fault_plan.specs:
        print(f"  {spec.describe()}")

    print("\nfault injector log:")
    for event in result.fault_events:
        print(f"  t={event.time:8.3f}  {event.action:<10} {event.kind} "
              f"targets={','.join(event.targets)}")

    print("\nsupervisor log:")
    for event in result.supervisor_events:
        print(f"  t={event.time:8.3f}  {event.action:<8} {event.container} {event.detail}")

    report = result.detection[0]
    print(f"\n{report}")
    breakdown = report.fault_breakdown()
    print("breakdown:", {k: round(v, 3) for k, v in breakdown.items()})

    # The run must have exercised every supervision path.
    assert result.restarts, "expected the killed container to restart"
    assert report.n_degraded > 0, "expected degraded windows in the report"
    assert report.healthy_windows, "expected healthy windows in the report"
    victim = f"dev-{scenario.n_devices - 1}"
    assert result.restarts.get(victim, 0) >= 1
    print(f"\nok: {victim} restarted {result.restarts[victim]}x, "
          f"{report.n_degraded}/{report.n_windows} windows degraded")


if __name__ == "__main__":
    main()
