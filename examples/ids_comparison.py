"""Reproduce the paper's full evaluation: Tables I and II in one run.

Trains RF, K-Means, and CNN on a generated dataset, then streams a live
detection run through each model's real-time IDS, printing the
training-phase metrics, Table I (real-time accuracy), and Table II
(sustainability) side by side with the paper's published values.

    python examples/ids_comparison.py
"""

from repro.testbed import run_full_experiment

PAPER_TABLE1 = {"RF": 61.22, "K-Means": 94.82, "CNN": 95.47}
PAPER_TABLE2 = {
    "RF": (65.46, 98.07, 712.30),
    "K-Means": (67.88, 86.83, 11.20),
    "CNN": (65.94, 275.85, 736.30),
}


def main() -> None:
    result = run_full_experiment(train_duration=60.0, detect_duration=30.0)

    print("dataset-generation run:")
    print(result.train_summary)
    print(f"\ninfection took {result.infection_seconds:.1f} sim-seconds")

    print("\ntraining-phase metrics (held-out split):")
    print(f"{'Model':<10}{'Accuracy':>10}{'Precision':>11}{'Recall':>9}{'F1':>8}")
    for name, accuracy, precision, recall, f1 in result.training_metrics():
        print(f"{name:<10}{accuracy:>10.4f}{precision:>11.4f}{recall:>9.4f}{f1:>8.4f}")

    print("\nTable I — real-time detection accuracy:")
    print(f"{'Model':<10}{'ours (%)':>10}{'paper (%)':>11}")
    for name, accuracy in result.table1():
        print(f"{name:<10}{accuracy:>10.2f}{PAPER_TABLE1[name]:>11.2f}")

    print("\nTable II — sustainability:")
    print(f"{'Model':<10}{'CPU%':>8}{'Mem Kb':>9}{'Size Kb':>9}   (paper: CPU/Mem/Size)")
    for name, cpu, mem, size in result.table2():
        p = PAPER_TABLE2[name]
        print(f"{name:<10}{cpu:>8.2f}{mem:>9.2f}{size:>9.2f}   "
              f"({p[0]:.2f} / {p[1]:.2f} / {p[2]:.2f})")

    print("\nper-window accuracy minima (boundary dips):")
    for report in result.detection:
        print(f"  {report.model_name}: min {100 * report.min_accuracy:.1f}% "
              f"over {report.n_windows} windows")


if __name__ == "__main__":
    main()
