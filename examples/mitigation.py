"""Close the loop: detect a live DDoS and mitigate it at the victim.

Runs the same attack schedule twice against the TServer — undefended,
then with the K-Means IDS feeding a blocklist + SYN rate-limit filter —
and prints the victim's per-second health for both, showing goodput
collapse and recovery.

    python examples/mitigation.py
"""

import numpy as np

from repro.ids import BlocklistFilter, MitigatingIds, RealTimeIds
from repro.sim import PacketProbe
from repro.testbed import Scenario, Testbed, attach_victim_monitor, train_models


def run_phase(testbed, scenario, trained, defended: bool, seconds: float = 24.0):
    monitor = attach_victim_monitor(testbed.tserver)
    probe = None
    filt = None
    if defended:
        km = next(t for t in trained if t.name == "K-Means")
        filt = BlocklistFilter(
            testbed.tserver.node, block_seconds=60.0,
            syn_rate_limit=50.0, syn_burst=100.0,
        ).install()
        ids = RealTimeIds(km.model, "K-Means", extractor=km.extractor, scaler=km.scaler)
        MitigatingIds(ids, filt)
        probe = PacketProbe(keep_records=False)
        probe.subscribe(ids.monitor._on_record)
        testbed.lan.add_probe(probe)
    start = testbed.sim.now
    testbed.capture(seconds, scenario.detection_schedule(seconds, pps_per_bot=80))
    monitor.stop()
    if probe is not None:
        testbed.lan.channel.remove_probe(probe)
    if filt is not None:
        filt.uninstall()
    return monitor.series, start, filt


def main() -> None:
    scenario = Scenario(n_devices=4, seed=23)
    testbed = Testbed(scenario).build()
    testbed.infect_all()
    train = testbed.capture(40.0, scenario.training_schedule(40.0))
    trained = train_models(train, seed=scenario.seed)

    open_series, open_start, _ = run_phase(testbed, scenario, trained, defended=False)
    defended_series, defended_start, filt = run_phase(testbed, scenario, trained, defended=True)

    print("victim receive rate per second (attack bursts at ~10-25%, 40-55%, 72-87%):")
    print(f"{'t':>4}{'undefended pps':>16}{'defended pps':>14}")
    for i, (a, b) in enumerate(zip(open_series.samples, defended_series.samples)):
        print(f"{i:>4}{a.rx_packets:>16.0f}{b.rx_packets:>14.0f}")

    assert filt is not None
    print(f"\nfilter: {filt.dropped_by_blocklist} dropped by blocklist, "
          f"{filt.dropped_by_rate_limit} by SYN rate limit, "
          f"{filt.active_blocks} sources still blocked")
    mean_open = np.mean([s.rx_packets for s in open_series.samples])
    mean_defended = np.mean([s.rx_packets for s in defended_series.samples])
    print(f"mean rx: {mean_open:.0f} pps undefended vs {mean_defended:.0f} pps defended")


if __name__ == "__main__":
    main()
