"""Close the loop: detect a live DDoS and mitigate it at the victim.

Runs the same attack schedule twice against the TServer — undefended,
then with the full :class:`~repro.ids.MitigationPlan` loop (blocklist,
SYN cookies, upstream filtering) driven by the K-Means IDS — and prints
the victim's per-second health for both, showing goodput collapse and
recovery.

    python examples/mitigation.py
"""

import numpy as np

from repro.ids import MitigationPlan
from repro.sim import PacketProbe
from repro.testbed import Scenario, Testbed, attach_victim_monitor, train_models


def run_phase(testbed, scenario, trained, plan=None, seconds: float = 24.0):
    monitor = attach_victim_monitor(testbed.tserver)
    # A LAN-wide probe counting what the wire carries this phase; added
    # and removed through the same CsmaLan surface.
    probe = PacketProbe(keep_records=False)
    testbed.lan.add_probe(probe)
    controller = None
    if plan is not None:
        model = next(t for t in trained if t.name == plan.model)
        testbed.install_mitigation(plan, model)
    testbed.capture(seconds, scenario.detection_schedule(seconds, pps_per_bot=80))
    monitor.stop()
    if plan is not None:
        controller = testbed.uninstall_mitigation()
    testbed.lan.remove_probe(probe)
    return monitor.series, probe, controller


def main() -> None:
    scenario = Scenario(n_devices=4, seed=23)
    testbed = Testbed(scenario).build()
    testbed.infect_all()
    train = testbed.capture(40.0, scenario.training_schedule(40.0))
    trained = train_models(train, seed=scenario.seed)

    plan = MitigationPlan(model="K-Means", block_seconds=60.0)
    open_series, open_probe, _ = run_phase(testbed, scenario, trained)
    defended_series, defended_probe, controller = run_phase(
        testbed, scenario, trained, plan=plan
    )

    print("victim receive rate per second (attack bursts at ~10-25%, 40-55%, 72-87%):")
    print(f"{'t':>4}{'undefended pps':>16}{'defended pps':>14}")
    for i, (a, b) in enumerate(zip(open_series.samples, defended_series.samples)):
        print(f"{i:>4}{a.rx_packets:>16.0f}{b.rx_packets:>14.0f}")

    assert controller is not None
    summary = controller.summary()
    print(f"\ndefense: {summary['blocks_issued']} block(s) issued, "
          f"{summary['dropped_by_blocklist']} dropped by blocklist, "
          f"{summary['dropped_upstream']} dropped upstream, "
          f"{summary['syn_cookies_sent']} SYN cookies sent")
    print(f"wire saw {open_probe.count} frames undefended "
          f"vs {defended_probe.count} defended")
    mean_open = np.mean([s.goodput_bytes for s in open_series.samples])
    mean_defended = np.mean([s.goodput_bytes for s in defended_series.samples])
    print(f"mean goodput: {mean_open:.0f} B/s undefended "
          f"vs {mean_defended:.0f} B/s defended")


if __name__ == "__main__":
    main()
