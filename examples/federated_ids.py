"""Federated-learning NIDS emulation (the paper's §VI roadmap).

Each device trains a local linear-SVM IDS on the traffic slice its
duty-cycled monitor observes; FedAvg rounds aggregate the weights into a
global model that approaches centralised accuracy without any device
sharing its raw traffic.

    python examples/federated_ids.py
"""

import numpy as np

from repro.features import FeatureExtractor
from repro.ml import LinearSVM, StandardScaler, accuracy_score
from repro.ml.federated import FederatedClient, FederatedCoordinator
from repro.testbed import Scenario, Testbed


def main() -> None:
    scenario = Scenario(n_devices=6, seed=55)
    testbed = Testbed(scenario).build()
    testbed.infect_all()
    capture = testbed.capture(50.0, scenario.training_schedule(50.0))
    print(capture.summary())

    extractor = FeatureExtractor(
        stat_set="normalized", include_details=True, include_timestamp=False
    )
    X, y, window_ids = extractor.transform(capture.records)
    scaler = StandardScaler().fit(X)
    Xs = scaler.transform(X)

    holdout = np.zeros(len(X), dtype=bool)
    holdout[::4] = True

    def train_fn(model, Xc, yc):
        model.partial_fit(Xc, yc, epochs=4)

    clients = []
    owner = window_ids % scenario.n_devices
    for i in range(scenario.n_devices):
        mask = (owner == i) & ~holdout
        if mask.sum() < 100 or len(np.unique(y[mask])) < 2:
            continue
        clients.append(
            FederatedClient(f"dev-{i}", LinearSVM(epochs=4, random_state=i),
                            Xs[mask], y[mask], train_fn)
        )
        local_attack_share = y[mask].mean()
        print(f"  client dev-{i}: {mask.sum()} packets "
              f"({100 * local_attack_share:.0f}% malicious locally)")

    def evaluate(weights):
        probe = LinearSVM()
        probe.set_weights(weights)
        return accuracy_score(y[holdout], probe.predict(Xs[holdout]))

    base = LinearSVM(epochs=1, random_state=0).fit(Xs[~holdout][:200], y[~holdout][:200])
    coordinator = FederatedCoordinator(clients, base.get_weights())
    coordinator.run(6, evaluate=evaluate)

    print("\nFedAvg rounds (global accuracy on held-out traffic):")
    for i, accuracy in enumerate(coordinator.round_history, start=1):
        print(f"  round {i}: {accuracy:.4f}")

    central = LinearSVM(epochs=12, random_state=0).fit(Xs[~holdout], y[~holdout])
    print(f"centralised baseline: {accuracy_score(y[holdout], central.predict(Xs[holdout])):.4f}")


if __name__ == "__main__":
    main()
