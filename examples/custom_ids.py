"""Plug a custom detector into the testbed's real-time IDS.

DDoShield-IoT's purpose is evaluating *your* IDS: anything exposing
``fit(X, y)`` / ``predict(X)`` drops into the same pipeline the built-in
models use.  This example implements a tiny hand-rolled threshold
detector (one rule on destination-port entropy + SYN ratio) and compares
it against the built-in K-Means on the same live run.

    python examples/custom_ids.py
"""

import numpy as np

from repro.features import FeatureExtractor
from repro.ids import RealTimeIds
from repro.ml import KMeansDetector, StandardScaler, train_test_split
from repro.testbed import Scenario, Testbed


class ThresholdRuleDetector:
    """A two-rule expert system learned from label statistics.

    Flags a packet when its window shows flood structure: destination
    ports either hyper-concentrated (TCP floods) or hyper-dispersed
    (random-port UDP floods) relative to thresholds calibrated on the
    benign training windows.
    """

    def __init__(self) -> None:
        self.low_entropy_ = 0.0
        self.high_entropy_ = np.inf
        self.entropy_col: int | None = None
        self.top_fraction_col: int | None = None

    def calibrate(self, feature_names: tuple[str, ...]) -> None:
        self.entropy_col = feature_names.index("dport_entropy")
        self.top_fraction_col = feature_names.index("top_dport_fraction")

    def fit(self, X: np.ndarray, y: np.ndarray) -> "ThresholdRuleDetector":
        assert self.entropy_col is not None, "call calibrate(feature_names) first"
        benign_entropy = X[y == 0, self.entropy_col]
        self.low_entropy_ = float(np.quantile(benign_entropy, 0.02))
        self.high_entropy_ = float(np.quantile(benign_entropy, 0.98))
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        entropy = X[:, self.entropy_col]
        top = X[:, self.top_fraction_col]
        flood_like = (entropy < self.low_entropy_) | (entropy > self.high_entropy_)
        concentrated = top > 0.95
        return (flood_like | concentrated).astype(int)


def main() -> None:
    scenario = Scenario(n_devices=4, seed=7)
    testbed = Testbed(scenario).build()
    testbed.infect_all()
    train = testbed.capture(40.0, scenario.training_schedule(40.0))
    live = testbed.capture(20.0, scenario.detection_schedule(20.0))

    extractor = FeatureExtractor(
        stat_set="normalized", include_details=True, include_timestamp=False
    )
    X, y, _ = extractor.transform(train.records)
    X_train, _, y_train, _ = train_test_split(X, y, seed=3)

    # Custom rule-based detector: operates on raw (unscaled) features.
    custom = ThresholdRuleDetector()
    custom.calibrate(extractor.feature_names)
    custom.fit(X_train, y_train)
    custom_report = RealTimeIds(custom, "threshold-rules", extractor=extractor).process(
        live.records
    )

    # Built-in K-Means for comparison (scaled view).
    scaler = StandardScaler().fit(X_train)
    kmeans = KMeansDetector(n_clusters=40, auto_k=False, random_state=3)
    kmeans.fit(scaler.transform(X_train), y_train)
    km_report = RealTimeIds(kmeans, "K-Means", extractor=extractor, scaler=scaler).process(
        live.records
    )

    print("real-time comparison on the same live capture:")
    for report in (custom_report, km_report):
        assert report.sustainability is not None
        print(f"  {report.model_name:<16} accuracy {100 * report.mean_accuracy:6.2f}%  "
              f"cpu {report.sustainability.cpu_percent:6.2f}%  "
              f"model {report.sustainability.model_size_kb:8.2f} Kb")


if __name__ == "__main__":
    main()
