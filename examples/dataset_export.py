"""Generate a labelled IoT-botnet traffic dataset and export it.

Produces the testbed's main data product: a labelled packet capture
written both as CSV (for ML pipelines) and as a genuine libpcap file
(openable in Wireshark), then reloads the CSV and verifies integrity.

    python examples/dataset_export.py [output_dir]
"""

import sys
from pathlib import Path

from repro.capture import TrafficDataset
from repro.sim.tracing import PcapReader
from repro.testbed import Scenario, Testbed


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("dataset_out")
    out_dir.mkdir(exist_ok=True)

    scenario = Scenario(n_devices=5, seed=2024)
    testbed = Testbed(scenario).build()
    testbed.infect_all()
    pcap_path = out_dir / "capture.pcap"
    capture = testbed.capture(
        45.0, scenario.training_schedule(45.0), pcap_path=str(pcap_path)
    )

    print(capture.summary())

    csv_path = out_dir / "capture.csv"
    capture.to_csv(csv_path)
    print(f"\nwrote {csv_path} ({csv_path.stat().st_size / 1e6:.2f} MB)")
    print(f"wrote {pcap_path} ({pcap_path.stat().st_size / 1e6:.2f} MB, "
          f"open it with wireshark/tcpdump)")

    # Round-trip check.
    reloaded = TrafficDataset.from_csv(csv_path)
    assert len(reloaded) == len(capture)
    assert reloaded.summary().malicious == capture.summary().malicious
    frames = sum(1 for _ in PcapReader(pcap_path))
    assert frames == len(capture)
    print(f"\nround-trip OK: {len(reloaded)} rows, {frames} pcap frames")

    # Ready-made splits for model development.
    train, test = reloaded.stratified_split(0.7, seed=5)
    train.to_csv(out_dir / "train.csv")
    test.to_csv(out_dir / "test.csv")
    print(f"split: {len(train)} train / {len(test)} test "
          f"(both at {100 * train.summary().malicious_fraction:.1f}% malicious)")


if __name__ == "__main__":
    main()
